# Developer entry points.  `make check` is the pre-PR gate: lint + typecheck
# (when ruff/mypy are available), the tier-1 test suite, the static analyzer
# sweep — with the happens-before pass — over every registered algorithm and
# baseline across all O/F/H x update-mode schedule variants, and the
# symbolic plan-space sweep (`make plans`), which verifies every enumerated
# plan point without constructing a transport or executing a step.
# `make perf` benchmarks the world-batched fast path against the loop
# reference and gates against benchmarks/perf/baseline.json (see
# docs/performance.md); `make perf REPRO_BACKEND=shm` runs the suite on a
# different transport backend (see docs/backends.md).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint typecheck test analyze plans perf

check: lint typecheck test analyze plans

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/analysis src/repro/cluster src/repro/core/autotune.py; \
	else \
		echo "mypy not installed; skipping typecheck"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

analyze:
	$(PYTHON) -m repro analyze --all --hb

plans:
	$(PYTHON) -m repro analyze --plans --hb

# REPRO_BACKEND selects the transport backend for the whole suite
# (local | batched | shm); unset means the batched default.
perf:
	$(PYTHON) -m repro perf --quick --check \
		$(if $(REPRO_BACKEND),--backend $(REPRO_BACKEND))
