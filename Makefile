# Developer entry points.  `make check` is the pre-PR gate: lint (when ruff
# is available), the tier-1 test suite, and the static analyzer sweep —
# with the happens-before pass — over every registered algorithm and
# baseline, across all O/F/H x update-mode schedule variants.
# `make perf` benchmarks the world-batched fast path against the loop
# reference and gates against benchmarks/perf/baseline.json (see
# docs/performance.md).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test analyze perf

check: lint test analyze

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

analyze:
	$(PYTHON) -m repro analyze --all --hb

perf:
	$(PYTHON) -m repro perf --quick --check
