# Developer entry points.  `make check` is the pre-PR gate: lint + typecheck
# (when ruff/mypy are available), the tier-1 test suite, the static analyzer
# sweep — with the happens-before pass — over every registered algorithm and
# baseline across all O/F/H x update-mode schedule variants, the symbolic
# plan-space sweep (`make plans`), which verifies every enumerated plan
# point without constructing a transport or executing a step, and the
# transport-protocol gate (`make protocol`): exhaustive interleaving
# exploration of the shm protocol model, the seeded-bug mutation suite, and
# a sanitized live conformance run (see docs/backends.md).
# `make typecheck-strict` is the CI variant that *fails* when mypy is
# missing instead of skipping.
# `make perf` benchmarks the world-batched fast path against the loop
# reference and gates against benchmarks/perf/baseline.json (see
# docs/performance.md); `make perf REPRO_BACKEND=shm` runs the suite on a
# different transport backend (see docs/backends.md).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint typecheck typecheck-strict test analyze plans protocol perf

check: lint typecheck test analyze plans protocol

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

# The mypy scope lives in pyproject.toml ([tool.mypy] files = ...): the
# analysis subsystem, the cluster layer, the comm kernels, the perf harness
# and the auto-tuner.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping typecheck"; \
	fi

typecheck-strict:
	mypy

test:
	$(PYTHON) -m pytest -x -q

analyze:
	$(PYTHON) -m repro analyze --all --hb

plans:
	$(PYTHON) -m repro analyze --plans --hb

protocol:
	$(PYTHON) -m repro analyze --protocol

# REPRO_BACKEND selects the transport backend for the whole suite
# (local | batched | shm); unset means the batched default.  The result
# JSON carries the backend as a suffix so per-backend runs (and their CI
# artifacts) never clobber each other.
perf:
	$(PYTHON) -m repro perf --quick --check \
		--out BENCH$(if $(REPRO_BACKEND),-$(REPRO_BACKEND)).json \
		$(if $(REPRO_BACKEND),--backend $(REPRO_BACKEND))
