"""Quickstart: distributed training with BAGUA-style QSGD on a simulated cluster.

Mirrors the paper's Listing 1: build a model and optimizer, pick an
algorithm, hand everything to the engine, train.  Here the "cluster" is the
in-process simulation — 2 nodes x 4 workers — and the model is the VGG-family
proxy on a synthetic image task.

Run:  python examples/quickstart.py
"""

from repro.algorithms import QSGD
from repro.cluster import ClusterSpec, TCP_25G
from repro.training import DistributedTrainer, get_task, make_accuracy_eval


def main() -> None:
    # 1. Describe the cluster: 2 machines x 4 GPUs, 25 Gbps TCP between them.
    cluster = ClusterSpec(num_nodes=2, workers_per_node=4, inter_node=TCP_25G)

    # 2. Pick a task bundle (dataset + proxy model + loss + hyperparameters).
    task = get_task("VGG16")

    # 3. Pick a training algorithm — 8-bit quantized SGD over the C_LP_S
    #    primitive, the algorithm the paper recommends for VGG16.
    algorithm = QSGD(bits=8)

    # 4. Build the trainer (replicas, shards, engine) and run.
    trainer = DistributedTrainer(
        cluster, task.model_factory, task.make_optimizer, algorithm, seed=0
    )
    loaders = task.make_loaders(cluster.world_size, seed=0)
    evaluate = make_accuracy_eval(task.dataset_factory(0), task.predict)
    record = trainer.train(
        loaders, task.loss_fn, epochs=5, label="qsgd", eval_fn=evaluate
    )

    print(f"trained on {cluster.world_size} simulated workers")
    for epoch, (loss, acc) in enumerate(
        zip(record.epoch_losses, record.epoch_accuracies), start=1
    ):
        print(f"  epoch {epoch}: loss={loss:.4f}  accuracy={acc:.3f}")

    stats = trainer.transport.stats
    print(
        f"traffic: {stats.messages} messages, "
        f"{stats.total_bytes / 1e6:.1f} MB total "
        f"({stats.inter_node_bytes / 1e6:.1f} MB inter-node), "
        f"simulated comm time {trainer.transport.max_time():.3f}s"
    )


if __name__ == "__main__":
    main()
