"""Checkpoint and resume a distributed training run, then auto-tune it.

Shows two production conveniences built on the reproduction:

1. checkpoint the rank-0 replica (model + optimizer) mid-run and resume a
   *fresh* trainer from it bit-exactly;
2. ask the auto-tuner which algorithm this model should use on the current
   network before resuming.

Run:  python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.algorithms import AllreduceSGD, make_algorithm
from repro.cluster import ClusterSpec, paper_cluster
from repro.core import recommend
from repro.models import vgg16_spec
from repro.tensor import load_checkpoint, save_checkpoint
from repro.training import DistributedTrainer, get_task


def main() -> None:
    cluster = ClusterSpec(num_nodes=2, workers_per_node=4)
    task = get_task("VGG16")

    # ---- phase 1: train 2 epochs and checkpoint rank 0 -------------------
    trainer = DistributedTrainer(
        cluster, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=0
    )
    loaders = task.make_loaders(cluster.world_size, seed=0)
    record = trainer.train(loaders, task.loss_fn, epochs=2, label="phase-1")
    print(f"phase 1 losses: {[f'{l:.3f}' for l in record.epoch_losses]}")

    rank0 = trainer.engine.workers[0]
    ckpt = Path(tempfile.mkdtemp()) / "vgg16.npz"
    save_checkpoint(ckpt, rank0.model, rank0.optimizer, step=2)
    print(f"checkpointed rank-0 replica to {ckpt}")

    # ---- phase 2: consult the auto-tuner for the resume algorithm --------
    report = recommend(vgg16_spec(), paper_cluster("10gbps"))
    print()
    print(report.render())
    chosen = report.best.algorithm
    print(f"resuming with: {chosen}")

    # ---- phase 3: fresh trainer, restore weights everywhere, keep going --
    def restored_model(rng: np.random.Generator):
        model = task.model_factory(rng)
        load_checkpoint(ckpt, model)  # every replica restores the same state
        return model

    resumed = DistributedTrainer(
        cluster, restored_model, task.make_optimizer,
        make_algorithm(chosen), seed=0,
    )
    record2 = resumed.train(loaders, task.loss_fn, epochs=3, label="phase-2")
    print(f"phase 2 losses: {[f'{l:.3f}' for l in record2.epoch_losses]}")
    assert record2.epoch_losses[-1] < record.epoch_losses[-1]
    print("resumed run continued to improve — checkpoint round trip OK")


if __name__ == "__main__":
    main()
