"""Render the execution pipelines of Figures 2 and 3 as ASCII Gantt charts.

Figure 2 contrasts how Vanilla / DDP / BytePS place communication around the
compute stream; Figure 3 shows the relaxed algorithms' different shapes
(compression kernels, model-update-before-communication for decentralized).
This example regenerates both from the timing simulator.

Run:  python examples/pipeline_visualization.py
"""

from repro.cluster import paper_cluster
from repro.models import vgg16_spec
from repro.simulation import CommCostModel, bagua_system, byteps_system, pytorch_ddp_system, vanilla_system
from repro.simulation.timeline import compare_systems


def main() -> None:
    cluster = paper_cluster("25gbps")
    cost = CommCostModel(cluster)
    model = vgg16_spec()

    print("=== Figure 2: how each system schedules DP-SG ===\n")
    print(
        compare_systems(
            model,
            cluster,
            [
                vanilla_system(cost),
                pytorch_ddp_system(cost),
                byteps_system(cost),
                bagua_system(cost, "allreduce"),
            ],
        )
    )

    print("\n\n=== Figure 3: relaxed algorithms under BAGUA ===\n")
    print(
        compare_systems(
            model,
            cluster,
            [
                bagua_system(cost, "allreduce"),
                bagua_system(cost, "qsgd"),
                bagua_system(cost, "decentralized-8bit"),
            ],
        )
    )


if __name__ == "__main__":
    main()
