"""Implement a NEW training algorithm on BAGUA's primitives (paper Listing 2).

The paper's pitch is that a developer writes only the *communication
function*; the engine handles profiling, bucketing, flattening and
scheduling.  This example builds an algorithm the built-in zoo does not
ship — top-K sparsified SGD with two-sided error compensation — in ~30
lines, then trains it next to plain allreduce and compares loss and bytes.

Run:  python examples/custom_algorithm.py
"""

from repro.algorithms import AllreduceSGD
from repro.cluster import ClusterSpec
from repro.compression import ErrorFeedback, TopKCompressor
from repro.core import Algorithm, BaguaEngine, c_lp_s
from repro.training import DistributedTrainer, get_task


class TopKSGD(Algorithm):
    """Sparsified DP-SG: only the top 5% of gradient entries travel.

    Top-K is biased, so the C_LP_S primitive is used with error compensation
    on both the worker and the server side — exactly the pattern of the
    paper's Listing 2.
    """

    name = "topk-sgd"

    def __init__(self, ratio: float = 0.05) -> None:
        self.compressor = TopKCompressor(ratio=ratio)

    def setup(self, engine: BaguaEngine) -> None:
        for worker in engine.workers:
            worker.state["worker_ef"] = [
                ErrorFeedback(self.compressor) for _ in worker.buckets
            ]
            worker.state["server_ef"] = [
                ErrorFeedback(self.compressor) for _ in worker.buckets
            ]

    def on_backward_done(self, engine: BaguaEngine, step: int) -> None:
        n = engine.world_size
        for k in range(engine.num_buckets):
            summed = c_lp_s(
                engine.grads_of_bucket(k),
                engine.group,
                compressor=self.compressor,
                worker_errors=[w.state["worker_ef"][k] for w in engine.workers],
                server_errors=[w.state["server_ef"][k] for w in engine.workers],
                hierarchical=engine.hierarchical,
            )
            engine.set_grads_of_bucket(k, [s / n for s in summed])
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()


def run(algorithm, label: str):
    cluster = ClusterSpec(num_nodes=2, workers_per_node=4)
    task = get_task("VGG16")
    trainer = DistributedTrainer(
        cluster, task.model_factory, task.make_optimizer, algorithm, seed=0
    )
    loaders = task.make_loaders(cluster.world_size, seed=0)
    record = trainer.train(loaders, task.loss_fn, epochs=5, label=label)
    mb = trainer.transport.stats.total_bytes / 1e6
    return record, mb


def main() -> None:
    exact, exact_mb = run(AllreduceSGD(), "allreduce")
    sparse, sparse_mb = run(TopKSGD(ratio=0.05), "topk-sgd")

    print("epoch  allreduce-loss  topk5%-loss")
    for e, (a, b) in enumerate(zip(exact.epoch_losses, sparse.epoch_losses), 1):
        print(f"  {e}      {a:10.4f}    {b:10.4f}")
    print(f"\nbytes moved: allreduce {exact_mb:.1f} MB vs top-K {sparse_mb:.1f} MB "
          f"({exact_mb / sparse_mb:.1f}x less traffic)")


if __name__ == "__main__":
    main()
