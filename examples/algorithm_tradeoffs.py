"""Explore the algorithm/network tradeoff space (paper §4.3, Figure 7).

For BERT-LARGE at full paper scale (16 nodes x 8 GPUs), sweeps bandwidth and
latency with the timing simulator and reports which algorithm wins each
condition — the paper's core argument that no single algorithm is a silver
bullet.

Run:  python examples/algorithm_tradeoffs.py
"""

from dataclasses import replace

from repro.cluster import TCP_25G, paper_cluster
from repro.experiments.report import render_table
from repro.models import bert_large_spec
from repro.simulation import CommCostModel, bagua_system, pytorch_ddp_system, simulate_epoch

ALGORITHMS = ("allreduce", "qsgd", "1bit-adam", "decentralized", "decentralized-8bit")


def winner_for(cluster) -> tuple:
    """Best BAGUA algorithm and its margin over PyTorch-DDP on this network."""
    cost = CommCostModel(cluster)
    model = bert_large_spec()
    times = {
        name: simulate_epoch(model, cluster, bagua_system(cost, name)).epoch_time
        for name in ALGORITHMS
    }
    ddp = simulate_epoch(model, cluster, pytorch_ddp_system(cost)).epoch_time
    best = min(times, key=times.get)
    return best, times[best], ddp / times[best]


def main() -> None:
    rows = []
    for gbps in (1, 5, 25, 100):
        cluster = replace(
            paper_cluster("25gbps"), inter_node=TCP_25G.with_bandwidth_gbps(gbps)
        )
        best, epoch, speedup = winner_for(cluster)
        rows.append([f"{gbps} Gbps / 50 us", best, f"{epoch:.0f}s", f"{speedup:.2f}x"])
    for ms in (0.5, 2.0, 5.0):
        cluster = replace(
            paper_cluster("25gbps"), inter_node=TCP_25G.with_latency(ms * 1e-3)
        )
        best, epoch, speedup = winner_for(cluster)
        rows.append([f"25 Gbps / {ms} ms", best, f"{epoch:.0f}s", f"{speedup:.2f}x"])

    print(
        render_table(
            ["network", "best BAGUA algorithm", "epoch", "speedup vs DDP"],
            rows,
            title="BERT-LARGE: best algorithm per network condition (128 GPUs)",
        )
    )
    print(
        "\nReading: compression (1-bit Adam/QSGD) wins when bandwidth-bound;"
        "\ndecentralization wins when latency-bound; plain allreduce suffices"
        "\non fast networks. This is the paper's motivation for supporting"
        "\nthe full algorithm zoo behind one engine."
    )


if __name__ == "__main__":
    main()
