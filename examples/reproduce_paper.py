"""Regenerate every table and figure of the paper's evaluation.

Timing-mode results (Tables 3-5, Figure 7, heterogeneity) run at full paper
scale (16 nodes x 8 GPUs) in seconds.  Functional convergence results
(Figures 5-6) really train the proxy tasks on 8 simulated workers and take
a few minutes; pass --skip-convergence to leave them out.

Run:  python examples/reproduce_paper.py [--skip-convergence]
"""

import argparse
import sys
import time

from repro.experiments import (
    fig5_convergence_systems,
    fig6_convergence_algorithms,
    fig7_network_conditions,
    heterogeneity_study,
    table1_support,
    table2_models,
    table3_speedup,
    table4_epoch_time,
    table5_ablation,
)


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-convergence",
        action="store_true",
        help="skip the functional-mode convergence runs (Figures 5 and 6)",
    )
    args = parser.parse_args(argv)

    experiments = [
        ("Table 1: relaxation support matrix", table1_support.run),
        ("Table 2: model characteristics", table2_models.run),
        ("Table 3: speedups over best baseline", table3_speedup.run),
        ("Table 4: centralized full-precision epoch times", table4_epoch_time.run),
        ("Table 5: O/F/H ablation", table5_ablation.run),
        ("Figure 7: network-condition sweeps", fig7_network_conditions.run),
        ("Heterogeneity: straggler study", heterogeneity_study.run),
    ]
    if not args.skip_convergence:
        experiments += [
            ("Figure 5: convergence across systems", lambda: fig5_convergence_systems.run(epochs=4)),
            ("Figure 6: convergence across algorithms", lambda: fig6_convergence_algorithms.run(epochs=5)),
        ]

    for title, runner in experiments:
        section(title)
        started = time.time()
        result = runner()
        print(result.render())
        print(f"[{time.time() - started:.1f}s]")


if __name__ == "__main__":
    main(sys.argv[1:])
