"""Benchmark-suite configuration.

Every paper table/figure has one bench; each runs its experiment once
(``benchmark.pedantic`` with a single round — the experiments are themselves
deterministic simulations, not microbenchmarks) and prints the rendered
table/series so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
paper's evaluation in one command.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Execute a function exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
