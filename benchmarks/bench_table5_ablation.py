"""Table 5: O/F/H ablation of the execution optimizer."""

from repro.experiments import table5_ablation


def test_table5_ablation(benchmark, run_once):
    result = run_once(table5_ablation.run)
    print()
    print(result.render())
    for model, times in result.epoch_times.items():
        benchmark.extra_info[model] = {c: round(t) for c, t in times.items()}
        assert min(times.values()) == times["O=1,F=1,H=1"]
