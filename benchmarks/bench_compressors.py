"""Microbenchmarks: codec throughput and wire-size table.

These are genuine pytest-benchmark microbenchmarks (multiple rounds) over
the compression kernels — the per-element cost that the cost model's
``compress_time`` approximates.
"""

import numpy as np
import pytest

from repro.compression import (
    FP16Compressor,
    IdentityCompressor,
    OneBitCompressor,
    QSGDCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
)

CODECS = [
    IdentityCompressor(),
    FP16Compressor(),
    QSGDCompressor(bits=8),
    OneBitCompressor(),
    TopKCompressor(ratio=0.01),
    TernGradCompressor(),
    SignSGDCompressor(),
]

N = 1 << 18


@pytest.fixture(scope="module")
def gradient():
    return np.random.default_rng(0).standard_normal(N)


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
def test_compress_roundtrip_throughput(benchmark, codec, gradient):
    def roundtrip():
        return codec.decompress(codec.compress(gradient))

    out = benchmark(roundtrip)
    assert out.shape == gradient.shape
    benchmark.extra_info["wire_bytes"] = codec.wire_bytes(N)
    benchmark.extra_info["compression_ratio"] = round(codec.compression_ratio(N), 1)
