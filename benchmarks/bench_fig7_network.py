"""Figure 7: BERT-LARGE epoch time vs bandwidth and vs latency."""

from repro.experiments import fig7_network_conditions


def test_fig7_network_conditions(benchmark, run_once):
    result = run_once(fig7_network_conditions.run)
    print()
    print(result.render())
    benchmark.extra_info["best_at_1gbps"] = result.best_at_bandwidth(0)
    benchmark.extra_info["best_at_5ms"] = result.best_at_latency(-1)
    # Compression dominates when bandwidth-starved; decentralization when
    # latency-bound — the tradeoff the paper's Figure 7 demonstrates.
    assert result.best_at_bandwidth(0) == "BAGUA-1bit-Adam"
    assert "Decen" in result.best_at_latency(-1)
