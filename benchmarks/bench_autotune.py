"""Extension bench: the auto-tuner (the paper's future-work direction).

Validates that pure prediction — timing simulation + Figure 6 safety
knowledge — recovers the per-task algorithm choices the paper's authors
made by hand for Figure 5.
"""

from repro.cluster import paper_cluster
from repro.core import recommend
from repro.experiments.paper_reference import BEST_ALGORITHM
from repro.models import all_specs

#: tasks where the paper's hand-picked winner is bandwidth-driven; the tuner
#: should recover them on the slow network where the choice matters most
EXPECTED_AT_10G = {
    "VGG16": "qsgd",
    "BERT-LARGE": "1bit-adam",
    "BERT-BASE": "1bit-adam",
}


def test_autotuner_recovers_paper_choices(benchmark, run_once):
    cluster = paper_cluster("10gbps")

    def tune_all():
        return {
            name: recommend(spec, cluster) for name, spec in all_specs().items()
        }

    reports = run_once(tune_all)
    print()
    for name, report in reports.items():
        print(report.render())
        print(f"  (paper's Figure 5 choice: {BEST_ALGORITHM[name]})")
        print()
        benchmark.extra_info[name] = report.best.algorithm

    for name, expected in EXPECTED_AT_10G.items():
        assert reports[name].best.algorithm == expected, name
    # The straggler-motivated async choice for LSTM+AlexNet is flagged by
    # the tuner as a non-bandwidth consideration: async must at least rank
    # among the safe candidates for the recurrent family.
    lstm = reports["LSTM+AlexNet"]
    async_rec = next(r for r in lstm.recommendations if r.algorithm == "async")
    assert async_rec.safe
