"""Table 3: BAGUA speedups over the best baseline at 100/25/10 Gbps."""

from repro.experiments import table3_speedup


def test_table3_speedups(benchmark, run_once):
    result = run_once(table3_speedup.run)
    print()
    print(result.render())
    print("winning baseline per cell:", result.best_baseline)
    for network, by_model in result.speedups.items():
        benchmark.extra_info[network] = {m: round(s, 2) for m, s in by_model.items()}
    # Headline shape: the 10 Gbps column dominates the 100 Gbps column.
    for model in result.speedups["10gbps"]:
        assert result.speedups["10gbps"][model] >= result.speedups["100gbps"][model] - 0.05
