"""Table 4: epoch time of centralized full-precision sync per system."""

from repro.experiments import table4_epoch_time


def test_table4_epoch_times(benchmark, run_once):
    result = run_once(table4_epoch_time.run)
    print()
    print(result.render())
    for model, times in result.epoch_times.items():
        benchmark.extra_info[model] = {s: round(t) for s, t in times.items()}
        # BAGUA's automatic optimizer keeps it competitive with hand-tuned DDP.
        assert times["BAGUA"] <= 1.10 * times["PyTorch-DDP"]
