"""Figure 6: convergence of the six BAGUA algorithms per task.

Qualitative outcomes reproduced: 1-bit Adam diverges on the conv tasks
(VGG16) while converging on the transformer tasks; Async shows a visible gap
on BERT-LARGE; the decentralized variants land close to Allreduce.
"""

from repro.experiments import fig6_convergence_algorithms


def test_fig6_convergence_of_algorithms(benchmark, run_once):
    result = run_once(lambda: fig6_convergence_algorithms.run(epochs=5))
    print()
    print(result.render())
    for task, records in result.curves.items():
        benchmark.extra_info[task] = {
            label: ("diverged" if rec.diverged else round(rec.epoch_losses[-1], 4))
            for label, rec in records.items()
        }
    # Paper's headline qualitative findings:
    assert result.diverged("VGG16", "1-bit Adam")
    assert not result.diverged("BERT-LARGE", "1-bit Adam")
    assert not result.diverged("VGG16", "QSGD")
    bert = result.curves["BERT-LARGE"]
    assert bert["Async"].epoch_losses[-1] > 2 * bert["Allreduce"].epoch_losses[-1]
