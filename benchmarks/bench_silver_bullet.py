"""The "no silver bullet" grid (paper §4.3 Summary)."""

from repro.experiments import silver_bullet


def test_no_silver_bullet(benchmark, run_once):
    result = run_once(silver_bullet.run)
    print()
    print(result.render())
    winners = result.distinct_winners()
    benchmark.extra_info["distinct_winners"] = sorted(winners)
    # The paper's core motivation: different cells want different algorithms.
    assert len(winners) >= 3
    # And the bandwidth trend: compression wins the slow-network BERT cells.
    assert result.winners[("10gbps", "BERT-LARGE")] == "1bit-adam"
