"""Worker heterogeneity: one downclocked GPU, sync vs async."""

from repro.experiments import heterogeneity_study


def test_heterogeneity_straggler_study(benchmark, run_once):
    result = run_once(heterogeneity_study.run)
    print()
    print(result.render())
    for model, r in result.results.items():
        benchmark.extra_info[model] = {
            "sync_slowdown": round(r.sync_degradation, 2),
            "async_slowdown": round(r.async_degradation, 2),
        }
        # Async absorbs the straggler; sync pays for it on every task.
        assert r.async_degradation < 1.1
        assert r.sync_degradation > r.async_degradation
