"""Design-choice ablation: error compensation on/off for aggressive codecs.

C_LP_S's delta/epsilon state is what makes 1-bit compression usable: this
bench measures the aggregation error of repeated compressed allreduce with
and without error feedback (DESIGN.md §5).
"""

import numpy as np

from repro.cluster import ClusterSpec, Transport
from repro.comm import CommGroup
from repro.compression import ErrorFeedback, OneBitCompressor, QSGDCompressor
from repro.core import c_lp_s


def make_group(num_nodes: int = 2, workers_per_node: int = 2) -> CommGroup:
    spec = ClusterSpec(num_nodes=num_nodes, workers_per_node=workers_per_node)
    return CommGroup(Transport(spec), list(range(spec.world_size)))


def _relative_error(outs, expected):
    return float(np.linalg.norm(outs - expected) / np.linalg.norm(expected))


def run_aggregation(codec_factory, with_ef: bool, steps: int = 30, n: int = 4):
    rng = np.random.default_rng(0)
    group = make_group(2, 2)
    codec = codec_factory()
    worker_efs = [ErrorFeedback(codec) for _ in range(n)] if with_ef else None
    server_efs = [ErrorFeedback(codec) for _ in range(n)] if with_ef else None
    true_total = np.zeros(256)
    got_total = np.zeros(256)
    for _ in range(steps):
        arrays = [rng.standard_normal(256) for _ in range(n)]
        true_total += np.sum(arrays, axis=0)
        outs = c_lp_s(
            arrays, group, compressor=codec,
            worker_errors=worker_efs, server_errors=server_efs,
        )
        got_total += outs[0]
    return _relative_error(got_total, true_total)


def test_error_feedback_rescues_one_bit(benchmark):
    def measure():
        return {
            "1bit plain": run_aggregation(OneBitCompressor, with_ef=False),
            "1bit + error feedback": run_aggregation(OneBitCompressor, with_ef=True),
            "qsgd8 plain": run_aggregation(lambda: QSGDCompressor(bits=8), with_ef=False),
        }

    errors = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for label, err in errors.items():
        print(f"  {label:24s} relative aggregation error {err:.4f}")
    # Error feedback cuts the accumulated 1-bit error dramatically; unbiased
    # QSGD needs no compensation (the paper's configuration choices).
    assert errors["1bit + error feedback"] < 0.5 * errors["1bit plain"]
    assert errors["qsgd8 plain"] < 0.1
