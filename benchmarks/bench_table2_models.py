"""Table 2: model characteristics of the five evaluation tasks."""

from repro.experiments import table2_models


def test_table2_model_characteristics(benchmark, run_once):
    result = run_once(table2_models.run)
    print()
    print(result.render())
    for row in result.rows:
        benchmark.extra_info[row["model"]] = {
            "params_m": round(row["params_m"], 1),
            "gflops": round(row["gflops"], 1),
        }
        assert abs(row["params_m"] - row["paper_params_m"]) / row["paper_params_m"] < 0.03
