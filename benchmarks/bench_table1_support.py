"""Table 1: the relaxation support matrix."""

from repro.experiments import table1_support


def test_table1_support_matrix(benchmark, run_once):
    result = run_once(table1_support.run)
    print()
    print(result.render())
    bagua_count = sum(1 for r in result.rows if r["BAGUA"])
    benchmark.extra_info["bagua_supported_combinations"] = bagua_count
    assert bagua_count == 7
