"""Figure 5: convergence of BAGUA vs other systems (functional mode).

Runs the full five-task suite on the 8-worker simulated cluster.  The shape
to observe matches the paper: all systems trace essentially the same loss
curve, so epoch-time speedups translate to time-to-loss speedups.
"""

import numpy as np

from repro.experiments import fig5_convergence_systems


def test_fig5_convergence_of_systems(benchmark, run_once):
    result = run_once(lambda: fig5_convergence_systems.run(epochs=4))
    print()
    print(result.render())
    for task, records in result.curves.items():
        finals = {label: rec.epoch_losses[-1] for label, rec in records.items()}
        benchmark.extra_info[task] = {k: round(v, 4) for k, v in finals.items()}
        # The exact-averaging baselines must agree with each other closely.
        exact = [
            v for k, v in finals.items() if k in ("PyTorch-DDP", "Horovod", "BytePS")
        ]
        assert max(exact) - min(exact) < 1e-6, task
        assert all(np.isfinite(v) for v in finals.values()), task
