"""Scaling study: epoch time and efficiency from 1 to 16 nodes."""

from repro.experiments import scalability


def test_weak_scaling(benchmark, run_once):
    result = run_once(scalability.run)
    print()
    print(result.render())
    for system in result.epoch_times:
        benchmark.extra_info[system] = round(result.efficiency(system)[-1], 2)
    # Compression keeps VGG16 near-linear out to 16 nodes; full precision
    # saturates on inter-node bandwidth.
    assert result.efficiency("BAGUA-qsgd")[-1] > 0.85
    assert result.efficiency("PyTorch-DDP")[-1] < 0.6
    assert result.efficiency("BAGUA-allreduce")[-1] >= result.efficiency("PyTorch-DDP")[-1]
