"""End-to-end time-to-loss (paper §4.2's closing claim).

Combines both modes: functional convergence gives epochs-to-target, the
timing simulator gives seconds-per-epoch; BAGUA's per-task algorithm must
win the product on a slow network.
"""

from repro.experiments import time_to_loss


def test_time_to_target_loss(benchmark, run_once):
    report = run_once(lambda: time_to_loss.run(task_names=("VGG16", "BERT-BASE")))
    print()
    print(report.render())
    for name, result in report.results.items():
        benchmark.extra_info[name] = {
            "speedup": round(result.speedup, 2) if result.speedup else None,
        }
        assert result.speedup is not None, name
        assert result.speedup > 1.2, name
