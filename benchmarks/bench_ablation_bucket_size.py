"""Design-choice ablation: bucket-size sweep for the execution optimizer.

Too-small buckets pay per-message latency and ramp overhead; too-large
buckets destroy overlap (the last bucket finishes long after backward ends).
The 10 MB default sits in the flat basin (DESIGN.md §5).
"""

from repro.cluster import paper_cluster
from repro.core import BaguaConfig
from repro.experiments.report import render_series
from repro.models import bert_large_spec
from repro.simulation import CommCostModel, bagua_system, simulate_iteration

BUCKET_MB = (0.25, 1, 4, 10, 40, 160, 1300)


def test_bucket_size_sweep(benchmark):
    cluster = paper_cluster("25gbps")
    cost = CommCostModel(cluster)
    model = bert_large_spec()

    def sweep():
        times = []
        for mb in BUCKET_MB:
            config = BaguaConfig(
                overlap=True, flatten=True, hierarchical=True,
                bucket_bytes=mb * 1024 * 1024,
            )
            system = bagua_system(cost, "allreduce", config)
            times.append(simulate_iteration(model, cluster, system).iteration_time * 1e3)
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_series(
            "bucket MB", list(BUCKET_MB), {"iteration ms": times},
            title="BERT-LARGE iteration time vs bucket size (25 Gbps)",
            float_fmt="{:.1f}",
        )
    )
    best = min(times)
    default_idx = BUCKET_MB.index(10)
    # The default sits in the basin (comm-bound BERT-LARGE prefers slightly
    # larger buckets; both extremes are clearly worse).
    assert times[default_idx] < 1.15 * best
    assert times[0] > 1.1 * best  # tiny buckets: latency/ramp dominated
    assert times[-1] > 1.05 * best  # one giant bucket: no overlap left
