"""Design-choice ablation: ScatterReduce vs ring vs hierarchical (DESIGN.md §5).

Why BAGUA's centralized primitives use the hierarchical ScatterReduce:
compared per tensor size at paper scale (128 workers, 25 Gbps).
"""

from repro.cluster import paper_cluster
from repro.experiments.report import render_series
from repro.simulation import CommCostModel

SIZES_MB = (1, 10, 50, 150)


def test_centralized_substrate_choice(benchmark):
    cluster = paper_cluster("25gbps")
    cost = CommCostModel(cluster)

    def sweep():
        series = {"ring": [], "flat ScatterReduce": [], "hierarchical SR": []}
        for mb in SIZES_MB:
            elements = mb * 1024 * 1024 // 4
            series["ring"].append(cost.ring_allreduce(elements) * 1e3)
            series["flat ScatterReduce"].append(cost.centralized(elements) * 1e3)
            series["hierarchical SR"].append(
                cost.centralized(elements, hierarchical=True) * 1e3
            )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_series(
            "MB", list(SIZES_MB), series,
            title="Allreduce substrate cost (ms), 128 workers @ 25 Gbps",
            float_fmt="{:.2f}",
        )
    )
    # Flat ScatterReduce (all 128 workers through shared NICs) is the trap the
    # H optimization avoids; hierarchical SR is competitive with the ring.
    for i, _mb in enumerate(SIZES_MB):
        assert series["flat ScatterReduce"][i] > 2 * series["hierarchical SR"][i]
        assert series["hierarchical SR"][i] < 1.6 * series["ring"][i]


def test_decentralized_peer_choice(benchmark):
    cluster = paper_cluster("25gbps")
    cost = CommCostModel(cluster)
    elements = 50 * 1024 * 1024 // 4

    def sweep():
        return {
            "flat ring peers": cost.decentralized(elements, topology="ring") * 1e3,
            "flat random peers": cost.decentralized(elements, topology="random") * 1e3,
            "hier ring peers": cost.decentralized(
                elements, topology="ring", hierarchical=True
            )
            * 1e3,
            "hier random peers": cost.decentralized(
                elements, topology="random", hierarchical=True
            )
            * 1e3,
            "hier centralized (ref)": cost.centralized(elements, hierarchical=True) * 1e3,
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, ms in times.items():
        print(f"  {label:28s} {ms:8.2f} ms")
    # Flat RANDOM pairing drowns in per-node NIC contention (8 workers each
    # shipping the whole model across nodes) — the reason the paper *always*
    # hierarchizes decentralized primitives.  A flat RING is accidentally
    # cheap because node-major neighbors are mostly intra-node, but it gives
    # the slowest gossip mixing.  Hierarchical random pairing (one peer per
    # node leader) beats a full centralized aggregation per round; the ring
    # variant costs about twice that (two neighbors instead of one).
    assert times["flat random peers"] > 2 * times["hier random peers"]
    assert times["hier random peers"] < times["hier centralized (ref)"]
    assert times["hier ring peers"] < 4 * times["hier random peers"]
