"""Table 5 — ablation of the execution optimizer's O/F/H switches.

Runs BAGUA's allreduce algorithm with each optimization disabled in turn on
the three models the paper ablates (VGG16, BERT-LARGE, LSTM+AlexNet).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import paper_cluster
from ..core.optimizer_framework import BaguaConfig
from ..models.zoo_specs import bert_large_spec, lstm_alexnet_spec, vgg16_spec
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import bagua_system
from .paper_reference import TABLE5_ABLATION
from .report import render_table

CONFIGS: list[tuple[str, BaguaConfig]] = [
    ("O=1,F=1,H=1", BaguaConfig(overlap=True, flatten=True, hierarchical=True)),
    ("O=0,F=1,H=1", BaguaConfig(overlap=False, flatten=True, hierarchical=True)),
    ("O=1,F=0,H=1", BaguaConfig(overlap=True, flatten=False, hierarchical=True)),
    ("O=1,F=1,H=0", BaguaConfig(overlap=True, flatten=True, hierarchical=False)),
]


@dataclass
class Table5Result:
    #: model -> config label -> epoch seconds
    epoch_times: dict[str, dict[str, float]]
    network: str

    def render(self) -> str:
        headers = ["Config"] + [
            f"{m} (paper)" for m in self.epoch_times
        ]
        rows = []
        for label, _cfg in CONFIGS:
            row = [label]
            for model, times in self.epoch_times.items():
                paper = TABLE5_ABLATION[model][label]
                row.append(f"{times[label]:.0f}s ({paper}s)")
            rows.append(row)
        return render_table(
            headers, rows, title=f"Table 5: O/F/H ablation ({self.network})"
        )


def run(network: str = "25gbps") -> Table5Result:
    cluster = paper_cluster(network)
    cost = CommCostModel(cluster)
    epoch_times: dict[str, dict[str, float]] = {}
    for spec in (vgg16_spec(), bert_large_spec(), lstm_alexnet_spec()):
        epoch_times[spec.name] = {}
        for label, config in CONFIGS:
            system = bagua_system(cost, "allreduce", config)
            epoch_times[spec.name][label] = simulate_epoch(spec, cluster, system).epoch_time
    return Table5Result(epoch_times=epoch_times, network=network)
