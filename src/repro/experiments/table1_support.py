"""Table 1 — the system-relaxation support matrix."""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.registry import support_matrix_rows
from .report import render_table


@dataclass
class Table1Result:
    rows: list[dict]

    def render(self) -> str:
        headers = ["Sync.", "Precision", "Centralization", "PyTorch-DDP",
                   "Horovod", "BytePS", "BAGUA", "BAGUA algorithm"]
        table_rows = [
            [r["sync"], r["precision"], r["centralization"], r["PyTorch-DDP"],
             r["Horovod"], r["BytePS"], r["BAGUA"], r["algorithm"]]
            for r in self.rows
        ]
        return render_table(headers, table_rows, title="Table 1: system relaxation support")


def run() -> Table1Result:
    return Table1Result(rows=support_matrix_rows())
