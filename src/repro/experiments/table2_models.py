"""Table 2 — model characteristics (#parameters, #FLOPs) vs the paper."""

from __future__ import annotations

from dataclasses import dataclass

from ..models.zoo_specs import all_specs
from .paper_reference import TABLE2_MODELS
from .report import render_table


@dataclass
class Table2Result:
    rows: list[dict]

    def render(self) -> str:
        headers = ["Model", "Params (M)", "paper", "GFLOPs/sample", "paper", "layers"]
        table_rows = [
            [r["model"], r["params_m"], r["paper_params_m"], r["gflops"],
             r["paper_gflops"], r["layers"]]
            for r in self.rows
        ]
        return render_table(headers, table_rows, title="Table 2: model characteristics", float_fmt="{:.1f}")


def run() -> Table2Result:
    rows = []
    for name, spec in all_specs().items():
        paper_params, paper_gflops = TABLE2_MODELS[name]
        rows.append(
            {
                "model": name,
                "params_m": spec.total_params / 1e6,
                "paper_params_m": paper_params,
                "gflops": spec.fwd_flops_per_sample / 1e9,
                "paper_gflops": paper_gflops,
                "layers": len(spec.layers),
            }
        )
    return Table2Result(rows=rows)
