"""Figure 5 — convergence of BAGUA vs other systems (loss vs epochs).

Functional mode: trains the proxy task with BAGUA running the task's best
algorithm against PyTorch-DDP, Horovod (32/16-bit) and BytePS on the
simulated cluster.  The paper's observation — "all systems have essentially
the same convergence curve" — should reproduce: the baselines are exact
gradient averaging, and BAGUA's per-task algorithms were chosen for
matching convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.registry import make_algorithm
from ..baselines import BytePS, Horovod, PyTorchDDP
from ..cluster.topology import ClusterSpec
from ..training.metrics import ConvergenceRecord
from ..training.tasks import Task, all_tasks
from ..training.trainer import DistributedTrainer
from .paper_reference import BEST_ALGORITHM
from .report import render_series

DEFAULT_CLUSTER = ClusterSpec(num_nodes=2, workers_per_node=4)

#: 1-bit Adam runs with its own Adam-style step size, not the task SGD lr.
ONEBIT_ADAM_LR = 0.002
ONEBIT_ADAM_WARMUP = 6
#: matches the Figure 6 suite's async configuration
ASYNC_PULL_INTERVAL = 2


def make_bagua_algorithm(task_name: str):
    """The best BAGUA algorithm for ``task_name`` (Figure 5 caption)."""
    name = BEST_ALGORITHM[task_name]
    if name == "1bit-adam":
        return make_algorithm(name, lr=ONEBIT_ADAM_LR, warmup_steps=ONEBIT_ADAM_WARMUP)
    if name == "async":
        return make_algorithm(name, pull_interval=ASYNC_PULL_INTERVAL)
    return make_algorithm(name)


@dataclass
class Fig5Result:
    #: task -> {system label: convergence record}
    curves: dict[str, dict[str, ConvergenceRecord]]

    def render(self) -> str:
        sections = []
        for task_name, records in self.curves.items():
            epochs = range(1, 1 + max(len(r.epoch_losses) for r in records.values()))
            series = {
                label: _padded(record.epoch_losses, len(list(epochs)))
                for label, record in records.items()
            }
            sections.append(
                render_series(
                    "epoch", list(epochs), series,
                    title=f"Figure 5 [{task_name}]: loss vs epoch",
                )
            )
        return "\n\n".join(sections)


def _padded(losses: list[float], length: int) -> list[float]:
    return losses + [float("nan")] * (length - len(losses))


def run(
    tasks: list[Task] | None = None,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    epochs: int = 5,
    seed: int = 0,
) -> Fig5Result:
    tasks = tasks if tasks is not None else all_tasks()
    curves: dict[str, dict[str, ConvergenceRecord]] = {}
    for task in tasks:
        systems = {
            f"BAGUA ({BEST_ALGORITHM[task.name]})": make_bagua_algorithm(task.name),
            "PyTorch-DDP": PyTorchDDP(),
            "Horovod": Horovod(),
            "Horovod-16bit": Horovod(fp16=True),
            "BytePS": BytePS(),
        }
        curves[task.name] = {}
        for label, algorithm in systems.items():
            trainer = DistributedTrainer(
                cluster, task.model_factory, task.make_optimizer, algorithm, seed=seed
            )
            loaders = task.make_loaders(cluster.world_size, seed=seed)
            curves[task.name][label] = trainer.train(
                loaders, task.loss_fn, epochs=epochs, label=label
            )
    return Fig5Result(curves=curves)
