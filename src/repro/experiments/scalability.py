"""Scaling study: epoch time and efficiency vs cluster size.

Not a numbered figure in the paper, but its abstract claims ("a production
cluster with up to 16 machines (128 GPUs)") imply the scaling curve behind
Table 3.  This experiment sweeps 1 -> 16 nodes at fixed per-GPU batch size
(weak scaling: global batch grows, iterations per epoch shrink) and reports
epoch time plus scaling efficiency

    efficiency(n) = ideal_epoch_time(n) / measured_epoch_time(n),

where ideal is the single-node epoch time divided by n.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..cluster.topology import paper_cluster
from ..models.spec import ModelSpec
from ..models.zoo_specs import vgg16_spec
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import bagua_system, pytorch_ddp_system
from .report import render_series

NODE_COUNTS = (1, 2, 4, 8, 16)


@dataclass
class ScalabilityResult:
    model: str
    network: str
    node_counts: Sequence[int]
    #: system label -> epoch seconds per node count
    epoch_times: dict[str, list[float]]

    def efficiency(self, system: str) -> list[float]:
        times = self.epoch_times[system]
        base = times[0] * self.node_counts[0]
        return [
            base / (t * n) for t, n in zip(times, self.node_counts)
        ]

    def render(self) -> str:
        times = render_series(
            "nodes", list(self.node_counts), self.epoch_times,
            title=f"Scalability [{self.model}, {self.network}]: epoch time (s)",
            float_fmt="{:.1f}",
        )
        eff = render_series(
            "nodes",
            list(self.node_counts),
            {s: self.efficiency(s) for s in self.epoch_times},
            title="scaling efficiency (1.0 = linear)",
            float_fmt="{:.2f}",
        )
        return times + "\n\n" + eff


def run(
    model: ModelSpec | None = None,
    network: str = "25gbps",
    node_counts: Sequence[int] = NODE_COUNTS,
) -> ScalabilityResult:
    model = model or vgg16_spec()
    base = paper_cluster(network)
    epoch_times: dict[str, list[float]] = {}
    for nodes in node_counts:
        cluster = replace(base, num_nodes=nodes)
        cost = CommCostModel(cluster)
        for label, system in (
            ("BAGUA-qsgd", bagua_system(cost, "qsgd")),
            ("BAGUA-allreduce", bagua_system(cost, "allreduce")),
            ("PyTorch-DDP", pytorch_ddp_system(cost)),
        ):
            epoch_times.setdefault(label, []).append(
                simulate_epoch(model, cluster, system).epoch_time
            )
    return ScalabilityResult(
        model=model.name,
        network=network,
        node_counts=node_counts,
        epoch_times=epoch_times,
    )
