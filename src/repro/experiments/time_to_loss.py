"""End-to-end time-to-loss (paper §4.2's closing argument).

The paper concludes from Figure 5 that "the speedups in Table 3 reflect the
end-to-end speedups to reach the same loss": all systems trace the same
convergence curve, so per-epoch time ratios are time-to-quality ratios.
This experiment verifies that composition directly by combining the two
modes — functional convergence curves give epochs-to-target, the timing
simulator gives seconds-per-epoch, and their product is wall-clock
time-to-loss per system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import PyTorchDDP
from ..cluster.topology import ClusterSpec, paper_cluster
from ..models.zoo_specs import all_specs
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import bagua_system, pytorch_ddp_system
from ..training.metrics import epochs_to_reach
from ..training.tasks import get_task
from ..training.trainer import DistributedTrainer
from .fig5_convergence_systems import make_bagua_algorithm
from .paper_reference import BEST_ALGORITHM
from .report import render_table

FUNCTIONAL_CLUSTER = ClusterSpec(num_nodes=2, workers_per_node=4)


@dataclass
class TimeToLossResult:
    """Time-to-target-loss comparison for one task."""

    task: str
    loss_target: float
    bagua_algorithm: str
    bagua_epochs: int | None
    ddp_epochs: int | None
    bagua_epoch_seconds: float
    ddp_epoch_seconds: float

    @property
    def bagua_seconds(self) -> float | None:
        if self.bagua_epochs is None:
            return None
        return self.bagua_epochs * self.bagua_epoch_seconds

    @property
    def ddp_seconds(self) -> float | None:
        if self.ddp_epochs is None:
            return None
        return self.ddp_epochs * self.ddp_epoch_seconds

    @property
    def speedup(self) -> float | None:
        if self.bagua_seconds is None or self.ddp_seconds is None:
            return None
        return self.ddp_seconds / self.bagua_seconds


@dataclass
class TimeToLossReport:
    results: dict[str, TimeToLossResult]
    network: str

    def render(self) -> str:
        headers = [
            "Task", "target loss", "BAGUA algo",
            "BAGUA epochs x s/epoch", "DDP epochs x s/epoch", "speedup",
        ]
        rows = []
        for r in self.results.values():
            rows.append([
                r.task,
                f"{r.loss_target:.2f}",
                r.bagua_algorithm,
                f"{r.bagua_epochs} x {r.bagua_epoch_seconds:.0f}s",
                f"{r.ddp_epochs} x {r.ddp_epoch_seconds:.0f}s",
                f"{r.speedup:.2f}x" if r.speedup else "n/a",
            ])
        return render_table(
            headers, rows,
            title=f"End-to-end time to target loss ({self.network})",
        )


def run(
    task_names=("VGG16", "BERT-BASE"),
    network: str = "10gbps",
    epochs: int = 5,
    seed: int = 0,
) -> TimeToLossReport:
    """Measure time-to-loss for BAGUA's best algorithm vs PyTorch-DDP."""
    timing_cluster = paper_cluster(network)
    cost = CommCostModel(timing_cluster)
    specs = all_specs()

    results: dict[str, TimeToLossResult] = {}
    for name in task_names:
        task = get_task(name)
        algorithm_name = BEST_ALGORITHM[name]

        def convergence(algorithm):
            trainer = DistributedTrainer(
                FUNCTIONAL_CLUSTER, task.model_factory, task.make_optimizer,
                algorithm, seed=seed,
            )
            loaders = task.make_loaders(FUNCTIONAL_CLUSTER.world_size, seed=seed)
            return trainer.train(loaders, task.loss_fn, epochs=epochs)

        bagua_record = convergence(make_bagua_algorithm(name))
        ddp_record = convergence(PyTorchDDP())
        # Target: the loss DDP reaches after the full run (both must get there).
        target = max(ddp_record.final_loss, bagua_record.final_loss) * 1.05 + 1e-6

        results[name] = TimeToLossResult(
            task=name,
            loss_target=target,
            bagua_algorithm=algorithm_name,
            bagua_epochs=epochs_to_reach(bagua_record, target),
            ddp_epochs=epochs_to_reach(ddp_record, target),
            bagua_epoch_seconds=simulate_epoch(
                specs[name], timing_cluster, bagua_system(cost, algorithm_name)
            ).epoch_time,
            ddp_epoch_seconds=simulate_epoch(
                specs[name], timing_cluster, pytorch_ddp_system(cost)
            ).epoch_time,
        )
    return TimeToLossReport(results=results, network=network)
