"""Table 3 — BAGUA speedup over the best competing system per network.

For each of the three network conditions and five tasks, simulates every
competing system (DDP, Horovod 32/16-bit, BytePS) plus BAGUA running the
task's best algorithm (Figure 5 caption), and reports
``best_baseline_epoch / bagua_epoch``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import paper_cluster
from ..models.zoo_specs import all_specs
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import all_competing_systems, bagua_system
from .paper_reference import BEST_ALGORITHM, TABLE3_SPEEDUPS
from .report import render_table

NETWORKS = ("100gbps", "25gbps", "10gbps")


@dataclass
class Table3Result:
    #: network -> model -> measured speedup
    speedups: dict[str, dict[str, float]]
    #: network -> model -> winning baseline name
    best_baseline: dict[str, dict[str, str]]

    def render(self) -> str:
        models = list(next(iter(self.speedups.values())))
        headers = ["Network"] + [f"{m} (paper)" for m in models]
        rows = []
        for network in NETWORKS:
            row: list = [network]
            for model in models:
                measured = self.speedups[network][model]
                paper = TABLE3_SPEEDUPS[network][model]
                row.append(f"{measured:.2f}x ({paper:.2f}x)")
            rows.append(row)
        return render_table(
            headers, rows, title="Table 3: BAGUA speedup over best of {DDP, Horovod 32/16, BytePS}"
        )


def run(networks=NETWORKS) -> Table3Result:
    speedups: dict[str, dict[str, float]] = {}
    winners: dict[str, dict[str, str]] = {}
    for network in networks:
        cluster = paper_cluster(network)
        cost = CommCostModel(cluster)
        speedups[network] = {}
        winners[network] = {}
        for name, spec in all_specs().items():
            baseline_results = [
                simulate_epoch(spec, cluster, system)
                for system in all_competing_systems(cost)
            ]
            best = min(baseline_results, key=lambda r: r.epoch_time)
            bagua = simulate_epoch(
                spec, cluster, bagua_system(cost, BEST_ALGORITHM[name])
            )
            speedups[network][name] = best.epoch_time / bagua.epoch_time
            winners[network][name] = best.system
    return Table3Result(speedups=speedups, best_baseline=winners)
