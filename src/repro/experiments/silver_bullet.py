"""The "no silver bullet" grid (paper §4.3, Summary).

    "at the algorithmic level, there is no algorithm that can serve as a
    silver bullet for all the distributed training tasks"

This experiment makes that claim checkable: epoch times for every
(algorithm x model x network) cell, with convergence-unsafe cells (from the
Figure 6 knowledge in the auto-tuner) excluded from winning.  The test suite
asserts the defining property — the winner is NOT the same algorithm across
all cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..cluster.topology import paper_cluster
from ..core.autotune import _SAFETY_NOTES, classify_family
from ..models.zoo_specs import all_specs
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import bagua_system
from .report import render_table

ALGORITHMS = (
    "allreduce",
    "qsgd",
    "1bit-adam",
    "decentralized",
    "decentralized-8bit",
    "async",
)
NETWORKS = ("100gbps", "25gbps", "10gbps")


def _is_safe(family: str, algorithm: str) -> bool:
    note = _SAFETY_NOTES.get((family, algorithm), "")
    return not note or "accuracy drop" in note


@dataclass
class SilverBulletResult:
    #: (network, model) -> {algorithm: epoch seconds}
    grid: dict[tuple[str, str], dict[str, float]]
    #: (network, model) -> winning (convergence-safe) algorithm
    winners: dict[tuple[str, str], str]
    #: the networks that were actually swept, in order
    networks: tuple[str, ...] = NETWORKS

    def distinct_winners(self) -> set:
        return set(self.winners.values())

    def render(self) -> str:
        models = sorted({model for _net, model in self.grid})
        headers = ["Network"] + models
        rows: list[list[str]] = []
        for network in self.networks:
            row = [network]
            for model in models:
                key = (network, model)
                winner = self.winners[key]
                row.append(f"{winner} ({self.grid[key][winner]:.0f}s)")
            rows.append(row)
        table = render_table(
            headers, rows, title="Best convergence-safe BAGUA algorithm per cell"
        )
        return (
            table
            + f"\n\ndistinct winners across the grid: {sorted(self.distinct_winners())}"
        )


def run(
    algorithms: Sequence[str] = ALGORITHMS,
    networks: Sequence[str] = NETWORKS,
) -> SilverBulletResult:
    grid: dict[tuple[str, str], dict[str, float]] = {}
    winners: dict[tuple[str, str], str] = {}
    for network in networks:
        cluster = paper_cluster(network)
        cost = CommCostModel(cluster)
        for name, spec in all_specs().items():
            family = classify_family(spec)
            cell = {
                algorithm: simulate_epoch(
                    spec, cluster, bagua_system(cost, algorithm)
                ).epoch_time
                for algorithm in algorithms
            }
            grid[(network, name)] = cell
            safe = {a: t for a, t in cell.items() if _is_safe(family, a)}
            winners[(network, name)] = min(safe, key=safe.get)
    return SilverBulletResult(grid=grid, winners=winners, networks=tuple(networks))
