"""Numbers the paper reports, used for shape checks and EXPERIMENTS.md.

These are transcribed from the paper (VLDB 2021).  The reproduction never
tries to match them exactly — the substrate is a simulator, not the authors'
testbed — but winners, orderings, and rough factors are asserted against
them in tests and compared in the experiment reports.
"""

from __future__ import annotations

#: Table 2 — model characteristics: name -> (params in millions, GFLOPs)
TABLE2_MODELS = {
    "VGG16": (138.3, 31.0),
    "BERT-LARGE": (302.2, 232.0),
    "BERT-BASE": (85.6, 22.0),
    "Transformer": (66.5, 145.0),
    "LSTM+AlexNet": (126.8, 97.12),
}

#: Table 3 — BAGUA speedup over the best of {DDP, Horovod 32/16, BytePS}
TABLE3_SPEEDUPS = {
    "100gbps": {"VGG16": 1.10, "BERT-LARGE": 1.05, "BERT-BASE": 1.27,
                "Transformer": 1.20, "LSTM+AlexNet": 1.34},
    "25gbps": {"VGG16": 1.10, "BERT-LARGE": 1.05, "BERT-BASE": 1.27,
               "Transformer": 1.20, "LSTM+AlexNet": 1.34},
    "10gbps": {"VGG16": 1.94, "BERT-LARGE": 1.95, "BERT-BASE": 1.27,
               "Transformer": 1.20, "LSTM+AlexNet": 1.34},
}

#: best-performing BAGUA algorithm per task (Figure 5 caption)
BEST_ALGORITHM = {
    "VGG16": "qsgd",
    "BERT-LARGE": "1bit-adam",
    "BERT-BASE": "1bit-adam",
    "Transformer": "decentralized",
    "LSTM+AlexNet": "async",
}

#: Table 4 — epoch seconds of centralized full-precision sync per system,
#: model -> {system: seconds} at 25 Gbps
TABLE4_EPOCH_TIMES = {
    "VGG16": {"BAGUA": 105, "PyTorch-DDP": 106, "Horovod": 107, "BytePS": 170},
    "BERT-LARGE": {"BAGUA": 114, "PyTorch-DDP": 116, "Horovod": 112, "BytePS": 114},
    "BERT-BASE": {"BAGUA": 510, "PyTorch-DDP": 521, "Horovod": 550, "BytePS": 548},
    "Transformer": {"BAGUA": 318, "PyTorch-DDP": 341, "Horovod": 343, "BytePS": 340},
    "LSTM+AlexNet": {"BAGUA": 168, "PyTorch-DDP": 171, "Horovod": 177, "BytePS": 224},
}

#: Table 5 — epoch seconds under O/F/H ablation, model -> {config: seconds}
TABLE5_ABLATION = {
    "VGG16": {"O=1,F=1,H=1": 74, "O=0,F=1,H=1": 88, "O=1,F=0,H=1": 117, "O=1,F=1,H=0": 510},
    "BERT-LARGE": {"O=1,F=1,H=1": 67, "O=0,F=1,H=1": 70, "O=1,F=0,H=1": 148, "O=1,F=1,H=0": 128},
    "LSTM+AlexNet": {"O=1,F=1,H=1": 148, "O=0,F=1,H=1": 163, "O=1,F=0,H=1": 210, "O=1,F=1,H=0": 146},
}

#: Figure 6 qualitative convergence outcomes per (task, algorithm)
FIG6_OUTCOMES = {
    ("VGG16", "1bit-adam"): "diverges",
    ("VGG16", "qsgd"): "matches allreduce",
    ("VGG16", "async"): "matches allreduce",
    ("VGG16", "decentralized"): "small accuracy drop",
    ("VGG16", "decentralized-8bit"): "small accuracy drop",
    ("BERT-LARGE", "async"): "visible gap",
    ("BERT-LARGE", "qsgd"): "matches allreduce",
    ("LSTM+AlexNet", "qsgd"): "degraded",
    ("LSTM+AlexNet", "1bit-adam"): "diverges",
}
