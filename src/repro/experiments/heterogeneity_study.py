"""Worker heterogeneity study (paper §4.3, result deferred to full version).

One GPU is downclocked from 1290 MHz to 585 MHz; synchronous training slows
by roughly the clock ratio while asynchronous training is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import paper_cluster
from ..models.zoo_specs import all_specs
from ..simulation.heterogeneity import (
    PAPER_STRAGGLER_SLOWDOWN,
    HeterogeneityResult,
    run_heterogeneity_study,
)
from .report import render_table


@dataclass
class HeterogeneityStudyResult:
    results: dict[str, HeterogeneityResult]

    def render(self) -> str:
        headers = [
            "Model",
            "sync uniform (s)", "sync straggler (s)", "sync slowdown",
            "async uniform (s)", "async straggler (s)", "async slowdown",
        ]
        rows: list[list] = []
        for model, r in self.results.items():
            rows.append([
                model,
                r.sync_uniform.epoch_time, r.sync_straggler.epoch_time,
                f"{r.sync_degradation:.2f}x",
                r.async_uniform.epoch_time, r.async_straggler.epoch_time,
                f"{r.async_degradation:.2f}x",
            ])
        return render_table(
            headers, rows,
            title=f"Heterogeneity: one GPU downclocked {PAPER_STRAGGLER_SLOWDOWN:.2f}x",
            float_fmt="{:.0f}",
        )


def run(network: str = "25gbps", models: list[str] | None = None) -> HeterogeneityStudyResult:
    cluster = paper_cluster(network)
    specs = all_specs()
    chosen = models or list(specs)
    return HeterogeneityStudyResult(
        results={name: run_heterogeneity_study(specs[name], cluster) for name in chosen}
    )
