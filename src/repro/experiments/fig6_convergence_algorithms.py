"""Figure 6 — convergence of the six BAGUA algorithms per task.

Reproduces the qualitative findings of §4.3:

* QSGD and Async track Allreduce on VGG16; the decentralized variants drop
  a little; 1-bit Adam *diverges* (loss explodes after a few epochs);
* on BERT-LARGE most algorithms track Allreduce, Async shows a gap;
* on LSTM+AlexNet QSGD is degraded and 1-bit Adam diverges again.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import (
    AllreduceSGD,
    AsyncSGD,
    DecentralizedSGD,
    LowPrecisionDecentralizedSGD,
    OneBitAdam,
    QSGD,
)
from ..cluster.topology import ClusterSpec
from ..training.metrics import ConvergenceRecord
from ..training.tasks import Task, all_tasks
from ..training.trainer import DistributedTrainer
from .report import render_series

DEFAULT_CLUSTER = ClusterSpec(num_nodes=2, workers_per_node=4)

#: shared settings across tasks — divergence (or not) is a property of the
#: task, as in the paper, not of per-task tuning.
ONEBIT_ADAM_LR = 0.002
ONEBIT_ADAM_WARMUP = 6
#: async workers refresh their model every 2 steps, approximating the deep
#: communication pipeline of a production async deployment
ASYNC_PULL_INTERVAL = 2


def algorithm_suite() -> dict[str, object]:
    """Fresh instances of the six evaluated algorithms."""
    return {
        "Allreduce": AllreduceSGD(),
        "QSGD": QSGD(),
        "1-bit Adam": OneBitAdam(lr=ONEBIT_ADAM_LR, warmup_steps=ONEBIT_ADAM_WARMUP),
        "Decen-32bits": DecentralizedSGD(topology="random"),
        "Decen-8bits": LowPrecisionDecentralizedSGD(),
        "Async": AsyncSGD(pull_interval=ASYNC_PULL_INTERVAL),
    }


@dataclass
class Fig6Result:
    #: task -> {algorithm label: record}
    curves: dict[str, dict[str, ConvergenceRecord]]

    def diverged(self, task: str, algorithm: str) -> bool:
        return self.curves[task][algorithm].diverged

    def render(self) -> str:
        sections = []
        for task_name, records in self.curves.items():
            longest = max(len(r.epoch_losses) for r in records.values())
            series = {}
            for label, record in records.items():
                tag = f"{label}*" if record.diverged else label
                series[tag] = record.epoch_losses + [float("nan")] * (
                    longest - len(record.epoch_losses)
                )
            sections.append(
                render_series(
                    "epoch", list(range(1, longest + 1)), series,
                    title=f"Figure 6 [{task_name}]: loss vs epoch (* = diverged)",
                )
            )
        return "\n\n".join(sections)


def run(
    tasks: list[Task] | None = None,
    cluster: ClusterSpec = DEFAULT_CLUSTER,
    epochs: int = 5,
    seed: int = 0,
) -> Fig6Result:
    tasks = tasks if tasks is not None else all_tasks()
    curves: dict[str, dict[str, ConvergenceRecord]] = {}
    for task in tasks:
        curves[task.name] = {}
        for label, algorithm in algorithm_suite().items():
            trainer = DistributedTrainer(
                cluster, task.model_factory, task.make_optimizer, algorithm, seed=seed
            )
            loaders = task.make_loaders(cluster.world_size, seed=seed)
            curves[task.name][label] = trainer.train(
                loaders, task.loss_fn, epochs=epochs, label=label
            )
    return Fig6Result(curves=curves)
