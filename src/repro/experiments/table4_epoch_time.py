"""Table 4 — epoch time of centralized full-precision sync per system."""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import paper_cluster
from ..models.zoo_specs import all_specs
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import (
    bagua_system,
    byteps_system,
    horovod_system,
    pytorch_ddp_system,
)
from .paper_reference import TABLE4_EPOCH_TIMES
from .report import render_table

SYSTEM_ORDER = ("BAGUA", "PyTorch-DDP", "Horovod", "BytePS")


@dataclass
class Table4Result:
    #: model -> system -> epoch seconds
    epoch_times: dict[str, dict[str, float]]
    network: str

    def render(self) -> str:
        headers = ["Model"] + [f"{s} (paper)" for s in SYSTEM_ORDER]
        rows = []
        for model, times in self.epoch_times.items():
            row = [model]
            for system in SYSTEM_ORDER:
                paper = TABLE4_EPOCH_TIMES[model][system]
                row.append(f"{times[system]:.0f}s ({paper}s)")
            rows.append(row)
        return render_table(
            headers,
            rows,
            title=f"Table 4: epoch time, centralized full-precision sync ({self.network})",
        )


def run(network: str = "25gbps") -> Table4Result:
    cluster = paper_cluster(network)
    cost = CommCostModel(cluster)
    systems = {
        "BAGUA": bagua_system(cost, "allreduce"),
        "PyTorch-DDP": pytorch_ddp_system(cost),
        "Horovod": horovod_system(cost),
        "BytePS": byteps_system(cost),
    }
    epoch_times: dict[str, dict[str, float]] = {}
    for name, spec in all_specs().items():
        epoch_times[name] = {
            label: simulate_epoch(spec, cluster, system).epoch_time
            for label, system in systems.items()
        }
    return Table4Result(epoch_times=epoch_times, network=network)
