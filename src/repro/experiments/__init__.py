"""One module per table/figure of the paper's evaluation."""

from . import (
    fig5_convergence_systems,
    fig6_convergence_algorithms,
    fig7_network_conditions,
    heterogeneity_study,
    paper_reference,
    scalability,
    silver_bullet,
    table1_support,
    table2_models,
    table3_speedup,
    table4_epoch_time,
    table5_ablation,
    time_to_loss,
)
from .report import render_series, render_table

__all__ = [
    "table1_support",
    "table2_models",
    "table3_speedup",
    "table4_epoch_time",
    "table5_ablation",
    "fig5_convergence_systems",
    "fig6_convergence_algorithms",
    "fig7_network_conditions",
    "heterogeneity_study",
    "time_to_loss",
    "scalability",
    "silver_bullet",
    "paper_reference",
    "render_table",
    "render_series",
]
