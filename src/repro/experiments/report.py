"""Plain-text table/series rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table."""

    def fmt(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "-"
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def render_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render named series against shared x values (a text 'figure')."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return render_table(headers, rows, title=title, float_fmt=float_fmt)
