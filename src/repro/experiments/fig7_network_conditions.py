"""Figure 7 — epoch time under varying bandwidth and latency (BERT-LARGE).

Two sweeps on the timing simulator:

* bandwidth 1 -> 100 Gbps at fixed latency: compression algorithms (QSGD,
  1-bit Adam) pull ahead as bandwidth drops;
* latency 0.05 -> 5 ms at fixed bandwidth: decentralized algorithms stay
  flat while centralized/allreduce systems degrade.

The gap between BAGUA and the ring-allreduce systems widens as the network
gets slower — the paper's headline qualitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..cluster.netmodel import TCP_25G
from ..cluster.topology import paper_cluster
from ..models.spec import ModelSpec
from ..models.zoo_specs import bert_large_spec
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import (
    bagua_system,
    horovod_system,
    pytorch_ddp_system,
)
from .report import render_series

BANDWIDTHS_GBPS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)
LATENCIES_MS = (0.05, 0.2, 0.5, 1.0, 2.0, 5.0)


def _systems(cost: CommCostModel) -> dict[str, object]:
    return {
        "BAGUA-Allreduce": bagua_system(cost, "allreduce"),
        "BAGUA-QSGD": bagua_system(cost, "qsgd"),
        "BAGUA-1bit-Adam": bagua_system(cost, "1bit-adam"),
        "BAGUA-Decen-32bits": bagua_system(cost, "decentralized"),
        "BAGUA-Decen-8bits": bagua_system(cost, "decentralized-8bit"),
        "PyTorch-DDP": pytorch_ddp_system(cost),
        "Horovod-16bit": horovod_system(cost, fp16=True),
    }


@dataclass
class Fig7Result:
    model: str
    bandwidths_gbps: Sequence[float]
    latencies_ms: Sequence[float]
    #: system -> epoch seconds per bandwidth point
    bandwidth_sweep: dict[str, list[float]]
    #: system -> epoch seconds per latency point
    latency_sweep: dict[str, list[float]]

    def best_at_bandwidth(self, index: int) -> str:
        return min(self.bandwidth_sweep, key=lambda s: self.bandwidth_sweep[s][index])

    def best_at_latency(self, index: int) -> str:
        return min(self.latency_sweep, key=lambda s: self.latency_sweep[s][index])

    def render(self) -> str:
        bw = render_series(
            "Gbps", list(self.bandwidths_gbps), self.bandwidth_sweep,
            title=f"Figure 7a [{self.model}]: epoch time (s) vs bandwidth",
            float_fmt="{:.1f}",
        )
        lat = render_series(
            "ms", list(self.latencies_ms), self.latency_sweep,
            title=f"Figure 7b [{self.model}]: epoch time (s) vs latency",
            float_fmt="{:.1f}",
        )
        return bw + "\n\n" + lat


def run(
    model: ModelSpec | None = None,
    bandwidths_gbps: Sequence[float] = BANDWIDTHS_GBPS,
    latencies_ms: Sequence[float] = LATENCIES_MS,
) -> Fig7Result:
    model = model or bert_large_spec()
    base = paper_cluster("25gbps")

    bandwidth_sweep: dict[str, list[float]] = {}
    for gbps in bandwidths_gbps:
        link = TCP_25G.with_bandwidth_gbps(gbps)
        cluster = replace(base, inter_node=link)
        cost = CommCostModel(cluster)
        for label, system in _systems(cost).items():
            bandwidth_sweep.setdefault(label, []).append(
                simulate_epoch(model, cluster, system).epoch_time
            )

    latency_sweep: dict[str, list[float]] = {}
    for ms in latencies_ms:
        link = TCP_25G.with_latency(ms * 1e-3)
        cluster = replace(base, inter_node=link)
        cost = CommCostModel(cluster)
        for label, system in _systems(cost).items():
            latency_sweep.setdefault(label, []).append(
                simulate_epoch(model, cluster, system).epoch_time
            )

    return Fig7Result(
        model=model.name,
        bandwidths_gbps=bandwidths_gbps,
        latencies_ms=latencies_ms,
        bandwidth_sweep=bandwidth_sweep,
        latency_sweep=latency_sweep,
    )
