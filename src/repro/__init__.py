"""repro — a from-scratch reproduction of BAGUA (VLDB 2021).

BAGUA is a communication framework for distributed data-parallel training
built around *system relaxations*: communication compression, decentralized
communication, and asynchronization.  This package rebuilds the whole system
in pure Python/numpy:

* :mod:`repro.tensor` — numpy autograd + NN substrate (PyTorch stand-in);
* :mod:`repro.cluster` — simulated multi-node/multi-GPU cluster with an
  alpha-beta network model;
* :mod:`repro.comm` — NCCL-style collectives built from send/recv rounds;
* :mod:`repro.compression` — QSGD, 1-bit, top-K, fp16, ... codecs and
  error feedback;
* :mod:`repro.core` — BAGUA's primitives (C_FP_S / C_LP_S / D_FP_S /
  D_LP_S), the execution optimizer (overlap / fusion / hierarchy), and the
  engine;
* :mod:`repro.algorithms` — the algorithm zoo (Allreduce, QSGD, 1-bit Adam,
  decentralized 32/8-bit, Async, LocalSGD);
* :mod:`repro.baselines` — PyTorch-DDP, Horovod, BytePS re-implementations;
* :mod:`repro.simulation` — timing mode reproducing the paper's epoch-time
  tables; :mod:`repro.training` — functional mode reproducing convergence;
* :mod:`repro.experiments` — one module per table/figure of the evaluation.

Quickstart::

    from repro.cluster import ClusterSpec
    from repro.training import DistributedTrainer, get_task
    from repro.algorithms import QSGD

    task = get_task("VGG16")
    cluster = ClusterSpec(num_nodes=2, workers_per_node=4)
    trainer = DistributedTrainer(
        cluster, task.model_factory, task.make_optimizer, QSGD()
    )
    record = trainer.train(
        task.make_loaders(cluster.world_size), task.loss_fn, epochs=5
    )
"""

__version__ = "0.1.0"

from . import (  # noqa: F401  (re-exported subpackages)
    algorithms,
    analysis,
    baselines,
    cluster,
    comm,
    compression,
    core,
    data,
    experiments,
    models,
    simulation,
    tensor,
    training,
)

__all__ = [
    "tensor",
    "cluster",
    "comm",
    "compression",
    "core",
    "algorithms",
    "analysis",
    "baselines",
    "models",
    "data",
    "simulation",
    "training",
    "experiments",
    "__version__",
]
