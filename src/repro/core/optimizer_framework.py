"""BAGUA's automatic execution optimizer (paper §3.4).

Given an :class:`~repro.core.profiler.ExecutionProfile` (from the profiling
phase or from a static model spec) and the three optimization switches —

* **O** (overlap): schedule bucket communication concurrently with the
  remaining backward computation instead of after it;
* **F** (fusion/flattening): group tensors into size-capped buckets backed by
  contiguous memory, instead of communicating per tensor;
* **H** (hierarchical): run each communication in the two-tier intra/inter
  node form —

the optimizer produces an :class:`ExecutionPlan` consumed by both the
functional engine (which buckets/flattens real parameters) and the timing
simulator (which schedules the per-layer pipeline).  Table 5's ablation is
exactly these switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from .profiler import ExecutionProfile, TensorRecord

#: Default fused-bucket size.  10 MB mirrors the production default; large
#: enough to amortize latency, small enough to leave overlap opportunities.
DEFAULT_BUCKET_BYTES = 10 * 1024 * 1024


@dataclass(frozen=True)
class BaguaConfig:
    """The three system optimizations plus bucketing granularity.

    ``backend`` selects the transport execution substrate by registry name
    (``"local"``, ``"batched"``, ``"shm"``; ``None`` defers to
    ``$REPRO_BACKEND`` / the default — see :mod:`repro.cluster.backends`).
    ``fast_path`` forces the world-batched collective kernels
    (:mod:`repro.comm.batched`) on or off for every communication the
    engine issues; ``None`` (the default) lets the backend's kernel
    preference decide.  Results and simulated timing are bitwise identical
    either way, so both knobs are purely wall-clock switches (kept for A/B
    benchmarking and as escape hatches).

    ``protocol_sanitize`` opts the transport backend into the protocol
    conformance sanitizer (:mod:`repro.analysis.protocol`): the backend
    records cross-process protocol events for later replay through
    ``check_events``.  ``None`` defers to ``$REPRO_PROTOCOL_SANITIZE``.
    Purely observational — it changes no delivered byte.
    """

    overlap: bool = True
    flatten: bool = True
    hierarchical: bool = False
    bucket_bytes: float = DEFAULT_BUCKET_BYTES
    fast_path: bool | None = None
    backend: str | None = None
    protocol_sanitize: bool | None = None

    def describe(self) -> str:
        return (
            f"O={int(self.overlap)},F={int(self.flatten)},H={int(self.hierarchical)}"
        )


@dataclass
class PlannedBucket:
    """A group of tensors fused into one communication unit."""

    index: int
    records: list[TensorRecord] = field(default_factory=list)

    @property
    def elements(self) -> int:
        return sum(r.elements for r in self.records)

    @property
    def nbytes_fp32(self) -> float:
        return self.elements * 4.0

    @property
    def names(self) -> list[str]:
        return [r.name for r in self.records]

    @property
    def ready_index(self) -> int:
        """Backward step after which the whole bucket's gradients exist."""
        return max(r.ready_index for r in self.records)

    @property
    def bwd_flops(self) -> float:
        return sum(r.bwd_flops for r in self.records)

    @property
    def fwd_flops(self) -> float:
        return sum(r.fwd_flops for r in self.records)


@dataclass
class ExecutionPlan:
    """Bucketing + scheduling decisions for one model/algorithm pair."""

    config: BaguaConfig
    buckets: list[PlannedBucket]

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def total_elements(self) -> int:
        return sum(b.elements for b in self.buckets)

    def communication_units(self) -> list[PlannedBucket]:
        """Buckets in the order their communication should be issued."""
        return sorted(self.buckets, key=lambda b: b.ready_index)


class ExecutionOptimizer:
    """Turns a profile + config into an execution plan."""

    def __init__(self, config: BaguaConfig | None = None) -> None:
        self.config = config or BaguaConfig()

    def plan(self, profile: ExecutionProfile) -> ExecutionPlan:
        if not profile.records:
            raise ValueError("cannot plan over an empty profile")
        ordered = sorted(profile.records, key=lambda r: r.ready_index)
        if self.config.flatten:
            buckets = self._greedy_buckets(ordered)
        else:
            # Without fusion every tensor is its own communication unit —
            # many small transfers, each paying the latency term.
            buckets = [
                PlannedBucket(index=i, records=[record]) for i, record in enumerate(ordered)
            ]
        return ExecutionPlan(config=self.config, buckets=buckets)

    def _greedy_buckets(self, ordered: Sequence[TensorRecord]) -> list[PlannedBucket]:
        buckets: list[PlannedBucket] = []
        current: list[TensorRecord] = []
        current_bytes = 0.0
        for record in ordered:
            if current and current_bytes + record.nbytes_fp32 > self.config.bucket_bytes:
                buckets.append(PlannedBucket(index=len(buckets), records=current))
                current, current_bytes = [], 0.0
            current.append(record)
            current_bytes += record.nbytes_fp32
        if current:
            buckets.append(PlannedBucket(index=len(buckets), records=current))
        return buckets
