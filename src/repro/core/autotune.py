"""Automatic algorithm selection (the paper's "Moving Forward" direction).

The paper notes BAGUA "does not provide a principled way to help a user
automatically pick the most suitable system relaxations" and calls an
auto-tuning system exciting future work.  This module implements a first
version on top of the reproduction's two modes:

1. **Performance**: each candidate algorithm's epoch time is predicted with
   the timing simulator on the user's actual model spec and cluster.
2. **Convergence safety**: candidates known to be fragile for the model's
   architecture family are filtered or flagged — the knowledge distilled
   from Figure 6 (e.g. 1-bit Adam diverges on conv-dominated models, async
   staleness hurts deep transformers).

The result is a ranked list with predicted epoch times and safety notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import ClusterSpec
from ..models.spec import ModelSpec
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import bagua_system
from .optimizer_framework import BaguaConfig

CANDIDATES = (
    "allreduce",
    "qsgd",
    "1bit-adam",
    "decentralized",
    "decentralized-8bit",
    "async",
)


def classify_family(model: ModelSpec) -> str:
    """Architecture family from the layer inventory: conv / recurrent / transformer."""
    names = " ".join(layer.name for layer in model.layers).lower()
    if "lstm" in names:
        return "recurrent"
    if "attn" in names or "encoder" in names:
        return "transformer"
    if "conv" in names:
        return "conv"
    return "generic"


#: (family, algorithm) -> warning; distilled from Figure 6's outcomes.
_SAFETY_NOTES: dict[tuple, str] = {
    ("conv", "1bit-adam"): "diverges on conv-dominated models (Figure 6, VGG16)",
    ("recurrent", "1bit-adam"): "diverges on the LSTM+AlexNet family (Figure 6)",
    ("transformer", "async"): "staleness visibly slows deep transformers (Figure 6, BERT-LARGE)",
    ("conv", "decentralized"): "small accuracy drop on conv models (Figure 6)",
    ("conv", "decentralized-8bit"): "small accuracy drop on conv models (Figure 6)",
}


@dataclass
class Recommendation:
    """One candidate's predicted performance and safety assessment."""

    algorithm: str
    epoch_time: float
    speedup_vs_allreduce: float
    safe: bool
    note: str = ""

    def __str__(self) -> str:
        flag = "" if self.safe else "  [UNSAFE: " + self.note + "]"
        return (
            f"{self.algorithm:>18s}: {self.epoch_time:8.1f}s "
            f"({self.speedup_vs_allreduce:.2f}x vs allreduce){flag}"
        )


@dataclass
class TuningReport:
    """Ranked recommendations for one (model, cluster) pair."""

    model: str
    family: str
    recommendations: list[Recommendation]

    @property
    def best(self) -> Recommendation:
        """Fastest candidate that is convergence-safe for this family."""
        safe = [r for r in self.recommendations if r.safe]
        if not safe:
            raise RuntimeError(f"no safe algorithm for family {self.family!r}")
        return safe[0]

    def render(self) -> str:
        lines = [f"auto-tuning {self.model} (family: {self.family})"]
        lines += [f"  {r}" for r in self.recommendations]
        lines.append(f"  -> recommended: {self.best.algorithm}")
        return "\n".join(lines)


def recommend(
    model: ModelSpec,
    cluster: ClusterSpec,
    config: BaguaConfig | None = None,
    candidates=CANDIDATES,
    include_unsafe: bool = True,
) -> TuningReport:
    """Rank candidate algorithms for ``model`` on ``cluster``.

    Safe candidates sort first (by predicted epoch time); unsafe ones are
    listed afterwards with their warning unless ``include_unsafe`` is False.
    """
    family = classify_family(model)
    cost = CommCostModel(cluster)
    baseline = simulate_epoch(
        model, cluster, bagua_system(cost, "allreduce", config)
    ).epoch_time

    recommendations: list[Recommendation] = []
    for name in candidates:
        epoch = simulate_epoch(model, cluster, bagua_system(cost, name, config)).epoch_time
        note = _SAFETY_NOTES.get((family, name), "")
        recommendations.append(
            Recommendation(
                algorithm=name,
                epoch_time=epoch,
                speedup_vs_allreduce=baseline / epoch,
                safe=(family, name) not in _SAFETY_NOTES
                or "accuracy drop" in note,  # drops are usable, divergence is not
                note=note,
            )
        )
    recommendations.sort(key=lambda r: (not r.safe, r.epoch_time))
    if not include_unsafe:
        recommendations = [r for r in recommendations if r.safe]
    return TuningReport(model=model.name, family=family, recommendations=recommendations)
