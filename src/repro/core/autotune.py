"""Automatic algorithm selection (the paper's "Moving Forward" direction).

The paper notes BAGUA "does not provide a principled way to help a user
automatically pick the most suitable system relaxations" and calls an
auto-tuning system exciting future work.  This module implements a first
version on top of the reproduction's three pillars:

1. **Validity**: each candidate plan is run through the symbolic plan
   verifier (:mod:`repro.analysis.planspace`) *before* any simulation time
   is spent on it — static rules at the full cluster shape (hierarchy
   divisibility, compressor/EF compatibility, gossip weight stochasticity,
   Table 1 support) plus the full checker and happens-before suites over a
   scaled-down symbolic lowering.  Refuted candidates are never timed; they
   appear in the ranked output with their rejection reason.
2. **Performance**: each surviving candidate's epoch time is predicted with
   the timing simulator on the user's actual model spec and cluster.
3. **Convergence safety**: candidates known to be fragile for the model's
   architecture family are filtered or flagged — the knowledge distilled
   from Figure 6 (e.g. 1-bit Adam diverges on conv-dominated models, async
   staleness hurts deep transformers).

The result is a ranked list with predicted epoch times, safety notes and
per-plan rejection reasons.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..cluster.topology import ClusterSpec
from ..models.spec import ModelSpec
from ..simulation.cost import CommCostModel
from ..simulation.runner import simulate_epoch
from ..simulation.systems import bagua_system
from .optimizer_framework import BaguaConfig
from .profiler import profile_from_spec

CANDIDATES = (
    "allreduce",
    "qsgd",
    "1bit-adam",
    "decentralized",
    "decentralized-8bit",
    "async",
)

#: World shape the lowered (IR-level) verification runs at.  The static
#: rules check the *full* cluster shape; the checker/happens-before suites
#: then prove the schedule structure on a small representative world — the
#: lowered op stream is SPMD, so structural hazards (races, deadlocks,
#: unmatched peers) already manifest at 2 nodes x 2 workers.
_VERIFY_NODES = 2
_VERIFY_WORKERS = 2


def classify_family(model: ModelSpec) -> str:
    """Architecture family from the layer inventory.

    Precedence when a model mixes layer vocabularies (checked in this
    order, first match wins):

    1. ``lstm`` anywhere -> ``recurrent`` — recurrence dominates the
       convergence behavior even in hybrid stacks (Figure 6's LSTM+AlexNet
       speech model is exactly such a mix);
    2. ``attn`` or ``encoder`` -> ``transformer``;
    3. ``conv`` -> ``conv``;
    4. otherwise ``generic``.

    So a model with both ``conv`` and ``attn`` layers classifies as
    ``transformer`` (the attention blocks carry the staleness sensitivity),
    and one with ``lstm`` plus ``conv`` classifies as ``recurrent``.
    """
    names = " ".join(layer.name for layer in model.layers).lower()
    if "lstm" in names:
        return "recurrent"
    if "attn" in names or "encoder" in names:
        return "transformer"
    if "conv" in names:
        return "conv"
    return "generic"


#: (family, algorithm) -> warning; distilled from Figure 6's outcomes.
_SAFETY_NOTES: dict[tuple[str, str], str] = {
    ("conv", "1bit-adam"): "diverges on conv-dominated models (Figure 6, VGG16)",
    ("recurrent", "1bit-adam"): "diverges on the LSTM+AlexNet family (Figure 6)",
    ("transformer", "async"): "staleness visibly slows deep transformers (Figure 6, BERT-LARGE)",
    ("conv", "decentralized"): "small accuracy drop on conv models (Figure 6)",
    ("conv", "decentralized-8bit"): "small accuracy drop on conv models (Figure 6)",
}


@dataclass
class Recommendation:
    """One candidate's predicted performance, safety and validity verdict."""

    algorithm: str
    epoch_time: float
    speedup_vs_allreduce: float
    safe: bool
    note: str = ""
    #: True when the symbolic plan verifier refuted the candidate's plan;
    #: rejected candidates are never timed (``epoch_time`` is ``inf``).
    rejected: bool = False
    rejection: str = ""

    def __str__(self) -> str:
        if self.rejected:
            return f"{self.algorithm:>18s}: [REJECTED: {self.rejection}]"
        flag = "" if self.safe else "  [UNSAFE: " + self.note + "]"
        return (
            f"{self.algorithm:>18s}: {self.epoch_time:8.1f}s "
            f"({self.speedup_vs_allreduce:.2f}x vs allreduce){flag}"
        )


@dataclass
class TuningReport:
    """Ranked recommendations for one (model, cluster) pair."""

    model: str
    family: str
    recommendations: list[Recommendation]

    @property
    def best(self) -> Recommendation:
        """Fastest candidate that is valid and convergence-safe for this family."""
        safe = [r for r in self.recommendations if r.safe and not r.rejected]
        if not safe:
            raise RuntimeError(f"no safe algorithm for family {self.family!r}")
        return safe[0]

    def render(self) -> str:
        lines = [f"auto-tuning {self.model} (family: {self.family})"]
        lines += [f"  {r}" for r in self.recommendations]
        lines.append(f"  -> recommended: {self.best.algorithm}")
        return "\n".join(lines)


def _verify_candidate(
    name: str,
    cluster: ClusterSpec,
    config: BaguaConfig,
    profile,
    extra: dict,
):
    """Symbolically verify one candidate's plan; None means it survived.

    Static rules see the full cluster shape and the model's real profile;
    the lowered checker + happens-before pass runs at the representative
    verification world (the structure is SPMD — see ``_VERIFY_NODES``).
    """
    from ..analysis.planspace import PlanVerdict, verify_point
    from ..analysis.symbolic import PlanPoint, check_plan_static

    base = dict(
        algorithm=name,
        world_size=cluster.world_size,
        workers_per_node=cluster.workers_per_node,
        overlap=config.overlap,
        flatten=config.flatten,
        hierarchical=config.hierarchical,
        bucket_bytes=config.bucket_bytes,
    )
    base.update(extra)
    full = PlanPoint(**base)
    static = check_plan_static(full, profile)
    if any(f.severity == "error" for f in static):
        return PlanVerdict(
            point=full, findings=tuple(static),
            source="static rules (full cluster shape)",
        )
    scaled = full
    if full.peer_sets is None:  # explicit peer sets pin the world shape
        scaled = dataclasses.replace(
            full,
            world_size=min(full.world_size, _VERIFY_NODES * _VERIFY_WORKERS),
            workers_per_node=min(full.workers_per_node, _VERIFY_WORKERS),
        )
    verdict = verify_point(scaled, hb=True, profile=profile)
    return None if verdict.ok else verdict


def recommend(
    model: ModelSpec,
    cluster: ClusterSpec,
    config: BaguaConfig | None = None,
    candidates=CANDIDATES,
    include_unsafe: bool = True,
    overrides: dict[str, dict] | None = None,
    verify: bool = True,
) -> TuningReport:
    """Rank candidate algorithms for ``model`` on ``cluster``.

    Every candidate first passes through the symbolic plan verifier
    (``verify=False`` skips it); refuted plans are listed last with their
    rejection reason and are never simulated.  ``overrides`` maps a
    candidate name to extra :class:`~repro.analysis.symbolic.PlanPoint`
    fields (codec, EF, topology, world overrides) so callers can probe
    variant plans — the invalid ones are exactly what the pruner rejects.
    Surviving safe candidates sort first (by predicted epoch time); unsafe
    ones follow with their warning unless ``include_unsafe`` is False.
    """
    family = classify_family(model)
    cost = CommCostModel(cluster)
    cfg = config or BaguaConfig()
    profile = profile_from_spec(model.layers)
    baseline = simulate_epoch(
        model, cluster, bagua_system(cost, "allreduce", config)
    ).epoch_time

    recommendations: list[Recommendation] = []
    for name in candidates:
        extra = dict(overrides.get(name, {})) if overrides else {}
        if verify:
            verdict = _verify_candidate(name, cluster, cfg, profile, extra)
            if verdict is not None:
                first = verdict.errors[0]
                recommendations.append(
                    Recommendation(
                        algorithm=name,
                        epoch_time=float("inf"),
                        speedup_vs_allreduce=0.0,
                        safe=False,
                        rejected=True,
                        rejection=f"{first.rule}: {first.message}",
                    )
                )
                continue
        epoch = simulate_epoch(model, cluster, bagua_system(cost, name, config)).epoch_time
        note = _SAFETY_NOTES.get((family, name), "")
        recommendations.append(
            Recommendation(
                algorithm=name,
                epoch_time=epoch,
                speedup_vs_allreduce=baseline / epoch,
                safe=(family, name) not in _SAFETY_NOTES
                or "accuracy drop" in note,  # drops are usable, divergence is not
                note=note,
            )
        )
    recommendations.sort(key=lambda r: (r.rejected, not r.safe, r.epoch_time))
    if not include_unsafe:
        recommendations = [r for r in recommendations if r.safe and not r.rejected]
    return TuningReport(model=model.name, family=family, recommendations=recommendations)
