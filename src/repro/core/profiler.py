"""Profiling phase of the execution optimizer (paper §3.1, "Profiling Phase").

During the first backward pass BAGUA executes without optimization and logs
every communication-function invocation: which parameter became ready, in
what order, and how expensive the producing layer was.  The resulting
:class:`ExecutionProfile` drives bucketing and overlap scheduling for all
later iterations, and the same structure is produced from static
:class:`~repro.models.spec.ModelSpec` inventories for timing-mode simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..tensor.module import Module
from ..tensor.tensor import Tensor


@dataclass
class TensorRecord:
    """One parameter's entry in the gradient-ready log."""

    name: str
    elements: int
    ready_index: int
    # Per-iteration compute cost attributed to the producing layer; zero in
    # functional mode (real compute is measured by actually running), filled
    # in from model specs for timing mode.
    fwd_flops: float = 0.0
    bwd_flops: float = 0.0

    @property
    def nbytes_fp32(self) -> float:
        return self.elements * 4.0


@dataclass
class ExecutionProfile:
    """Ordered gradient-ready log for one model replica."""

    records: list[TensorRecord] = field(default_factory=list)

    @property
    def total_elements(self) -> int:
        return sum(r.elements for r in self.records)

    @property
    def total_bytes_fp32(self) -> float:
        return self.total_elements * 4.0

    def ordered_names(self) -> list[str]:
        return [r.name for r in sorted(self.records, key=lambda r: r.ready_index)]


class GradientReadyProfiler:
    """Records the order in which parameter gradients become final.

    Attach to a model before the first backward pass; afterwards ``profile``
    holds one record per parameter in ready order.  The hooks used are the
    same post-grad hooks the engine later uses to trigger communication —
    profiling is a dry run of the real mechanism.
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self.profile = ExecutionProfile()
        self._installed = False
        self._named = list(model.named_parameters())

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("profiler hooks already installed")
        for name, param in self._named:
            param.register_post_grad_hook(self._make_hook(name))
        self._installed = True

    def _make_hook(self, name: str):
        def hook(param: Tensor) -> None:
            self.profile.records.append(
                TensorRecord(
                    name=name,
                    elements=param.data.size,
                    ready_index=len(self.profile.records),
                )
            )

        return hook

    def uninstall(self) -> None:
        for _name, param in self._named:
            param.clear_post_grad_hooks()
        self._installed = False

    def ready_ordered_params(self) -> list[Tensor]:
        """Parameters sorted by gradient-ready order (requires a completed run)."""
        if not self.profile.records:
            raise RuntimeError("profiling pass has not run yet")
        by_name = dict(self._named)
        missing = [r.name for r in self.profile.records if r.name not in by_name]
        if missing:
            raise KeyError(f"profiled parameters no longer on model: {missing}")
        seen = {r.name for r in self.profile.records}
        leftovers = [p for n, p in self._named if n not in seen]
        ordered = [by_name[r.name] for r in self.profile.records]
        # Parameters that never received a gradient (frozen/unused) go last so
        # bucketing still covers every parameter.
        return ordered + leftovers


def profile_from_spec(layers: Sequence) -> ExecutionProfile:
    """Build a profile from a static layer inventory (timing mode).

    ``layers`` iterate in *forward* order with ``name``, ``params``,
    ``fwd_flops`` and ``bwd_flops`` attributes; gradients become ready in
    reverse order during backward.
    """
    records = []
    for ready_index, layer in enumerate(reversed(list(layers))):
        records.append(
            TensorRecord(
                name=layer.name,
                elements=int(layer.params),
                ready_index=ready_index,
                fwd_flops=float(layer.fwd_flops),
                bwd_flops=float(layer.bwd_flops),
            )
        )
    return ExecutionProfile(records=records)
