"""Tensor bucketing and memory flattening (paper §3.4).

A :class:`TensorBucket` fuses several parameters into one logical unit of
communication.  With flattening enabled, parameter storage is *re-pointed*
into one contiguous buffer, so the flat view used for communication,
compression and the optimizer step is zero-copy — exactly the paper's
"align parameters within a bucket into a continuous memory space" trick
(and Apex's flat-buffer optimizer).  With flattening disabled the bucket
still groups tensors but every flat access gathers/scatters copies, which
is the cost the F-ablation in Table 5 measures.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..tensor.tensor import Tensor


class TensorBucket:
    """A fused group of parameters with an optional flattened backing buffer."""

    def __init__(
        self,
        params: Sequence[Tensor],
        name: str = "",
        flatten: bool = True,
        buffer: np.ndarray | None = None,
    ) -> None:
        if not params:
            raise ValueError("bucket needs at least one tensor")
        self.params: list[Tensor] = list(params)
        self.name = name
        self.flattened = flatten
        self._shapes = [p.data.shape for p in self.params]
        self._sizes = [p.data.size for p in self.params]
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)]).astype(int)
        self.total_elements = int(self._offsets[-1])

        self._buffer: np.ndarray | None = None
        if flatten:
            self._materialize(buffer)
        elif buffer is not None:
            raise ValueError("an external buffer requires flatten=True")

    def _materialize(self, buffer: np.ndarray | None = None) -> None:
        """Copy parameters into one buffer and re-point their storage at it.

        ``buffer`` lets the caller supply a preallocated slice (e.g. a view
        into a per-worker flat pool shared by all buckets) instead of a
        private allocation — the zero-copy bucket path of the fast-path
        engine.
        """
        if buffer is None:
            buffer = np.empty(self.total_elements, dtype=np.float64)
        else:
            if buffer.shape != (self.total_elements,) or buffer.dtype != np.float64:
                raise ValueError(
                    f"bucket buffer must be float64 of shape ({self.total_elements},), "
                    f"got {buffer.dtype} {buffer.shape}"
                )
        for p, lo, hi, shape in zip(self.params, self._offsets, self._offsets[1:], self._shapes):
            buffer[lo:hi] = p.data.reshape(-1)
            p.data = buffer[lo:hi].reshape(shape)
        self._buffer = buffer

    # ------------------------------------------------------------------
    # Introspection (used by repro.analysis)
    # ------------------------------------------------------------------
    @property
    def buffer(self) -> np.ndarray | None:
        """The fused backing buffer, or ``None`` when not flattened."""
        return self._buffer

    def param_slices(self) -> list[tuple]:
        """``(param, start, stop)`` element offsets of each parameter."""
        return [
            (p, int(lo), int(hi))
            for p, lo, hi in zip(self.params, self._offsets, self._offsets[1:])
        ]

    # ------------------------------------------------------------------
    # Flat views of parameters
    # ------------------------------------------------------------------
    def flat_data(self) -> np.ndarray:
        """The bucket's parameters as one 1-D array.

        Zero-copy (a view of the shared buffer) when flattened; otherwise a
        gather copy.
        """
        if self._buffer is not None:
            return self._buffer
        return np.concatenate([p.data.reshape(-1) for p in self.params])

    def set_flat_data(self, flat: np.ndarray) -> None:
        """Write ``flat`` back into the parameters."""
        if flat.shape != (self.total_elements,):
            raise ValueError(f"expected shape ({self.total_elements},), got {flat.shape}")
        if self._buffer is not None:
            if flat is not self._buffer:
                self._buffer[...] = flat
            return
        for p, lo, hi, shape in zip(self.params, self._offsets, self._offsets[1:], self._shapes):
            p.data[...] = flat[lo:hi].reshape(shape)

    # ------------------------------------------------------------------
    # Flat views of gradients
    # ------------------------------------------------------------------
    def flat_grad(self) -> np.ndarray:
        """Gradients of all parameters concatenated (missing grads are zero)."""
        out = np.zeros(self.total_elements)
        for p, lo, hi in zip(self.params, self._offsets, self._offsets[1:]):
            if p.grad is not None:
                out[lo:hi] = p.grad.reshape(-1)
        return out

    def set_flat_grad(self, flat: np.ndarray) -> None:
        if flat.shape != (self.total_elements,):
            raise ValueError(f"expected shape ({self.total_elements},), got {flat.shape}")
        for p, lo, hi, shape in zip(self.params, self._offsets, self._offsets[1:], self._shapes):
            p.grad = flat[lo:hi].reshape(shape).copy()

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def grads_ready(self) -> bool:
        return all(p.grad is not None for p in self.params)

    @property
    def nbytes_fp32(self) -> float:
        """Wire size of the bucket at full (fp32) precision."""
        return self.total_elements * 4.0

    def __len__(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        return (
            f"TensorBucket(name={self.name!r}, tensors={len(self.params)}, "
            f"elements={self.total_elements}, flattened={self.flattened})"
        )


def partition_into_buckets(
    params: Sequence[Tensor],
    bucket_bytes: float,
    flatten: bool = True,
    name_prefix: str = "bucket",
) -> list[TensorBucket]:
    """Greedily group ``params`` (in the given order) into size-capped buckets.

    The order should be the gradient-ready order recorded by the profiler so
    each bucket completes as early as possible during backward.  A single
    tensor larger than ``bucket_bytes`` gets its own bucket.
    """
    if bucket_bytes <= 0:
        raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
    buckets: list[TensorBucket] = []
    current: list[Tensor] = []
    current_bytes = 0.0
    for p in params:
        p_bytes = p.data.size * 4.0
        if current and current_bytes + p_bytes > bucket_bytes:
            buckets.append(TensorBucket(current, name=f"{name_prefix}{len(buckets)}", flatten=flatten))
            current, current_bytes = [], 0.0
        current.append(p)
        current_bytes += p_bytes
    if current:
        buckets.append(TensorBucket(current, name=f"{name_prefix}{len(buckets)}", flatten=flatten))
    return buckets
