"""Per-bucket ready-order scheduling: one schedule, three consumers.

The paper's headline optimizations — overlapping bucket communication with
the backward pass (O) and updating parameters per bucket — are properties of
the *dependency schedule*, not of the arithmetic (Shi et al.'s DAG model of
synchronous SGD).  This module makes that schedule a first-class object:

* :class:`BucketSchedule` is the IR: per-bucket events (gradient-ready gate,
  communicate, post-process, optimizer update) whose gates encode the O/F/H
  switches and the per-bucket vs single-barrier update policy;
* :class:`ScheduledExecutor` *runs* the schedule in functional mode: it
  drives real per-worker buckets through the transport's virtual clocks in
  gradient-ready order, charging compute time per profiled layer group, so
  ``BaguaConfig(overlap=True)`` measurably changes iteration time;
* :func:`repro.simulation.pipeline.simulate_iteration` *prices* the same
  schedule in timing mode, and :func:`repro.analysis.lowering.lower_schedule`
  lowers it into the comm-op IR for the static checker suite.

One object, three interpretations — the functional engine, the timing
simulator and the analyzer can no longer drift apart silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .optimizer_framework import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import BaguaEngine

#: Gate names for communication events.
GATE_GRAD_READY = "grad_ready"  # O on: comm may start at the bucket's ready point
GATE_BACKWARD_END = "backward_end"  # O off: comm waits for the whole backward
#: Gate names for update events.
GATE_COMM_DONE = "comm_done"  # per-bucket update: lands right after the comm
GATE_BARRIER = "barrier"  # single barrier: waits for every bucket's comm

#: Update policies (mirrors ``Algorithm.update_mode``).
UPDATE_PER_BUCKET = "per_bucket"
UPDATE_BARRIER = "barrier"


@dataclass(frozen=True)
class ScheduledBucket:
    """One communication unit of the schedule (a fused bucket).

    ``views`` are ``(param_name, elements)`` pairs in bucket order — enough
    to rebuild the planned address layout for the aliasing analysis without
    holding live tensors.
    """

    index: int
    name: str
    elements: int
    ready_index: int
    fwd_flops: float = 0.0
    bwd_flops: float = 0.0
    num_tensors: int = 1
    views: tuple[tuple[str, int], ...] = ()

    @property
    def nbytes_fp32(self) -> float:
        return self.elements * 4.0


@dataclass(frozen=True)
class ScheduleEvent:
    """One gated per-bucket event.

    ``kind`` is ``comm`` (the collective), ``post`` (communication-side
    post-processing: decompression, server aggregation) or ``update`` (the
    optimizer step on the bucket).  ``gate`` names the dependency the event
    waits on; consumers interpret it against their own notion of time.
    """

    kind: str
    bucket: int
    gate: str


@dataclass(frozen=True)
class BucketSchedule:
    """The per-bucket communication schedule of one training iteration.

    ``buckets`` are in gradient-ready order (the order backward produces
    them, which is the order communication is issued).  The boolean switches
    are the O optimization (``overlap_backward``) and the update policy
    (``per_bucket_updates``); F shows up as the bucketing itself and H as a
    per-schedule flag the comm events inherit.
    """

    buckets: tuple[ScheduledBucket, ...]
    overlap_backward: bool = True
    per_bucket_updates: bool = True
    hierarchical: bool = False
    flatten: bool = True

    @classmethod
    def from_plan(
        cls,
        plan: ExecutionPlan,
        update_mode: str = UPDATE_PER_BUCKET,
        overlap: bool | None = None,
        per_bucket_updates: bool | None = None,
    ) -> BucketSchedule:
        """Build the schedule an :class:`ExecutionPlan` implies.

        ``overlap`` defaults to the plan config's O switch; the update policy
        comes from ``update_mode`` (an :class:`~repro.core.engine.Algorithm`
        declaration) unless ``per_bucket_updates`` overrides it directly.
        """
        if update_mode not in (UPDATE_PER_BUCKET, UPDATE_BARRIER):
            raise ValueError(
                f"unknown update_mode {update_mode!r}; "
                f"use {UPDATE_PER_BUCKET!r} or {UPDATE_BARRIER!r}"
            )
        if per_bucket_updates is None:
            per_bucket_updates = update_mode == UPDATE_PER_BUCKET
        buckets = tuple(
            ScheduledBucket(
                index=planned.index,
                name=f"bucket{planned.index}",
                elements=planned.elements,
                ready_index=planned.ready_index,
                fwd_flops=planned.fwd_flops,
                bwd_flops=planned.bwd_flops,
                num_tensors=len(planned.records),
                views=tuple((r.name, r.elements) for r in planned.records),
            )
            for planned in plan.communication_units()
        )
        return cls(
            buckets=buckets,
            overlap_backward=plan.config.overlap if overlap is None else overlap,
            per_bucket_updates=per_bucket_updates,
            hierarchical=plan.config.hierarchical,
            flatten=plan.config.flatten,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def total_elements(self) -> int:
        return sum(b.elements for b in self.buckets)

    def comm_order(self) -> tuple[ScheduledBucket, ...]:
        """Buckets in the order their communication is issued (ready order)."""
        return self.buckets

    def forward_order(self) -> tuple[ScheduledBucket, ...]:
        """Layer groups in forward order (reverse of gradient-ready order)."""
        return tuple(reversed(self.buckets))

    def events(self) -> list[ScheduleEvent]:
        """The gated event stream consumers execute/price/lower.

        Per bucket, in ready order: a ``comm`` gated on the bucket's gradient
        readiness (O on) or the end of backward (O off), a ``post`` gated on
        that comm, and — with per-bucket updates — an ``update`` gated on the
        same comm.  With the single-barrier policy all updates trail the
        stream, gated on the barrier over every bucket's communication.
        """
        comm_gate = GATE_GRAD_READY if self.overlap_backward else GATE_BACKWARD_END
        stream: list[ScheduleEvent] = []
        for bucket in self.buckets:
            stream.append(ScheduleEvent("comm", bucket.index, comm_gate))
            stream.append(ScheduleEvent("post", bucket.index, GATE_COMM_DONE))
            if self.per_bucket_updates:
                stream.append(ScheduleEvent("update", bucket.index, GATE_COMM_DONE))
        if not self.per_bucket_updates:
            for bucket in self.buckets:
                stream.append(ScheduleEvent("update", bucket.index, GATE_BARRIER))
        return stream

    def describe(self) -> str:
        return (
            f"O={int(self.overlap_backward)},F={int(self.flatten)},"
            f"H={int(self.hierarchical)},"
            f"updates={'per-bucket' if self.per_bucket_updates else 'barrier'},"
            f"buckets={self.num_buckets}"
        )


@dataclass(frozen=True)
class ComputeModel:
    """Prices the local compute the functional engine does not really time.

    Functional mode executes real numpy forward/backward passes but wall
    time is meaningless there; what matters for the virtual clocks is the
    *modeled* GPU time per layer group.  When the profile carries flops
    (timing-mode specs) they are used directly; the profiling phase of
    functional mode records no flops, so a per-element coefficient stands in
    — backward work is roughly proportional to parameter count for the dense
    layers that dominate the reproduction's models.
    """

    #: seconds of backward compute per bucket element when no flops are known
    bwd_seconds_per_element: float = 2e-9
    #: fwd is roughly half of bwd for dense layers (one GEMM vs two)
    fwd_seconds_per_element: float = 1e-9
    #: sustained FLOP/s used when the schedule carries real flop counts
    flops_per_second: float = 15.7e12

    def bwd_seconds(self, bucket: ScheduledBucket) -> float:
        if bucket.bwd_flops > 0.0:
            return bucket.bwd_flops / self.flops_per_second
        return bucket.elements * self.bwd_seconds_per_element

    def fwd_seconds(self, bucket: ScheduledBucket) -> float:
        if bucket.fwd_flops > 0.0:
            return bucket.fwd_flops / self.flops_per_second
        return bucket.elements * self.fwd_seconds_per_element


@dataclass
class IterationReport:
    """Virtual-clock accounting of one scheduled functional iteration."""

    step: int
    #: per-rank absolute clock at the start of the iteration
    start_times: dict[int, float] = field(default_factory=dict)
    #: per-rank absolute clock after compute + communication + updates
    end_times: dict[int, float] = field(default_factory=dict)
    #: per-rank time backward finished (the compute stream's end)
    backward_end: dict[int, float] = field(default_factory=dict)
    #: per (rank, bucket index) absolute gradient-ready time — the comm gate
    ready_times: dict[tuple[int, int], float] = field(default_factory=dict)
    #: per (rank, bucket index) absolute clock right after the bucket's comm;
    #: with the lowered schedule's happens-before order this lets tests prove
    #: HB ⇒ time-ordered against the executor's virtual clocks
    comm_times: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def iteration_time(self) -> float:
        """Wall time of the slowest rank for this iteration."""
        return max(
            self.end_times[r] - self.start_times[r] for r in self.end_times
        )

    @property
    def exposed_comm_time(self) -> float:
        """Slowest rank's time not hidden behind its own backward pass."""
        return max(
            (self.end_times[r] - self.start_times[r])
            - (self.backward_end[r] - self.start_times[r])
            for r in self.end_times
        )


class ScheduledExecutor:
    """Drives an engine's per-worker buckets through a :class:`BucketSchedule`.

    The executor is the functional-mode interpreter of the schedule: for each
    ``comm`` event it advances every participating rank's virtual clock to
    the event's gate (the bucket's gradient-ready time under O, the end of
    backward otherwise) and then calls the algorithm's per-bucket
    communication function, whose exchanges advance the clocks further under
    the transport's alpha-beta cost model.  Compute time is charged from a
    :class:`ComputeModel` per layer group, scaled by each rank's straggler
    factor — so overlap genuinely shortens the measured iteration, instead
    of being a simulator-only fiction.
    """

    def __init__(
        self,
        engine: BaguaEngine,
        schedule: BucketSchedule,
        compute_model: ComputeModel | None = None,
    ) -> None:
        self.engine = engine
        self.schedule = schedule
        self.compute_model = compute_model or ComputeModel()
        self.last_report: IterationReport | None = None

    def run_step(self, step: int) -> IterationReport:
        """Execute one iteration's communication + updates for every worker."""
        engine = self.engine
        transport = engine.group.transport
        spec = transport.spec
        ranks = [w.rank for w in engine.workers]
        report = IterationReport(step=step)
        for rank in ranks:
            report.start_times[rank] = transport.now(rank)

        # Compute stream: absolute gradient-ready time per (rank, bucket),
        # accumulating backward cost in ready order under straggler scaling.
        ready_at: dict[tuple[int, int], float] = {}
        for rank in ranks:
            t = report.start_times[rank]
            for bucket in self.schedule.comm_order():
                t += self.compute_model.bwd_seconds(bucket) * spec.compute_scale(rank)
                ready_at[(rank, bucket.index)] = t
            report.backward_end[rank] = t
        report.ready_times = dict(ready_at)

        # Communication stream: the transport clocks.  Each comm event gates
        # on grad-ready (O on) or backward-end (O off), then the algorithm's
        # communication function runs and the exchanges charge wire time.
        algorithm = engine.algorithm
        for event in self.schedule.events():
            if event.kind == "comm":
                for rank in ranks:
                    gate = (
                        ready_at[(rank, event.bucket)]
                        if event.gate == GATE_GRAD_READY
                        else report.backward_end[rank]
                    )
                    transport.clocks[rank].advance_to(gate)
                algorithm.comm_bucket(engine, event.bucket, step)
                for rank in ranks:
                    report.comm_times[(rank, event.bucket)] = transport.now(rank)
            # ``post`` and per-bucket ``update`` costs are charged inside the
            # algorithm (compression kernels travel with the payloads; the
            # optimizer step is traced but free in functional mode).

        algorithm.on_step_end(engine, step)

        # Join the streams: no rank finishes before its own backward did,
        # and the single-barrier policy synchronizes everyone on the slowest.
        for rank in ranks:
            transport.clocks[rank].advance_to(report.backward_end[rank])
        if not self.schedule.per_bucket_updates:
            transport.barrier(ranks)
        for rank in ranks:
            report.end_times[rank] = transport.now(rank)
        self.last_report = report
        return report
