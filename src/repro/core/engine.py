"""The BAGUA engine: lock-step execution of n model replicas (functional mode).

This is the reproduction's equivalent of ``bagua.bagua_init(model, optimizer,
algorithm)``: it wraps per-worker model replicas, runs the profiling phase on
the first iteration, builds the execution plan (bucketing/flattening per the
:class:`~repro.core.optimizer_framework.BaguaConfig`), and hands aligned
bucket views to the training algorithm after every backward pass.

The engine is "god-view": it owns all replicas and steps them together, which
is how the simulated cluster executes SPMD programs in-process.  All
per-worker state (parameters, optimizer state, error-feedback residuals, RNG
streams) lives in per-worker objects, so the per-rank semantics of each
algorithm are preserved exactly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

import numpy as np

from ..cluster.worker import WorkerContext
from ..comm.fastpath import use_fast_path
from ..comm.group import CommGroup
from ..tensor.module import Module
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor
from .bucket import TensorBucket
from .optimizer_framework import BaguaConfig, ExecutionOptimizer, ExecutionPlan
from .profiler import ExecutionProfile, GradientReadyProfiler
from .schedule import BucketSchedule, ComputeModel, ScheduledExecutor

LossFn = Callable[[Module, object], Tensor]


@dataclass
class WorkerReplica:
    """One worker's replica: model, optimizer, buckets and scratch state."""

    ctx: WorkerContext
    model: Module
    optimizer: Optimizer
    buckets: list[TensorBucket] = field(default_factory=list)
    # Free-form per-worker algorithm state (error feedback, momentum, views).
    state: dict = field(default_factory=dict)

    @property
    def rank(self) -> int:
        return self.ctx.rank

    def bucket_grads(self) -> list[np.ndarray]:
        return [b.flat_grad() for b in self.buckets]

    def bucket_weights(self) -> list[np.ndarray]:
        return [b.flat_data() for b in self.buckets]

    def set_bucket_grads(self, grads: Sequence[np.ndarray]) -> None:
        for bucket, grad in zip(self.buckets, grads):
            bucket.set_flat_grad(grad)

    def set_bucket_weights(self, weights: Sequence[np.ndarray]) -> None:
        for bucket, data in zip(self.buckets, weights):
            bucket.set_flat_data(data)

    def optimizer_step_on_buckets(self, grads: Sequence[np.ndarray] | None = None) -> None:
        """Run the optimizer over the buckets' flat views (paper's flat update).

        ``grads`` defaults to the buckets' own accumulated gradients.  When
        buckets are flattened the update is in place on the fused buffers;
        otherwise results are scattered back to the parameters.
        """
        tracer = self.ctx.transport.tracer
        if tracer is not None:
            for bucket in self.buckets:
                tracer.on_local(
                    self.rank, "opt_step", bucket=bucket.name, elements=bucket.total_elements
                )
        arrays = [b.flat_data() for b in self.buckets]
        if grads is None:
            grads = [b.flat_grad() for b in self.buckets]
        self.optimizer.step_on_slots(range(len(arrays)), arrays, list(grads))
        for bucket, arr in zip(self.buckets, arrays):
            if not bucket.flattened:
                bucket.set_flat_data(arr)

    def optimizer_step_on_bucket(self, k: int, grad: np.ndarray | None = None) -> None:
        """Run the optimizer on bucket ``k`` alone (per-bucket update path).

        Uses the bucket index as the optimizer state slot, so per-bucket
        stepping in ready order is bit-identical to one barrier step over all
        buckets.
        """
        bucket = self.buckets[k]
        tracer = self.ctx.transport.tracer
        if tracer is not None:
            tracer.on_local(
                self.rank, "opt_step", bucket=bucket.name, elements=bucket.total_elements
            )
        array = bucket.flat_data()
        if grad is None:
            grad = bucket.flat_grad()
        self.optimizer.step_on_slots([k], [array], [grad])
        if not bucket.flattened:
            bucket.set_flat_data(array)


class BaguaEngine:
    """Coordinates replicas, the execution plan and the training algorithm."""

    def __init__(
        self,
        models: Sequence[Module],
        optimizers: Sequence[Optimizer],
        algorithm: Algorithm,
        workers: Sequence[WorkerContext],
        config: BaguaConfig | None = None,
        grad_guard: bool = False,
        scheduled: bool | None = None,
        compute_model: ComputeModel | None = None,
    ) -> None:
        if not (len(models) == len(optimizers) == len(workers)):
            raise ValueError(
                f"got {len(models)} models, {len(optimizers)} optimizers, "
                f"{len(workers)} worker contexts"
            )
        self.config = config or BaguaConfig()
        # With grad_guard on, a non-finite gradient raises before it can be
        # communicated and poison every replica — fail fast at the source
        # rank instead of diverging the whole cluster.
        self.grad_guard = grad_guard
        self.algorithm = algorithm
        self.workers: list[WorkerReplica] = [
            WorkerReplica(ctx=ctx, model=m, optimizer=o)
            for ctx, m, o in zip(workers, models, optimizers)
        ]
        transport = workers[0].transport
        if self.config.backend is not None and self.config.backend != transport.backend.name:
            raise ValueError(
                f"config selects backend {self.config.backend!r} but the workers' "
                f"transport runs {transport.backend.name!r}; build the transport "
                "with the same backend (e.g. make_workers(spec, "
                f"backend={self.config.backend!r}))"
            )
        if self.config.protocol_sanitize is not None:
            # Must happen before any protocol traffic: the shm backend bakes
            # the flag into its workers at spawn time (and raises on a late
            # flip), so the engine applies it at construction.
            transport.backend.set_protocol_sanitize(self.config.protocol_sanitize)
        self.group = CommGroup(transport, [w.ctx.rank for w in self.workers])
        self.plan: ExecutionPlan | None = None
        self.profile: ExecutionProfile | None = None
        # ``scheduled=None`` auto-selects: algorithms implementing the
        # per-bucket API run under the ScheduledExecutor, legacy algorithms
        # (only ``on_backward_done`` overridden) run the lock-step loop.
        # ``scheduled=False`` forces the legacy path even for ported
        # algorithms — the equivalence property tests compare both.
        if scheduled is None:
            scheduled = type(algorithm).comm_bucket is not Algorithm.comm_bucket
        elif scheduled and type(algorithm).comm_bucket is Algorithm.comm_bucket:
            raise ValueError(
                f"algorithm {algorithm.name!r} does not implement comm_bucket; "
                "cannot run it under the scheduled executor"
            )
        self._scheduled = scheduled
        self._compute_model = compute_model
        self._warned_legacy_hook = False
        self.schedule: BucketSchedule | None = None
        self.executor: ScheduledExecutor | None = None
        self._step_index = 0
        self._verify_identical_replicas()

    # ------------------------------------------------------------------
    # Introspection used by algorithms
    # ------------------------------------------------------------------
    @property
    def world_size(self) -> int:
        return len(self.workers)

    @property
    def num_buckets(self) -> int:
        return len(self.workers[0].buckets)

    @property
    def hierarchical(self) -> bool:
        return self.config.hierarchical

    def grads_of_bucket(self, k: int) -> list[np.ndarray]:
        return [w.buckets[k].flat_grad() for w in self.workers]

    def weights_of_bucket(self, k: int) -> list[np.ndarray]:
        return [w.buckets[k].flat_data() for w in self.workers]

    def set_grads_of_bucket(self, k: int, grads: Sequence[np.ndarray]) -> None:
        for w, g in zip(self.workers, grads):
            w.buckets[k].set_flat_grad(g)

    def set_weights_of_bucket(self, k: int, weights: Sequence[np.ndarray]) -> None:
        for w, x in zip(self.workers, weights):
            w.buckets[k].set_flat_data(x)

    # ------------------------------------------------------------------
    # Training step
    # ------------------------------------------------------------------
    def step(self, batches: Sequence, loss_fn: LossFn) -> float:
        """One lock-step iteration; returns the mean loss across workers."""
        if len(batches) != self.world_size:
            raise ValueError(f"need {self.world_size} batches, got {len(batches)}")
        if self.config.fast_path is None:
            # No explicit choice: collectives follow the transport backend's
            # kernel preference (resolve_fast_path's backend-aware default).
            return self._step_inner(batches, loss_fn)
        with use_fast_path(self.config.fast_path):
            return self._step_inner(batches, loss_fn)

    def _step_inner(self, batches: Sequence, loss_fn: LossFn) -> float:
        if self.plan is None:
            losses = self._profiling_iteration(batches, loss_fn)
        else:
            losses = self._compute_gradients(batches, loss_fn)
        if self.executor is not None:
            self.executor.run_step(self._step_index)
        else:
            # Warn (once) only for algorithms that still *override* the
            # legacy hook; ported algorithms driven through the base shim
            # (e.g. by the scheduled-vs-legacy equivalence tests) are silent.
            if (
                not self._warned_legacy_hook
                and type(self.algorithm).on_backward_done is not Algorithm.on_backward_done
            ):
                self._warned_legacy_hook = True
                warnings.warn(
                    f"algorithm {self.algorithm.name!r} overrides the deprecated "
                    "on_backward_done() compatibility shim; implement "
                    "comm_bucket() (and on_step_end() for barrier-style "
                    "updates) to run under the ScheduledExecutor",
                    DeprecationWarning,
                    stacklevel=2,
                )
            self.algorithm.on_backward_done(self, self._step_index)
        # Iteration boundary: batched backends (shm fast path) drain their
        # staged per-worker programs here, so doorbell traffic is O(ranks)
        # per step and any deferred transport fault surfaces this iteration.
        self.group.transport.flush()
        self._step_index += 1
        return float(np.mean(losses))

    def _compute_gradients(self, batches: Sequence, loss_fn: LossFn) -> list[float]:
        losses = []
        for worker, batch in zip(self.workers, batches):
            worker.model.zero_grad()
            loss = loss_fn(worker.model, batch)
            loss.backward()
            losses.append(loss.item())
            if self.grad_guard:
                self._check_finite_gradients(worker)
        return losses

    @staticmethod
    def _check_finite_gradients(worker: WorkerReplica) -> None:
        for name, param in worker.model.named_parameters():
            if param.grad is not None and not np.all(np.isfinite(param.grad)):
                raise FloatingPointError(
                    f"non-finite gradient in {name!r} on rank {worker.rank}"
                )

    def _profiling_iteration(self, batches: Sequence, loss_fn: LossFn) -> list[float]:
        """First iteration: run unoptimized, record the ready order, build buckets."""
        profiler = GradientReadyProfiler(self.workers[0].model)
        profiler.install()
        losses = self._compute_gradients(batches, loss_fn)
        profiler.uninstall()
        self.profile = profiler.profile
        self.plan = ExecutionOptimizer(self.config).plan(self.profile)
        self._build_buckets()
        self.schedule = BucketSchedule.from_plan(
            self.plan, update_mode=self.algorithm.update_mode
        )
        if self._scheduled:
            self.executor = ScheduledExecutor(
                self, self.schedule, compute_model=self._compute_model
            )
        self.algorithm.setup(self)
        return losses

    def _build_buckets(self) -> None:
        """Create aligned per-worker buckets following the plan.

        All replicas share the profile recorded on worker 0 — replicas are
        identical by construction, so the ready order is too.

        With flattening on, each worker gets ONE contiguous float64 pool for
        all of its buckets; every bucket's backing buffer is a view into it.
        Bucket-level flat views stay zero-copy exactly as before, and the
        whole replica is additionally contiguous (one allocation per worker
        instead of one per bucket).  The pool's storage comes from the
        transport backend: in-process backends hand back plain ndarrays, the
        shm backend maps a shared-memory segment visible to the rank's
        worker process as well.
        """
        assert self.plan is not None
        flatten = self.config.flatten
        backend = self.group.transport.backend
        total = sum(planned.elements for planned in self.plan.buckets)
        for worker in self.workers:
            by_name = dict(worker.model.named_parameters())
            pool = backend.allocate_pool(worker.rank, total) if flatten else None
            offset = 0
            buckets = []
            for planned in self.plan.buckets:
                params = [by_name[name] for name in planned.names]
                view = None
                if pool is not None:
                    view = pool[offset : offset + planned.elements]
                    offset += planned.elements
                buckets.append(
                    TensorBucket(
                        params,
                        name=f"bucket{planned.index}",
                        flatten=flatten,
                        buffer=view,
                    )
                )
            worker.buckets = buckets
            worker.state["flat_pool"] = pool

    def _verify_identical_replicas(self) -> None:
        reference = self.workers[0].model.state_dict()
        for worker in self.workers[1:]:
            other = worker.model.state_dict()
            if set(other) != set(reference):
                raise ValueError("replica parameter names differ")
            for name, value in reference.items():
                if not np.array_equal(value, other[name]):
                    raise ValueError(
                        f"replicas differ at parameter {name!r}; data-parallel "
                        "training requires identical initialization"
                    )


class Algorithm:
    """Base class of BAGUA training algorithms.

    Subclasses implement the *communication function* of the paper as a
    per-bucket method: the :class:`~repro.core.schedule.ScheduledExecutor`
    calls :meth:`comm_bucket` once per fused bucket, in gradient-ready order,
    after gating each rank's virtual clock on the bucket's readiness (O on)
    or the end of backward (O off); :meth:`on_step_end` runs after the last
    bucket — barrier-style algorithms do their single optimizer step there
    and declare ``update_mode = "barrier"`` so the schedule gates it on all
    communication.  :meth:`setup` runs once, after the profiling iteration
    built the buckets — the place to allocate per-worker state (error
    feedback, momentum buffers, peer views).

    :meth:`on_backward_done` is the legacy monolithic entry point; its
    default now loops :meth:`comm_bucket` over the buckets and calls
    :meth:`on_step_end`, so an unported algorithm overriding only
    ``on_backward_done`` still runs (lock-step, without the executor's
    overlap timing), and a ported algorithm driven through
    ``on_backward_done`` behaves identically to the executor's numerics.
    """

    #: registry name, e.g. "allreduce", "qsgd"
    name: str = "base"
    #: "per_bucket" — parameters update as each bucket's comm lands;
    #: "barrier" — one optimizer step after every bucket communicated.
    update_mode: str = "per_bucket"
    #: async algorithms: max steps an update may lag the gradient it
    #: consumes.  ``None`` = synchronous (no bound to verify); the
    #: happens-before ``hb-staleness`` rule checks declared bounds.
    staleness_bound: int | None = None

    def setup(self, engine: BaguaEngine) -> None:  # noqa: B027 (intentional no-op)
        pass

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        """Communicate (and, in per-bucket mode, update) bucket ``k``."""
        raise NotImplementedError

    def on_step_end(self, engine: BaguaEngine, step: int) -> None:  # noqa: B027
        """Runs once per iteration after the last bucket's communication."""
        pass

    def on_backward_done(self, engine: BaguaEngine, step: int) -> None:
        """Legacy lock-step entry point; shims onto the per-bucket API."""
        if type(self).comm_bucket is Algorithm.comm_bucket:
            raise NotImplementedError(
                "Algorithm subclasses must implement comm_bucket() "
                "(or override on_backward_done for the legacy path)"
            )
        for k in range(engine.num_buckets):
            self.comm_bucket(engine, k, step)
        self.on_step_end(engine, step)
