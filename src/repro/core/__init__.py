"""BAGUA core: primitives, buckets, profiler, execution optimizer, engine."""

from .autotune import Recommendation, TuningReport, classify_family, recommend
from .bucket import TensorBucket, partition_into_buckets
from .communicator import GlobalComm, get_global_comm
from .engine import Algorithm, BaguaEngine, WorkerReplica
from .optimizer_framework import (
    DEFAULT_BUCKET_BYTES,
    BaguaConfig,
    ExecutionOptimizer,
    ExecutionPlan,
    PlannedBucket,
)
from .primitives import (
    PeerSelector,
    RandomPeers,
    RingPeers,
    c_fp_s,
    c_lp_s,
    d_fp_s,
    d_lp_s,
)
from .profiler import (
    ExecutionProfile,
    GradientReadyProfiler,
    TensorRecord,
    profile_from_spec,
)
from .schedule import (
    GATE_BACKWARD_END,
    GATE_BARRIER,
    GATE_COMM_DONE,
    GATE_GRAD_READY,
    UPDATE_BARRIER,
    UPDATE_PER_BUCKET,
    BucketSchedule,
    ComputeModel,
    IterationReport,
    ScheduleEvent,
    ScheduledBucket,
    ScheduledExecutor,
)

__all__ = [
    "TensorBucket",
    "partition_into_buckets",
    "BaguaEngine",
    "WorkerReplica",
    "Algorithm",
    "BucketSchedule",
    "ScheduleEvent",
    "GATE_GRAD_READY",
    "GATE_BACKWARD_END",
    "GATE_COMM_DONE",
    "GATE_BARRIER",
    "UPDATE_PER_BUCKET",
    "UPDATE_BARRIER",
    "ScheduledBucket",
    "ScheduledExecutor",
    "ComputeModel",
    "IterationReport",
    "BaguaConfig",
    "ExecutionOptimizer",
    "ExecutionPlan",
    "PlannedBucket",
    "DEFAULT_BUCKET_BYTES",
    "c_fp_s",
    "c_lp_s",
    "d_fp_s",
    "d_lp_s",
    "PeerSelector",
    "RingPeers",
    "RandomPeers",
    "ExecutionProfile",
    "TensorRecord",
    "GradientReadyProfiler",
    "profile_from_spec",
    "GlobalComm",
    "get_global_comm",
    "recommend",
    "TuningReport",
    "Recommendation",
    "classify_family",
]
