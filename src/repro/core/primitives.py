"""BAGUA's communication primitives (paper §3.2 / §3.3).

All four primitives follow the MPI-like execution model
``op(x_1..x_n) -> x'_1..x'_n``: they take one flattened array per group
member and return the per-member results.

* :func:`c_fp_s` — centralized full-precision synchronous: every member ends
  with ``sum_j x_j`` (Allreduce semantics, ScatterReduce implementation).
* :func:`c_lp_s` — centralized low-precision synchronous with optional
  two-sided error compensation (worker deltas, server epsilons).
* :func:`d_fp_s` — decentralized full-precision: each member averages with
  its peers under a ring or random peer selector.
* :func:`d_lp_s` — decentralized low-precision: peers exchange compressed
  tensors.

Each primitive accepts ``hierarchical=True`` to run the two-tier optimized
variant of §3.4 (which, for decentralized primitives, intentionally changes
semantics: workers within a node are fully synchronized).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..comm.batched import (
    decompress_compatible,
    gossip_average_batched,
    scatter_reduce_batched,
)
from ..comm.fastpath import resolve_fast_path
from ..comm.group import CommGroup
from ..comm.hierarchical import HierarchicalComm
from ..comm.scatter_reduce import scatter_reduce
from ..compression.base import Compressor
from ..compression.error_feedback import ErrorFeedback
from ..cluster.transport import Message


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
def _trace_collective(group: CommGroup, kind: str, elements: int, **meta) -> None:
    """Report one collective invocation to an installed trace recorder.

    A no-op unless a :class:`repro.analysis.recorder.TraceRecorder` is
    attached to the group's transport — the analysis subsystem's view into
    which primitives ran, with what payloads, codecs and peer sets.
    """
    tracer = group.tracer
    if tracer is not None:
        tracer.on_collective(group, kind, elements, **meta)


# ----------------------------------------------------------------------
# Centralized
# ----------------------------------------------------------------------
def c_fp_s(
    arrays: Sequence[np.ndarray],
    group: CommGroup,
    hierarchical: bool = False,
) -> list[np.ndarray]:
    """Centralized full-precision sum: ``x'_i = sum_j x_j`` for all i."""
    _trace_collective(group, "allreduce", arrays[0].size)
    if hierarchical:
        return HierarchicalComm(group).allreduce(arrays)
    return scatter_reduce(arrays, group)


def c_lp_s(
    arrays: Sequence[np.ndarray],
    group: CommGroup,
    compressor: Compressor,
    worker_errors: Sequence[ErrorFeedback] | None = None,
    server_errors: Sequence[ErrorFeedback] | None = None,
    hierarchical: bool = False,
    fast_path: bool | None = None,
) -> list[np.ndarray]:
    """Centralized low-precision sum with optional error compensation.

    Without error feedback this computes ``x'_i = Q(sum_j Q(x_j))`` — both
    the worker-side chunks and the merged partitions travel compressed.

    With error feedback, member ``i`` sends ``Q(x_i - delta_i)`` (per chunk)
    and the partition owner sends ``Q(sum - eps)``; the residuals are updated
    inside the :class:`ErrorFeedback` stores, matching the paper's C_LP_S
    semantics.  ``worker_errors[i]`` is member i's delta store (keyed by chunk
    index), ``server_errors[j]`` is member j's epsilon store for the
    partition it owns.

    With ``hierarchical=True`` compression applies only between node leaders;
    intra-node traffic stays full-precision (the H optimization, which the
    paper notes "can potentially change the semantics").
    """
    if (worker_errors is None) != (server_errors is None):
        raise ValueError("provide both worker_errors and server_errors, or neither")
    use_ef = worker_errors is not None
    if use_ef and (len(worker_errors) != group.size or len(server_errors) != group.size):
        raise ValueError("need one error-feedback store per group member")
    _trace_collective(
        group,
        "compressed_allreduce",
        arrays[0].size,
        compressor=compressor.name,
        biased=compressor.biased,
        error_feedback=use_ef,
    )

    # The batched kernel substitutes each member's own-codec roundtrip for
    # the loop's shared-codec decompress, so the EF variant only routes when
    # the two decompress functions provably coincide.
    batchable = not use_ef or all(
        decompress_compatible(store.compressor, compressor)
        for store in (*worker_errors, *server_errors)
    )
    if resolve_fast_path(fast_path, group.transport) and batchable and group.size > 1:
        if hierarchical:
            return HierarchicalComm(group).allreduce_batched(
                arrays,
                codec=compressor,
                worker_errors=worker_errors,
                server_errors=server_errors,
            )
        return scatter_reduce_batched(
            arrays,
            group,
            codec=compressor,
            worker_errors=worker_errors,
            server_errors=server_errors,
        )

    if use_ef:
        def compress1(chunk: np.ndarray, member: int, chunk_id: int):
            return worker_errors[member].compress(chunk, key=("w", chunk_id))

        def compress2(merged: np.ndarray, member: int, chunk_id: int):
            return server_errors[member].compress(merged, key=("s", chunk_id))
    else:
        def compress1(chunk: np.ndarray, member: int, chunk_id: int):
            return compressor.compress(chunk)

        def compress2(merged: np.ndarray, member: int, chunk_id: int):
            return compressor.compress(merged)

    decompress = compressor.decompress

    if hierarchical:
        return HierarchicalComm(group).allreduce(
            arrays,
            compress_phase1=compress1,
            decompress_phase1=decompress,
            compress_phase2=compress2,
            decompress_phase2=decompress,
        )
    return scatter_reduce(
        arrays,
        group,
        compress_phase1=compress1,
        decompress_phase1=decompress,
        compress_phase2=compress2,
        decompress_phase2=decompress,
    )


# ----------------------------------------------------------------------
# Peer selection for decentralized primitives
# ----------------------------------------------------------------------
class PeerSelector:
    """Chooses each member's neighbor set N(i) for one decentralized round."""

    def neighbors(self, n: int, step: int) -> list[list[int]]:
        """Return, for each member index, the indices it exchanges with."""
        raise NotImplementedError


class RingPeers(PeerSelector):
    """Fixed ring: member i talks to i-1 and i+1 (paper's 'ring' strategy)."""

    def neighbors(self, n: int, step: int) -> list[list[int]]:
        if n == 1:
            return [[]]
        if n == 2:
            return [[1], [0]]
        return [[(i - 1) % n, (i + 1) % n] for i in range(n)]


class RandomPeers(PeerSelector):
    """Random pairing per step (the 'random probing' strategy of Decen-32bits).

    All members share the same RNG stream seeded by ``step`` so every worker
    derives the identical matching without extra coordination — the standard
    trick for randomized decentralized SGD.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def neighbors(self, n: int, step: int) -> list[list[int]]:
        if n == 1:
            return [[]]
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, step]))
        order = rng.permutation(n)
        peers: list[list[int]] = [[] for _ in range(n)]
        # Pair consecutive members of the permutation; odd member out idles.
        for a, b in zip(order[0::2], order[1::2]):
            peers[int(a)] = [int(b)]
            peers[int(b)] = [int(a)]
        return peers


# ----------------------------------------------------------------------
# Decentralized
# ----------------------------------------------------------------------
def _peer_exchange(
    payloads: Sequence, peers: list[list[int]], group: CommGroup
) -> list[dict]:
    """One message round delivering ``payloads[i]`` to every peer of i."""
    messages = []
    for i, neigh in enumerate(peers):
        for j in neigh:
            messages.append(
                Message(
                    group.ranks[i], group.ranks[j], (i, payloads[i]),
                    match_id=f"gossip.m{i}->{j}",
                )
            )
    received: list[dict] = [{} for _ in range(group.size)]
    if messages:
        inbox = group.transport.exchange(messages)
        for j in range(group.size):
            for msg in inbox.get(group.ranks[j], []):
                i, payload = msg.payload
                received[j][i] = payload
    return received


def d_fp_s(
    arrays: Sequence[np.ndarray],
    group: CommGroup,
    peers: PeerSelector,
    step: int = 0,
    hierarchical: bool = False,
    fast_path: bool | None = None,
) -> list[np.ndarray]:
    """Decentralized full-precision averaging: ``x'_i = mean of {x_i} ∪ N(i)``."""
    if hierarchical:
        def exchange(leader_arrays, leader_group):
            return d_fp_s(
                leader_arrays, leader_group, peers,
                step=step, hierarchical=False, fast_path=fast_path,
            )

        return HierarchicalComm(group).decentralized_average(arrays, exchange)

    neighbor_sets = peers.neighbors(group.size, step)
    _trace_collective(group, "gossip", arrays[0].size, peers_by_member=neighbor_sets)
    if resolve_fast_path(fast_path, group.transport):
        return gossip_average_batched(arrays, neighbor_sets, group)
    received = _peer_exchange([a.astype(np.float64, copy=False) for a in arrays], neighbor_sets, group)
    results = []
    for i in range(group.size):
        # Accumulate in float64 for associativity-stable sums, but hand the
        # result back in the caller's dtype — a mixed-precision replica must
        # not have its weights silently widened by one gossip round.
        acc = arrays[i].astype(np.float64, copy=True)
        for _src, payload in sorted(received[i].items()):
            acc += payload
        results.append((acc / (1 + len(received[i]))).astype(arrays[i].dtype, copy=False))
    return results


def d_lp_s(
    arrays: Sequence[np.ndarray],
    group: CommGroup,
    compressor: Compressor,
    peers: PeerSelector,
    step: int = 0,
    hierarchical: bool = False,
    fast_path: bool | None = None,
) -> list[np.ndarray]:
    """Decentralized low-precision averaging: peers exchange ``Q(x)``.

    Each member averages its own full-precision tensor with the decompressed
    tensors received from its neighbors (ref [17]'s compressed gossip).
    """
    if hierarchical:
        def exchange(leader_arrays, leader_group):
            return d_lp_s(
                leader_arrays, leader_group, compressor, peers,
                step=step, hierarchical=False, fast_path=fast_path,
            )

        return HierarchicalComm(group).decentralized_average(arrays, exchange)

    neighbor_sets = peers.neighbors(group.size, step)
    _trace_collective(
        group,
        "compressed_gossip",
        arrays[0].size,
        compressor=compressor.name,
        biased=compressor.biased,
        peers_by_member=neighbor_sets,
    )
    if resolve_fast_path(fast_path, group.transport):
        return gossip_average_batched(arrays, neighbor_sets, group, codec=compressor)
    payloads = [compressor.compress(a) for a in arrays]
    received = _peer_exchange(payloads, neighbor_sets, group)
    results = []
    for i in range(group.size):
        # Same float64-accumulate / cast-back contract as d_fp_s.
        acc = arrays[i].astype(np.float64, copy=True)
        for _src, payload in sorted(received[i].items()):
            acc += compressor.decompress(payload)
        results.append((acc / (1 + len(received[i]))).astype(arrays[i].dtype, copy=False))
    return results
