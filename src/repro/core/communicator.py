"""The developer-facing communicator facade of the paper's Listing 2.

Algorithm developers in BAGUA write against a global communicator object::

    self.global_comm = bagua.communication.get_global_comm()
    self.worker_err, self.server_err = \
        self.global_comm.cen_lp_sync.init_states(self.param)
    ...
    self.global_comm.cen_lp_sync.exec(
        gradients, qsgd_compress_fn, self.worker_err, self.server_err)

This module reproduces that surface.  A :class:`GlobalComm` wraps a
:class:`~repro.comm.group.CommGroup` and exposes one handle per primitive —
``cen_fp_sync`` / ``cen_lp_sync`` / ``decen_fp_sync`` / ``decen_lp_sync`` —
each with ``exec`` and (for the low-precision ones) ``init_states``.
Because the simulation is lock-step, ``exec`` takes the per-member arrays at
once and returns per-member results, but state handling (one error-feedback
pair per member) matches the per-rank program exactly.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..comm.group import CommGroup

if TYPE_CHECKING:
    from ..cluster.backends import TransportBackend
from ..compression.base import Compressor
from ..compression.error_feedback import ErrorFeedback
from .primitives import PeerSelector, RingPeers, c_fp_s, c_lp_s, d_fp_s, d_lp_s


class CentralizedFullPrecision:
    """Handle for C_FP_S."""

    def __init__(self, comm: GlobalComm) -> None:
        self._comm = comm

    def exec(self, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        return c_fp_s(arrays, self._comm.group, hierarchical=self._comm.hierarchical)


class CentralizedLowPrecision:
    """Handle for C_LP_S with optional error-compensation state."""

    def __init__(self, comm: GlobalComm) -> None:
        self._comm = comm

    def init_states(
        self, compressor: Compressor
    ) -> tuple[list[ErrorFeedback], list[ErrorFeedback]]:
        """Allocate (worker_err, server_err) stores, one pair per member.

        Mirrors Listing 2's ``init_states``; reuse one pair per bucket (chunk
        keys repeat across buckets).
        """
        n = self._comm.group.size
        return (
            [ErrorFeedback(compressor) for _ in range(n)],
            [ErrorFeedback(compressor) for _ in range(n)],
        )

    def exec(
        self,
        arrays: Sequence[np.ndarray],
        compressor: Compressor,
        worker_err: Sequence[ErrorFeedback] | None = None,
        server_err: Sequence[ErrorFeedback] | None = None,
    ) -> list[np.ndarray]:
        return c_lp_s(
            arrays,
            self._comm.group,
            compressor=compressor,
            worker_errors=worker_err,
            server_errors=server_err,
            hierarchical=self._comm.hierarchical,
        )


class DecentralizedFullPrecision:
    """Handle for D_FP_S."""

    def __init__(self, comm: GlobalComm) -> None:
        self._comm = comm

    def exec(
        self,
        arrays: Sequence[np.ndarray],
        peers: PeerSelector | None = None,
        step: int = 0,
    ) -> list[np.ndarray]:
        return d_fp_s(
            arrays,
            self._comm.group,
            peers=peers or RingPeers(),
            step=step,
            hierarchical=self._comm.hierarchical,
        )


class DecentralizedLowPrecision:
    """Handle for D_LP_S."""

    def __init__(self, comm: GlobalComm) -> None:
        self._comm = comm

    def exec(
        self,
        arrays: Sequence[np.ndarray],
        compressor: Compressor,
        peers: PeerSelector | None = None,
        step: int = 0,
    ) -> list[np.ndarray]:
        return d_lp_s(
            arrays,
            self._comm.group,
            compressor=compressor,
            peers=peers or RingPeers(),
            step=step,
            hierarchical=self._comm.hierarchical,
        )


class GlobalComm:
    """All four primitive handles over one communication group."""

    def __init__(self, group: CommGroup, hierarchical: bool = False) -> None:
        self.group = group
        self.hierarchical = hierarchical
        self.cen_fp_sync = CentralizedFullPrecision(self)
        self.cen_lp_sync = CentralizedLowPrecision(self)
        self.decen_fp_sync = DecentralizedFullPrecision(self)
        self.decen_lp_sync = DecentralizedLowPrecision(self)

    @property
    def world_size(self) -> int:
        return self.group.size

    @property
    def backend(self) -> TransportBackend:
        """The execution substrate the group's transport runs on."""
        return self.group.transport.backend


def get_global_comm(engine) -> GlobalComm:
    """Listing-2 entry point: the engine's group wrapped as a GlobalComm."""
    return GlobalComm(engine.group, hierarchical=engine.hierarchical)
