"""Command-line entry point: ``python -m repro <experiment> [options]``.

Regenerates individual tables/figures of the paper's evaluation, runs the
auto-tuner, statically analyzes algorithm communication schedules
(``python -m repro analyze``), or prints the system inventory.
``python -m repro all`` is the same as ``examples/reproduce_paper.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable

from .cluster.topology import paper_cluster
from .core.autotune import recommend
from .experiments import (
    fig5_convergence_systems,
    fig6_convergence_algorithms,
    fig7_network_conditions,
    heterogeneity_study,
    scalability,
    silver_bullet,
    table1_support,
    table2_models,
    table3_speedup,
    table4_epoch_time,
    table5_ablation,
    time_to_loss,
)
from .models.zoo_specs import all_specs

EXPERIMENTS: dict[str, Callable[[], object]] = {
    "table1": table1_support.run,
    "table2": table2_models.run,
    "table3": table3_speedup.run,
    "table4": table4_epoch_time.run,
    "table5": table5_ablation.run,
    "fig5": lambda: fig5_convergence_systems.run(epochs=4),
    "fig6": lambda: fig6_convergence_algorithms.run(epochs=5),
    "fig7": fig7_network_conditions.run,
    "heterogeneity": heterogeneity_study.run,
    "scalability": scalability.run,
    "time-to-loss": time_to_loss.run,
    "silver-bullet": silver_bullet.run,
}


def _run_plans(args) -> int:
    """Symbolic plan-space sweep: no transport, no dry run (``--plans``).

    Exit code 1 when any error-severity finding fires on a default-enabled
    plan (a plan the enumerator emits without codec/topology overrides) —
    the ``lint-plans`` CI gate.
    """
    from .analysis.planspace import enumerate_points, sweep_planspace

    algorithms = None
    if args.algorithm is not None:
        algorithms = [args.algorithm]
    points = enumerate_points(
        algorithms=algorithms,
        world_shapes=((args.nodes, args.gpus_per_node),),
        include_baselines=args.hb,
    )
    try:
        report = sweep_planspace(points, hb=True)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(json.dumps(report.to_dict(), indent=2) if args.json else report.render())
    return 0 if report.ok else 1


def _run_protocol(args) -> int:
    """Protocol gate: model exploration + mutations + live conformance."""
    from .analysis.protocol import analyze_protocol

    report = analyze_protocol(live=not args.no_live)
    print(json.dumps(report.to_dict(), indent=2) if args.json else report.render())
    return 0 if report.ok else 1


def _run_analyze(args) -> int:
    from .algorithms.registry import ALGORITHM_REGISTRY
    from .analysis import analyze_algorithm, analyze_all
    from .baselines import BASELINE_REGISTRY

    if args.nodes < 1 or args.gpus_per_node < 1:
        print("--nodes and --gpus-per-node must be >= 1", file=sys.stderr)
        return 2
    if args.steps < 1:
        print("--steps must be >= 1 (0 steps would pass vacuously)", file=sys.stderr)
        return 2
    if args.explain is not None and args.explain < 0:
        print("--explain takes a non-negative finding index", file=sys.stderr)
        return 2
    if args.protocol:
        return _run_protocol(args)
    if args.plans:
        return _run_plans(args)
    if args.all:
        report = analyze_all(
            num_nodes=args.nodes, gpus_per_node=args.gpus_per_node, steps=args.steps,
            hb=args.hb,
        )
        findings = report.all_findings()
    else:
        if args.algorithm is None:
            print("analyze needs an algorithm name or --all", file=sys.stderr)
            return 2
        known = set(ALGORITHM_REGISTRY) | (set(BASELINE_REGISTRY) if args.hb else set())
        if args.algorithm not in known:
            print(
                f"unknown algorithm {args.algorithm!r}; options: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        report = analyze_algorithm(
            args.algorithm,
            num_nodes=args.nodes,
            gpus_per_node=args.gpus_per_node,
            steps=args.steps,
            hb=args.hb,
        )
        findings = report.findings
    if args.explain is not None:
        if args.explain >= len(findings):
            print(
                f"--explain {args.explain}: report has only {len(findings)} "
                "finding(s)",
                file=sys.stderr,
            )
            return 2
        print(findings[args.explain].explain())
        return 0 if report.ok else 1
    print(json.dumps(report.to_dict(), indent=2) if args.json else report.render())
    return 0 if report.ok else 1


def _run_perf(args) -> int:
    import os
    from pathlib import Path

    from .perf import check_against_baseline, run_suite
    from .perf.harness import render

    if args.backend is not None:
        # Every Transport the suite constructs resolves its backend from
        # the environment when nothing explicit is passed.
        os.environ["REPRO_BACKEND"] = args.backend
    result = run_suite(quick=args.quick, repeats=args.repeats)
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    print(f"wrote {out}")

    baseline = None
    baseline_path = Path(args.baseline)
    if args.check:
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
        else:
            print(f"no baseline at {baseline_path}; checking speedup floors only")
        failures = check_against_baseline(result, baseline)
        if failures:
            print("PERF CHECK FAILED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("perf check passed (regression gate + speedup floors)")
    return 0


def _run_autotune(args) -> int:
    specs = all_specs()
    if args.model not in specs:
        print(f"unknown model {args.model!r}; options: {sorted(specs)}", file=sys.stderr)
        return 2
    report = recommend(specs[args.model], paper_cluster(args.network))
    print(report.render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="regenerate one experiment (or 'all')"
    )
    run_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"],
    )

    tune_parser = subparsers.add_parser(
        "autotune", help="recommend the best algorithm for a model/network"
    )
    tune_parser.add_argument("model", help="VGG16 | BERT-LARGE | BERT-BASE | Transformer | LSTM+AlexNet")
    tune_parser.add_argument(
        "--network", default="25gbps", choices=["10gbps", "25gbps", "100gbps"]
    )

    perf_parser = subparsers.add_parser(
        "perf",
        help="benchmark the world-batched fast path vs the loop reference",
        description=(
            "Time the hot collective and compression kernels (loop vs "
            "batched fast path), one functional-mode epoch per world "
            "size, and the shm round-latency/wire-codec microbenches, "
            "write the result JSON (default BENCH.json; CI suffixes it "
            "per backend), and optionally gate against the committed "
            "baseline (fails when a kernel's geomean speedup drops >20% "
            "below baseline, or on a missed speedup floor)."
        ),
    )
    perf_parser.add_argument(
        "--out", default="BENCH.json", help="result JSON path"
    )
    perf_parser.add_argument(
        "--baseline",
        default="benchmarks/perf/baseline.json",
        help="baseline JSON to gate against (with --check)",
    )
    perf_parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on regression vs baseline or a missed floor",
    )
    perf_parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: worlds {4,16}, one size per kernel",
    )
    perf_parser.add_argument(
        "--repeats", type=int, default=None,
        help="best-of-N timing repeats (default: 3, or 2 with --quick)",
    )
    perf_parser.add_argument(
        "--backend", default=None, choices=["local", "batched", "shm"],
        help=(
            "transport backend for the suite (sets REPRO_BACKEND; "
            "default: batched, or whatever REPRO_BACKEND already says)"
        ),
    )

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="statically verify an algorithm's communication schedule",
        description=(
            "Dry-run an algorithm on a small simulated cluster, lower its "
            "execution plan, and run the checker suite (rank-symmetry, "
            "peer-matching, overlap-race, buffer-aliasing, ef-invariant). "
            "Exit code 1 when any error-severity finding fires."
        ),
    )
    analyze_parser.add_argument(
        "algorithm", nargs="?", default=None, help="registry name, e.g. 'allreduce'"
    )
    analyze_parser.add_argument(
        "--all", action="store_true", help="sweep every registered algorithm"
    )
    analyze_parser.add_argument("--nodes", type=int, default=2)
    analyze_parser.add_argument("--gpus-per-node", type=int, default=2)
    analyze_parser.add_argument(
        "--steps", type=int, default=5, help="dry-run iterations to record"
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    analyze_parser.add_argument(
        "--hb", action="store_true",
        help=(
            "run the happens-before pass (vector-clock race/deadlock/"
            "lost-update/staleness rules) and sweep every O/F/H x "
            "update-mode schedule variant; includes the baseline registry "
            "under --all"
        ),
    )
    analyze_parser.add_argument(
        "--explain", type=int, default=None, metavar="N",
        help=(
            "print finding N with its happens-before witness (the unordered "
            "event pair and a minimal HB path) instead of the full report"
        ),
    )
    analyze_parser.add_argument(
        "--protocol", action="store_true",
        help=(
            "verify the transport backend protocol: exhaustively explore "
            "the shm protocol model (all interleavings, DPOR-reduced), run "
            "the seeded-bug mutation suite, and replay one sanitized live "
            "shm run through the cross-process conformance checker; exit 1 "
            "on any finding, missed mutation, or divergence"
        ),
    )
    analyze_parser.add_argument(
        "--no-live", action="store_true",
        help="with --protocol: skip the live sanitized shm run (model only)",
    )
    analyze_parser.add_argument(
        "--plans", action="store_true",
        help=(
            "symbolic plan-space sweep: enumerate O/F/H x algorithm plan "
            "points, verify each with the static rules plus the lowered "
            "checker and happens-before suites — no transport, no dry run. "
            "An algorithm name restricts the sweep; --hb widens it to the "
            "baseline registry; exit 1 on any error-severity finding"
        ),
    )

    args = parser.parse_args(argv)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "autotune":
        return _run_autotune(args)
    if args.command == "analyze":
        return _run_analyze(args)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"== {name} ==")
        print(EXPERIMENTS[name]().render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
