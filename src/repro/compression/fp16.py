"""fp16 truncation — the gradient compression Horovod/DDP expose via NCCL.

The paper compares against "Horovod 16bits"; this codec halves wire size and
is nearly lossless for gradient magnitudes encountered in training.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import CompressedPayload, Compressor


#: largest finite half-precision value; inputs are clipped to avoid inf on
#: the wire (the standard guard in fp16 gradient-compression hooks)
FP16_MAX = 65504.0


class FP16Compressor(Compressor):
    name = "fp16"

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64)
        clipped = np.clip(array, -FP16_MAX, FP16_MAX)
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"values": clipped.astype(np.float16)},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return np.asarray(payload.fields["values"], dtype=np.float64)

    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        # Elementwise codec: segment boundaries don't matter.
        matrix = np.asarray(matrix, dtype=np.float64)
        clipped = np.clip(matrix, -FP16_MAX, FP16_MAX)
        return clipped.astype(np.float16).astype(np.float64)

    def wire_bytes(self, n_elements: int) -> float:
        return float(n_elements * 2)
