"""Error compensation (error feedback) state for biased compressors.

Implements the residual-accumulation scheme of the C_LP_S primitive
(paper §3.2): before compressing, the previous step's compression error is
added back; after compressing, the new error is stored:

    y        = x - delta          # delta is the stored error (paper notation)
    payload  = Q(y)
    delta'   = y - Q(y)

A single :class:`ErrorFeedback` instance holds one residual per *key*, so the
same object can serve the worker side (one residual per bucket) and the
server side (one residual per owned partition) of ScatterReduce.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from .base import CompressedPayload, Compressor


class ErrorFeedback:
    """Residual store wrapping a compressor into an error-compensated codec."""

    def __init__(self, compressor: Compressor) -> None:
        self.compressor = compressor
        self._residuals: dict[Hashable, np.ndarray] = {}

    def residual(self, key: Hashable, n: int) -> np.ndarray:
        """Current residual for ``key`` (zeros before first use)."""
        if key not in self._residuals:
            self._residuals[key] = np.zeros(n)
        stored = self._residuals[key]
        if stored.shape[0] != n:
            raise ValueError(
                f"residual size mismatch for key {key!r}: have {stored.shape[0]}, need {n}"
            )
        return stored

    def store(self, key: Hashable, value: np.ndarray) -> None:
        """Overwrite the residual for ``key`` (used by the batched kernels,
        which compute ``compensated - decompressed`` outside this class)."""
        self._residuals[key] = np.asarray(value, dtype=np.float64).reshape(-1)

    def compress(self, array: np.ndarray, key: Hashable) -> CompressedPayload:
        """Compress ``array`` with compensation; updates the stored residual."""
        array = np.asarray(array, dtype=np.float64).reshape(-1)
        compensated = array + self.residual(key, array.size)
        payload = self.compressor.compress(compensated)
        self._residuals[key] = compensated - self.compressor.decompress(payload)
        return payload

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return self.compressor.decompress(payload)

    def reset(self) -> None:
        self._residuals.clear()

    def total_residual_norm(self) -> float:
        """L2 norm of all stored residuals (diagnostic; bounded for EF-SGD)."""
        if not self._residuals:
            return 0.0
        return float(np.sqrt(sum(np.sum(r ** 2) for r in self._residuals.values())))
