"""signSGD compression (Bernstein et al., 2018; paper ref [6]).

Pure sign with a single global L1 scale; one bit per element.  Unlike the
1-bit codec, the scale is the mean absolute value of the whole tensor, which
matches the signSGD-with-majority-vote formulation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import CompressedPayload, Compressor


class SignSGDCompressor(Compressor):
    name = "signsgd"
    biased = True

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64).reshape(-1)
        scale = float(np.abs(array).mean()) if array.size else 0.0
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"signs": np.packbits(array > 0), "scale": scale},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        signs = np.unpackbits(
            np.asarray(payload.fields["signs"], dtype=np.uint8), count=payload.n
        ).astype(np.float64)
        return (2.0 * signs - 1.0) * float(payload.fields["scale"])

    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """Vectorized roundtrip: per-(row, segment) L1 scale via axis mean."""
        if any(hi - lo == 0 for lo, hi in bounds):
            # mean of an empty axis warns; the reference loop guards size==0.
            return super().batch_roundtrip(matrix, bounds)
        matrix = np.asarray(matrix, dtype=np.float64)
        out = np.empty_like(matrix)
        for lo, hi in bounds:
            seg = matrix[:, lo:hi]
            scale = np.abs(seg).mean(axis=1)
            signs = (seg > 0).astype(np.float64)
            out[:, lo:hi] = (2.0 * signs - 1.0) * scale[:, None]
        return out

    def wire_bytes(self, n_elements: int) -> float:
        return np.ceil(n_elements / 8.0) + 4.0
