"""Lossy tensor codecs (the Q functions of the low-precision primitives)."""

from .base import FULL_PRECISION_BYTES, CompressedPayload, Compressor, IdentityCompressor
from .error_feedback import ErrorFeedback
from .fp16 import FP16Compressor
from .onebit import OneBitCompressor
from .qsgd import QSGDCompressor
from .signsgd import SignSGDCompressor
from .sketch import CountSketchCompressor
from .terngrad import TernGradCompressor
from .topk import RandomKCompressor, TopKCompressor

COMPRESSOR_REGISTRY = {
    "fp32": IdentityCompressor,
    "fp16": FP16Compressor,
    "qsgd8": QSGDCompressor,
    "1bit": OneBitCompressor,
    "topk": TopKCompressor,
    "randk": RandomKCompressor,
    "terngrad": TernGradCompressor,
    "signsgd": SignSGDCompressor,
    "sketch": CountSketchCompressor,
}


def make_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a codec by registry name."""
    if name not in COMPRESSOR_REGISTRY:
        raise KeyError(f"unknown compressor {name!r}; options: {sorted(COMPRESSOR_REGISTRY)}")
    return COMPRESSOR_REGISTRY[name](**kwargs)


__all__ = [
    "Compressor",
    "CompressedPayload",
    "IdentityCompressor",
    "FULL_PRECISION_BYTES",
    "QSGDCompressor",
    "OneBitCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "FP16Compressor",
    "TernGradCompressor",
    "SignSGDCompressor",
    "CountSketchCompressor",
    "ErrorFeedback",
    "COMPRESSOR_REGISTRY",
    "make_compressor",
]
