"""Compressor interface and payload wire-size accounting.

A compressor is the lossy function ``Q`` in the paper's low-precision
primitives.  ``compress`` produces a :class:`CompressedPayload` that knows
its own wire size in bytes — the transport charges that size, so compressed
communication is cheaper on the simulated network exactly as it is on a real
one.  ``decompress`` reconstructs a (lossy) float array.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

# Real systems communicate fp32 gradients; the simulation's numpy arrays are
# float64 for numeric robustness, so full-precision wire size is defined as
# 4 bytes/element rather than taken from the numpy buffer.
FULL_PRECISION_BYTES = 4


@dataclass
class CompressedPayload:
    """Opaque compressed tensor plus its wire size.

    ``fields`` holds whatever the codec needs to reconstruct the array;
    ``wire_bytes`` is what the network is charged.
    """

    codec: str
    n: int
    wire_bytes: float
    fields: dict[str, np.ndarray | float]


class Compressor:
    """Base class for lossy tensor codecs."""

    #: short identifier used in registries and reports
    name: str = "identity"

    #: True when ``E[decompress(compress(x))] != x``.  Biased codecs need
    #: error-feedback residual state to converge (paper §2.2); the analyzer's
    #: ``ef-invariant`` rule enforces exactly this flag.
    biased: bool = False

    def compress(self, array: np.ndarray) -> CompressedPayload:
        raise NotImplementedError

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        raise NotImplementedError

    def wire_bytes(self, n_elements: int) -> float:
        """Wire size for an ``n_elements`` tensor (used by the cost model)."""
        raise NotImplementedError

    def compression_ratio(self, n_elements: int = 1 << 20) -> float:
        """Full-precision bytes divided by compressed bytes."""
        full = n_elements * FULL_PRECISION_BYTES
        return full / self.wire_bytes(n_elements)

    # ------------------------------------------------------------------
    # World-batched kernel interface
    # ------------------------------------------------------------------
    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """``decompress(compress(cell))`` for every (row, column-segment) cell.

        ``matrix`` is a ``(rows, n)`` float64 array — one row per group
        member — and ``bounds`` are ``(lo, hi)`` column segments shared by
        all rows (the chunk partition of a collective).  Returns an array of
        the same shape holding the roundtripped values, **bitwise equal** to
        calling :meth:`compress` / :meth:`decompress` on each cell in
        row-major order (row 0's segments left to right, then row 1, ...).
        Row-major order is the contract that keeps stochastic codecs' RNG
        streams unchanged: one batched draw over the full matrix consumes the
        generator exactly as the sequence of per-cell draws does.

        This base implementation *is* the per-cell loop, so it is bit-exact
        by construction; vectorized overrides in subclasses must preserve it
        (the fast-path property tests compare both).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        out = np.empty_like(matrix)
        for i in range(matrix.shape[0]):
            for lo, hi in bounds:
                out[i, lo:hi] = self.decompress(self.compress(matrix[i, lo:hi]))
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IdentityCompressor(Compressor):
    """No-op codec: full-precision (fp32-equivalent) wire size."""

    name = "fp32"

    def compress(self, array: np.ndarray) -> CompressedPayload:
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"values": array.astype(np.float64, copy=True)},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return np.asarray(payload.fields["values"]).copy()

    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        return np.asarray(matrix, dtype=np.float64).copy()

    def wire_bytes(self, n_elements: int) -> float:
        return float(n_elements * FULL_PRECISION_BYTES)
