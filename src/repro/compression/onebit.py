"""1-bit compression with magnitude rescaling (used by 1-bit Adam, ref [79]).

Each element is reduced to its sign; magnitudes are preserved in aggregate by
two scalars — the mean absolute value of the positive and negative parts —
so decompression returns ``scale_pos`` for positive entries and
``-scale_neg`` for negative ones.  This codec is biased (hence the paper
pairs it with error compensation via C_LP_S).
"""

from __future__ import annotations

import numpy as np

from .base import CompressedPayload, Compressor


class OneBitCompressor(Compressor):
    name = "1bit"
    biased = True

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64)
        positive = array > 0
        pos_vals = array[positive]
        neg_vals = array[~positive]
        scale_pos = float(pos_vals.mean()) if pos_vals.size else 0.0
        scale_neg = float(-neg_vals.mean()) if neg_vals.size else 0.0
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={
                "signs": np.packbits(positive.reshape(-1)),
                "scale_pos": scale_pos,
                "scale_neg": scale_neg,
            },
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        signs = np.unpackbits(
            np.asarray(payload.fields["signs"], dtype=np.uint8), count=payload.n
        ).astype(bool)
        out = np.where(signs, payload.fields["scale_pos"], -payload.fields["scale_neg"])
        return out.astype(np.float64)

    def wire_bytes(self, n_elements: int) -> float:
        return np.ceil(n_elements / 8.0) + 8.0  # sign bits + two fp32 scales
