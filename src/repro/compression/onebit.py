"""1-bit compression with magnitude rescaling (used by 1-bit Adam, ref [79]).

Each element is reduced to its sign; magnitudes are preserved in aggregate by
two scalars — the mean absolute value of the positive and negative parts —
so decompression returns ``scale_pos`` for positive entries and
``-scale_neg`` for negative ones.  This codec is biased (hence the paper
pairs it with error compensation via C_LP_S).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import CompressedPayload, Compressor


class OneBitCompressor(Compressor):
    name = "1bit"
    biased = True

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64)
        positive = array > 0
        # Masked sums over the full-length array rather than compacted
        # ``array[positive].mean()``: numpy's pairwise summation depends on
        # operand length, and the batched kernel reduces full-width rows —
        # both paths must share one formulation to stay bitwise identical.
        pos_count = int(np.count_nonzero(positive))
        neg_count = array.size - pos_count
        pos_sum = float(np.where(positive, array, 0.0).sum())
        neg_sum = float(np.where(positive, 0.0, array).sum())
        scale_pos = pos_sum / pos_count if pos_count else 0.0
        scale_neg = -(neg_sum / neg_count) if neg_count else 0.0
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={
                "signs": np.packbits(positive.reshape(-1)),
                "scale_pos": scale_pos,
                "scale_neg": scale_neg,
            },
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        signs = np.unpackbits(
            np.asarray(payload.fields["signs"], dtype=np.uint8), count=payload.n
        ).astype(bool)
        out = np.where(signs, payload.fields["scale_pos"], -payload.fields["scale_neg"])
        return out.astype(np.float64)

    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """Vectorized roundtrip: per-(row, segment) sign scales via axis sums."""
        matrix = np.asarray(matrix, dtype=np.float64)
        out = np.empty_like(matrix)
        for lo, hi in bounds:
            seg = matrix[:, lo:hi]
            positive = seg > 0
            pos_count = np.count_nonzero(positive, axis=1)
            neg_count = (hi - lo) - pos_count
            pos_sum = np.where(positive, seg, 0.0).sum(axis=1)
            neg_sum = np.where(positive, 0.0, seg).sum(axis=1)
            scale_pos = np.divide(
                pos_sum, pos_count, out=np.zeros_like(pos_sum), where=pos_count > 0
            )
            scale_neg = -np.divide(
                neg_sum, neg_count, out=np.zeros_like(neg_sum), where=neg_count > 0
            )
            out[:, lo:hi] = np.where(positive, scale_pos[:, None], -scale_neg[:, None])
        return out

    def wire_bytes(self, n_elements: int) -> float:
        return np.ceil(n_elements / 8.0) + 8.0  # sign bits + two fp32 scales
