"""Count-sketch gradient compression (SketchML / SketchSGD; paper ref [74]).

The tensor is hashed into a small ``rows x cols`` sketch: each element is
added (with a random sign) to one bucket per row.  Decompression reads each
element's median estimate across rows — an unbiased, mergeable summary whose
wire size is independent of which coordinates are large (unlike top-K).
Hash seeds derive from the instance seed, so any two parties constructed
with the same seed can exchange sketches.
"""

from __future__ import annotations

import numpy as np

from .base import CompressedPayload, Compressor


class CountSketchCompressor(Compressor):
    """Sketch with ``rows`` independent hash rows of ``compression * n`` buckets."""

    def __init__(self, compression: float = 0.1, rows: int = 3, seed: int = 0) -> None:
        if not 0.0 < compression <= 1.0:
            raise ValueError(f"compression must be in (0, 1], got {compression}")
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        self.compression = compression
        self.rows = rows
        self.seed = seed
        self.name = f"sketch{compression:g}x{rows}"
        self._hash_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _cols(self, n: int) -> int:
        return max(1, int(round(n * self.compression / self.rows)))

    def _hashes(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """(bucket indices [rows, n], signs [rows, n]) — cached per size."""
        if n not in self._hash_cache:
            rng = np.random.default_rng(np.random.SeedSequence([self.seed, n]))
            cols = self._cols(n)
            buckets = rng.integers(0, cols, size=(self.rows, n))
            signs = rng.choice(np.array([-1.0, 1.0]), size=(self.rows, n))
            self._hash_cache[n] = (buckets, signs)
        return self._hash_cache[n]

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64).reshape(-1)
        n = array.size
        buckets, signs = self._hashes(n)
        cols = self._cols(n)
        table = np.zeros((self.rows, cols))
        for r in range(self.rows):
            np.add.at(table[r], buckets[r], signs[r] * array)
        return CompressedPayload(
            codec=self.name,
            n=n,
            wire_bytes=self.wire_bytes(n),
            fields={"table": table},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        table = np.asarray(payload.fields["table"])
        n = payload.n
        buckets, signs = self._hashes(n)
        estimates = np.empty((self.rows, n))
        for r in range(self.rows):
            estimates[r] = signs[r] * table[r, buckets[r]]
        return np.median(estimates, axis=0)

    def wire_bytes(self, n_elements: int) -> float:
        return self.rows * self._cols(n_elements) * 4.0
