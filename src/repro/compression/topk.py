"""Top-K magnitude sparsification (refs [9, 38]).

Keeps the ``k`` largest-magnitude entries (indices + values); everything else
is dropped.  Biased — the paper notes error compensation is "especially
helpful when the compression function is relatively aggressive (e.g., top-K)".
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import CompressedPayload, Compressor


class TopKCompressor(Compressor):
    """Keep a ``ratio`` fraction (at least one) of entries by magnitude."""

    biased = True

    def __init__(self, ratio: float = 0.01) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.name = f"topk{ratio:g}"

    def _k(self, n: int) -> int:
        return max(1, int(round(n * self.ratio)))

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64).reshape(-1)
        k = self._k(array.size)
        if k >= array.size:
            indices = np.arange(array.size)
        else:
            indices = np.argpartition(np.abs(array), -k)[-k:]
        indices = np.sort(indices)
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"indices": indices.astype(np.int64), "values": array[indices].copy()},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        out = np.zeros(payload.n)
        out[np.asarray(payload.fields["indices"])] = payload.fields["values"]
        return out

    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """Vectorized roundtrip: 2-D argpartition per segment, scatter back.

        ``np.argpartition(..., axis=1)`` partitions each row independently,
        so selected index sets match the per-row reference exactly; the
        scattered values are copies of the originals either way.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        out = np.empty_like(matrix)
        row_idx = np.arange(matrix.shape[0])[:, None]
        for lo, hi in bounds:
            seg = matrix[:, lo:hi]
            k = self._k(hi - lo)
            if k >= hi - lo:
                out[:, lo:hi] = seg
                continue
            keep = np.argpartition(np.abs(seg), -k, axis=1)[:, -k:]
            res = np.zeros_like(seg)
            res[row_idx, keep] = seg[row_idx, keep]
            out[:, lo:hi] = res
        return out

    def wire_bytes(self, n_elements: int) -> float:
        # 4-byte index + 4-byte value per kept entry.
        return self._k(n_elements) * 8.0


class RandomKCompressor(Compressor):
    """Keep a uniformly random ``ratio`` fraction, rescaled to stay unbiased."""

    def __init__(self, ratio: float = 0.01, rng: np.random.Generator | None = None) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.rng = rng or np.random.default_rng(0)
        self.name = f"randk{ratio:g}"

    def _k(self, n: int) -> int:
        return max(1, int(round(n * self.ratio)))

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64).reshape(-1)
        k = self._k(array.size)
        indices = np.sort(self.rng.choice(array.size, size=k, replace=False))
        # Rescale by n/k so the expected decompressed value equals the input.
        values = array[indices] * (array.size / k)
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"indices": indices.astype(np.int64), "values": values},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        out = np.zeros(payload.n)
        out[np.asarray(payload.fields["indices"])] = payload.fields["values"]
        return out

    def wire_bytes(self, n_elements: int) -> float:
        return self._k(n_elements) * 8.0
