"""QSGD stochastic quantization (Alistarh et al., 2017; paper ref [4]).

Each value is mapped to one of ``s`` levels of its magnitude relative to the
tensor norm, with stochastic rounding so the codec is unbiased:
``E[decompress(compress(x))] = x``.  The paper's QSGD algorithm uses the
8-bit variant (s = 255, one byte per element plus the norm).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import CompressedPayload, Compressor


class QSGDCompressor(Compressor):
    """Stochastic uniform quantization against the L2 norm.

    Args:
        bits: bits per element (levels = 2**(bits-1) - 1 magnitude steps,
            sign folded into the stored integer).  8 by default, as in the
            paper's QSGD configuration.
        rng: randomness for stochastic rounding; a fixed generator makes a
            worker's compression stream reproducible.
    """

    def __init__(self, bits: int = 8, rng: np.random.Generator | None = None) -> None:
        if not 2 <= bits <= 16:
            raise ValueError(f"bits must be in [2, 16], got {bits}")
        self.bits = bits
        self.levels = (1 << (bits - 1)) - 1
        self.rng = rng or np.random.default_rng(0)
        self.name = f"qsgd{bits}"

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64)
        # sqrt(sum(x^2)) rather than np.linalg.norm: the BLAS dot behind
        # linalg.norm sums in a different order than numpy's pairwise
        # reduction, and the batched kernel computes per-row norms with the
        # pairwise axis reduction — both paths must share one formulation to
        # stay bitwise identical.
        norm = float(np.sqrt(np.square(array).sum()))
        if norm == 0.0:
            quantized = np.zeros(array.size, dtype=np.int32)
        else:
            scaled = np.abs(array) / norm * self.levels
            floor = np.floor(scaled)
            prob = scaled - floor
            bump = (self.rng.random(array.shape) < prob).astype(np.float64)
            quantized = (np.sign(array) * (floor + bump)).astype(np.int32).reshape(-1)
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"q": quantized, "norm": norm},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        norm = float(payload.fields["norm"])
        q = np.asarray(payload.fields["q"], dtype=np.float64)
        if self.levels == 0 or norm == 0.0:
            return np.zeros(payload.n)
        return q * (norm / self.levels)

    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """Vectorized roundtrip over a ``(rows, n)`` matrix of column segments.

        One RNG draw over the whole matrix replaces the per-cell draws; the
        draw order matches the scalar path's row-major call sequence exactly.
        A zero-norm segment would *skip* its draw in the scalar path, so that
        case falls back to the per-cell reference loop before any state is
        consumed.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        norms = np.empty((matrix.shape[0], len(bounds)))
        for j, (lo, hi) in enumerate(bounds):
            norms[:, j] = np.sqrt(np.square(matrix[:, lo:hi]).sum(axis=1))
        if not norms.all():
            return super().batch_roundtrip(matrix, bounds)
        draws = self.rng.random(matrix.shape)
        out = np.empty_like(matrix)
        levels = self.levels
        for j, (lo, hi) in enumerate(bounds):
            seg = matrix[:, lo:hi]
            norm = norms[:, j]
            scaled = np.abs(seg) / norm[:, None] * levels
            floor = np.floor(scaled)
            bump = (draws[:, lo:hi] < scaled - floor).astype(np.float64)
            quantized = (np.sign(seg) * (floor + bump)).astype(np.int32)
            out[:, lo:hi] = quantized.astype(np.float64) * (norm / levels)[:, None]
        return out

    def wire_bytes(self, n_elements: int) -> float:
        # bits per element packed, plus the fp32 norm.
        return n_elements * self.bits / 8.0 + 4.0
