"""TernGrad ternary quantization (Wen et al., 2017; paper ref [7]).

Values become {-1, 0, +1} * max|x| with stochastic rounding proportional to
|x| / max|x| — unbiased, two bits per element on the wire.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import CompressedPayload, Compressor


class TernGradCompressor(Compressor):
    name = "terngrad"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self.rng = rng or np.random.default_rng(0)

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64).reshape(-1)
        scale = float(np.abs(array).max()) if array.size else 0.0
        if scale == 0.0:
            ternary = np.zeros(array.size, dtype=np.int8)
        else:
            prob = np.abs(array) / scale
            keep = self.rng.random(array.size) < prob
            ternary = (np.sign(array) * keep).astype(np.int8)
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"t": ternary, "scale": scale},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return np.asarray(payload.fields["t"], dtype=np.float64) * float(payload.fields["scale"])

    def batch_roundtrip(
        self, matrix: np.ndarray, bounds: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """Vectorized roundtrip; one row-major RNG draw replaces per-cell draws.

        A zero-scale segment skips its draw in the scalar path, so that case
        falls back to the per-cell reference loop before consuming any RNG
        state.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        scales = np.empty((matrix.shape[0], len(bounds)))
        for j, (lo, hi) in enumerate(bounds):
            # initial=0.0 only matters for zero-width segments (which then
            # hit the fallback); abs values are >= 0 so it never changes max.
            scales[:, j] = np.abs(matrix[:, lo:hi]).max(axis=1, initial=0.0)
        if not scales.all():
            return super().batch_roundtrip(matrix, bounds)
        draws = self.rng.random(matrix.shape)
        out = np.empty_like(matrix)
        for j, (lo, hi) in enumerate(bounds):
            seg = matrix[:, lo:hi]
            scale = scales[:, j]
            keep = draws[:, lo:hi] < np.abs(seg) / scale[:, None]
            ternary = (np.sign(seg) * keep).astype(np.int8)
            out[:, lo:hi] = ternary.astype(np.float64) * scale[:, None]
        return out

    def wire_bytes(self, n_elements: int) -> float:
        return n_elements / 4.0 + 4.0  # 2 bits/element + fp32 scale
