"""TernGrad ternary quantization (Wen et al., 2017; paper ref [7]).

Values become {-1, 0, +1} * max|x| with stochastic rounding proportional to
|x| / max|x| — unbiased, two bits per element on the wire.
"""

from __future__ import annotations


import numpy as np

from .base import CompressedPayload, Compressor


class TernGradCompressor(Compressor):
    name = "terngrad"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self.rng = rng or np.random.default_rng(0)

    def compress(self, array: np.ndarray) -> CompressedPayload:
        array = np.asarray(array, dtype=np.float64).reshape(-1)
        scale = float(np.abs(array).max()) if array.size else 0.0
        if scale == 0.0:
            ternary = np.zeros(array.size, dtype=np.int8)
        else:
            prob = np.abs(array) / scale
            keep = self.rng.random(array.size) < prob
            ternary = (np.sign(array) * keep).astype(np.int8)
        return CompressedPayload(
            codec=self.name,
            n=array.size,
            wire_bytes=self.wire_bytes(array.size),
            fields={"t": ternary, "scale": scale},
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return np.asarray(payload.fields["t"], dtype=np.float64) * float(payload.fields["scale"])

    def wire_bytes(self, n_elements: int) -> float:
        return n_elements / 4.0 + 4.0  # 2 bits/element + fp32 scale
