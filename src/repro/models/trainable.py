"""Trainable proxy models for functional (convergence) experiments.

These are small numpy models from the same architectural families as the
paper's five tasks: a VGG-style conv stack, BERT-style transformer encoders
(two depths), a transformer for sequence labeling, and the two-tower
LSTM+AlexNet multimodal model.  Convergence behaviour of the distributed
algorithms — the content of Figures 5 and 6 — depends on architecture family
and loss surface, both preserved at this scale; absolute accuracy is not a
reproduction target.
"""

from __future__ import annotations


import numpy as np

from ..tensor import functional as F
from ..tensor.attention import TransformerEncoderLayer
from ..tensor.layers import Conv2d, Embedding, Flatten, Linear, MaxPool2d, ReLU
from ..tensor.module import Module, ModuleList, Sequential
from ..tensor.recurrent import LSTM
from ..tensor.tensor import Tensor


class VGGProxy(Module):
    """Small VGG-family conv net: conv-relu-pool blocks + 2 FC layers."""

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        image_size: int = 16,
        width: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.features = Sequential(
            Conv2d(in_channels, width, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, 2 * width, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        spatial = image_size // 4
        self.classifier = Sequential(
            Flatten(),
            Linear(2 * width * spatial * spatial, 64, rng=rng),
            ReLU(),
            Linear(64, num_classes, rng=rng),
        )

    def forward(self, x):
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.classifier(self.features(x))


class BERTProxy(Module):
    """Encoder-only transformer with a mean-pool classification head."""

    def __init__(
        self,
        vocab: int = 64,
        num_classes: int = 4,
        embed_dim: int = 32,
        num_heads: int = 4,
        ff_dim: int = 64,
        num_layers: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embed = Embedding(vocab, embed_dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(embed_dim, num_heads, ff_dim, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.head = Linear(embed_dim, num_classes, rng=rng)

    def forward(self, tokens: np.ndarray):
        x = self.embed(np.asarray(tokens, dtype=np.int64))
        for layer in self.layers:
            x = layer(x)
        pooled = x.mean(axis=1)
        return self.head(pooled)


def bert_base_proxy(rng: np.random.Generator | None = None, **kwargs) -> BERTProxy:
    """Shallower/narrower BERT proxy (the BERT-BASE family member)."""
    defaults = dict(embed_dim=24, num_heads=4, ff_dim=48, num_layers=1)
    defaults.update(kwargs)
    return BERTProxy(rng=rng, **defaults)


def bert_large_proxy(rng: np.random.Generator | None = None, **kwargs) -> BERTProxy:
    """Deeper/wider BERT proxy (the BERT-LARGE family member)."""
    defaults = dict(embed_dim=32, num_heads=4, ff_dim=64, num_layers=3)
    defaults.update(kwargs)
    return BERTProxy(rng=rng, **defaults)


class TransformerProxy(BERTProxy):
    """Sequence-classification transformer (the speech-task family member)."""

    def __init__(self, rng: np.random.Generator | None = None, **kwargs) -> None:
        defaults = dict(embed_dim=32, num_heads=2, ff_dim=64, num_layers=2)
        defaults.update(kwargs)
        super().__init__(rng=rng, **defaults)


class LSTMAlexNetProxy(Module):
    """Two-tower multimodal model: conv image tower + LSTM token tower."""

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 12,
        vocab: int = 32,
        num_classes: int = 6,
        conv_width: int = 12,
        embed_dim: int = 16,
        hidden: int = 24,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.image_tower = Sequential(
            Conv2d(in_channels, conv_width, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
        )
        spatial = image_size // 2
        image_features = conv_width * spatial * spatial
        self.embed = Embedding(vocab, embed_dim, rng=rng)
        self.lstm = LSTM(embed_dim, hidden, rng=rng)
        self.head = Linear(image_features + hidden, num_classes, rng=rng)

    def forward(self, batch):
        images, tokens = batch
        if not isinstance(images, Tensor):
            images = Tensor(images)
        image_feat = self.image_tower(images)
        token_feat = self.lstm.last_hidden(self.embed(np.asarray(tokens, dtype=np.int64)))
        return self.head(F.concat([image_feat, token_feat], axis=1))
