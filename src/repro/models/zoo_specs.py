"""Full-size specs of the paper's five tasks (Table 2).

Parameter counts are rebuilt layer-by-layer from the published architectures
and match Table 2 closely (VGG16 exactly; the transformer models to within a
few percent, since the paper's FLOP accounting ignores the quadratic
attention terms).  ``samples_per_epoch`` is calibrated so the simulated
BAGUA-AllReduce epoch times at 25 Gbps land near Table 4's measurements —
the Kwai datasets are proprietary, so their size is not otherwise knowable.
"""

from __future__ import annotations


from .spec import LayerSpec, ModelSpec, conv_layer, linear_layer, lstm_layer, transformer_encoder_layers


def vgg16_spec() -> ModelSpec:
    """VGG16 at 224x224 / 1000 classes: 138.3M params, ~31 GFLOPs."""
    cfg = [
        # (name, in_ch, out_ch, output spatial size)
        ("conv1_1", 3, 64, 224),
        ("conv1_2", 64, 64, 224),
        ("conv2_1", 64, 128, 112),
        ("conv2_2", 128, 128, 112),
        ("conv3_1", 128, 256, 56),
        ("conv3_2", 256, 256, 56),
        ("conv3_3", 256, 256, 56),
        ("conv4_1", 256, 512, 28),
        ("conv4_2", 512, 512, 28),
        ("conv4_3", 512, 512, 28),
        ("conv5_1", 512, 512, 14),
        ("conv5_2", 512, 512, 14),
        ("conv5_3", 512, 512, 14),
    ]
    layers: list[LayerSpec] = [
        conv_layer(name, in_ch, out_ch, 3, hw) for name, in_ch, out_ch, hw in cfg
    ]
    layers.append(linear_layer("fc6", 512 * 7 * 7, 4096))
    layers.append(linear_layer("fc7", 4096, 4096))
    layers.append(linear_layer("fc8", 4096, 1000))
    return ModelSpec(
        name="VGG16",
        layers=tuple(layers),
        batch_size=32,
        samples_per_epoch=1_281_167,  # ImageNet-1k train split
    )


def bert_large_spec() -> ModelSpec:
    """BERT-LARGE encoder (24 x 1024/4096) at seq 384 (SQuAD finetune)."""
    layers = transformer_encoder_layers("encoder", 24, 1024, 4096, seq_len=384)
    layers.append(linear_layer("qa_head", 1024, 2))
    return ModelSpec(
        name="BERT-LARGE",
        layers=tuple(layers),
        batch_size=8,
        samples_per_epoch=118_000,  # SQuAD v1.1 features after doc striding
    )


def bert_base_spec() -> ModelSpec:
    """BERT-BASE encoder (12 x 768/3072) at seq 128 (Kwai finetune)."""
    layers = transformer_encoder_layers("encoder", 12, 768, 3072, seq_len=128)
    layers.append(linear_layer("cls_head", 768, 2))
    return ModelSpec(
        name="BERT-BASE",
        layers=tuple(layers),
        batch_size=64,
        samples_per_epoch=10_400_000,  # Kwai production data (calibrated)
    )


def transformer_spec() -> ModelSpec:
    """Speech transformer (21 x 512/2048) over ~860-frame utterances."""
    layers: list[LayerSpec] = [
        conv_layer("frontend1", 1, 32, 3, 80),
        conv_layer("frontend2", 32, 32, 3, 40),
    ]
    layers += transformer_encoder_layers("encoder", 21, 512, 2048, seq_len=860)
    layers.append(linear_layer("ctc_head", 512, 1000))
    return ModelSpec(
        name="Transformer",
        layers=tuple(layers),
        batch_size=8,
        samples_per_epoch=1_000_000,  # AISHELL-2-scale utterance count
    )


def lstm_alexnet_spec() -> ModelSpec:
    """Two-tower LSTM + AlexNet multimodal model (Kwai)."""
    layers: list[LayerSpec] = [
        conv_layer("alex.conv1", 3, 64, 11, 55),
        conv_layer("alex.conv2", 64, 192, 5, 27),
        conv_layer("alex.conv3", 192, 384, 3, 13),
        conv_layer("alex.conv4", 384, 256, 3, 13),
        conv_layer("alex.conv5", 256, 256, 3, 13),
        linear_layer("alex.fc6", 256 * 6 * 6, 4096),
        linear_layer("alex.fc7", 4096, 4096),
        linear_layer("alex.fc8", 4096, 1000),
        lstm_layer("lstm.layer1", 2048, 2048, steps=720),
        lstm_layer("lstm.layer2", 2048, 2048, steps=720),
        linear_layer("fusion_head", 4096 + 2048, 256),
    ]
    return ModelSpec(
        name="LSTM+AlexNet",
        layers=tuple(layers),
        batch_size=128,
        samples_per_epoch=900_000,  # Kwai production data (calibrated)
    )


def all_specs() -> dict[str, ModelSpec]:
    """The five evaluation models keyed by paper name."""
    return {
        spec.name: spec
        for spec in (
            vgg16_spec(),
            bert_large_spec(),
            bert_base_spec(),
            transformer_spec(),
            lstm_alexnet_spec(),
        )
    }
