"""Static model descriptions used by timing-mode simulation.

A :class:`ModelSpec` is a layer-by-layer inventory of a *full-size* model:
parameter tensor sizes (what gets communicated) and per-sample forward FLOPs
(what gets computed).  The pipeline simulator replays an iteration —
per-layer forward, backward in reverse, communication per the algorithm —
against a :class:`~repro.cluster.topology.ClusterSpec`, so epoch-time tables
come out of sizes and dependency structure, never out of running the actual
model.

Backward cost defaults to twice the forward cost (the standard estimate:
gradients w.r.t. both activations and weights).
"""

from __future__ import annotations

from dataclasses import dataclass

GIGA = 1e9
MEGA = 1e6


@dataclass(frozen=True)
class LayerSpec:
    """One layer: a parameter tensor plus its compute cost.

    Attributes:
        name: unique layer label.
        params: number of learnable scalars communicated for this layer.
        fwd_flops: forward FLOPs per sample.
        bwd_flops: backward FLOPs per sample (defaults to ``2 * fwd_flops``).
    """

    name: str
    params: int
    fwd_flops: float
    bwd_flops: float = -1.0

    def __post_init__(self) -> None:
        if self.params < 0:
            raise ValueError(f"negative params for {self.name}")
        if self.fwd_flops < 0:
            raise ValueError(f"negative fwd_flops for {self.name}")
        if self.bwd_flops < 0:
            object.__setattr__(self, "bwd_flops", 2.0 * self.fwd_flops)


@dataclass(frozen=True)
class ModelSpec:
    """A named stack of layers plus its workload parameters."""

    name: str
    layers: tuple
    #: per-GPU mini-batch used in the evaluation runs
    batch_size: int
    #: examples per epoch (dataset size; calibrated for proprietary data)
    samples_per_epoch: int

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def fwd_flops_per_sample(self) -> float:
        return sum(layer.fwd_flops for layer in self.layers)

    @property
    def bwd_flops_per_sample(self) -> float:
        return sum(layer.bwd_flops for layer in self.layers)

    @property
    def param_bytes_fp32(self) -> float:
        return self.total_params * 4.0

    def iterations_per_epoch(self, world_size: int) -> int:
        global_batch = self.batch_size * world_size
        return max(1, self.samples_per_epoch // global_batch)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.total_params / MEGA:.1f}M params, "
            f"{self.fwd_flops_per_sample / GIGA:.1f} GFLOPs/sample, "
            f"{len(self.layers)} layers"
        )


def conv_layer(
    name: str,
    in_ch: int,
    out_ch: int,
    kernel: int,
    out_hw: int,
    bias: bool = True,
) -> LayerSpec:
    """Conv2d spec: params and FLOPs (2 * MACs) at output size ``out_hw``."""
    params = out_ch * in_ch * kernel * kernel + (out_ch if bias else 0)
    macs = in_ch * kernel * kernel * out_ch * out_hw * out_hw
    return LayerSpec(name=name, params=params, fwd_flops=2.0 * macs)


def linear_layer(name: str, in_features: int, out_features: int, bias: bool = True) -> LayerSpec:
    params = out_features * in_features + (out_features if bias else 0)
    return LayerSpec(name=name, params=params, fwd_flops=2.0 * in_features * out_features)


def lstm_layer(name: str, input_size: int, hidden: int, steps: int) -> LayerSpec:
    """Single-layer LSTM unrolled over ``steps`` timesteps."""
    params = 4 * hidden * (input_size + hidden + 1)
    flops_per_step = 2.0 * 4 * hidden * (input_size + hidden)
    return LayerSpec(name=name, params=params, fwd_flops=flops_per_step * steps)


def transformer_encoder_layers(
    prefix: str, num_layers: int, hidden: int, ff: int, seq_len: int
) -> list[LayerSpec]:
    """Per-tensor inventory of a transformer encoder stack.

    Each encoder layer is split into its individual weight tensors (Q/K/V/out
    projections, two feed-forward matrices, biases and LayerNorm vectors):
    the paper calls BERT-LARGE a "problem with many small tensors", and
    bucketing behaviour depends on seeing those tensors individually.
    """
    layers: list[LayerSpec] = []
    for i in range(num_layers):
        base = f"{prefix}.{i}"
        for proj in ("q", "k", "v", "out"):
            layers.append(
                LayerSpec(
                    f"{base}.attn.{proj}.weight",
                    hidden * hidden,
                    fwd_flops=2.0 * hidden * hidden * seq_len,
                )
            )
            layers.append(LayerSpec(f"{base}.attn.{proj}.bias", hidden, fwd_flops=0.0))
        # Attention score/context matmuls cost compute but hold no params.
        layers.append(
            LayerSpec(f"{base}.attn.scores", 0, fwd_flops=4.0 * seq_len * seq_len * hidden)
        )
        layers.append(LayerSpec(f"{base}.norm1.weight", hidden, fwd_flops=0.0))
        layers.append(LayerSpec(f"{base}.norm1.bias", hidden, fwd_flops=0.0))
        layers.append(
            LayerSpec(f"{base}.ff1.weight", hidden * ff, fwd_flops=2.0 * hidden * ff * seq_len)
        )
        layers.append(LayerSpec(f"{base}.ff1.bias", ff, fwd_flops=0.0))
        layers.append(
            LayerSpec(f"{base}.ff2.weight", ff * hidden, fwd_flops=2.0 * ff * hidden * seq_len)
        )
        layers.append(LayerSpec(f"{base}.ff2.bias", hidden, fwd_flops=0.0))
        layers.append(LayerSpec(f"{base}.norm2.weight", hidden, fwd_flops=0.0))
        layers.append(LayerSpec(f"{base}.norm2.bias", hidden, fwd_flops=0.0))
    return layers
