"""Model zoo: full-size specs (timing mode) and trainable proxies (functional mode)."""

from .spec import LayerSpec, ModelSpec, conv_layer, linear_layer, lstm_layer
from .trainable import (
    BERTProxy,
    LSTMAlexNetProxy,
    TransformerProxy,
    VGGProxy,
    bert_base_proxy,
    bert_large_proxy,
)
from .zoo_specs import (
    all_specs,
    bert_base_spec,
    bert_large_spec,
    lstm_alexnet_spec,
    transformer_spec,
    vgg16_spec,
)

__all__ = [
    "LayerSpec",
    "ModelSpec",
    "conv_layer",
    "linear_layer",
    "lstm_layer",
    "vgg16_spec",
    "bert_large_spec",
    "bert_base_spec",
    "transformer_spec",
    "lstm_alexnet_spec",
    "all_specs",
    "VGGProxy",
    "BERTProxy",
    "TransformerProxy",
    "LSTMAlexNetProxy",
    "bert_base_proxy",
    "bert_large_proxy",
]
