"""Message-passing transport with simulated time and byte accounting.

Collectives in :mod:`repro.comm` are written exactly as the paper implements
ScatterReduce over NCCL: as rounds of point-to-point ``send``/``recv``.  The
transport delivers each round's messages and advances per-rank virtual clocks
under an alpha-beta cost model with NIC serialization:

* a sender's outgoing messages in one round queue on its egress (per fabric);
* a receiver's incoming messages queue on its ingress;
* intra-node (NVLink) and inter-node (TCP) fabrics are independent resources.

Payloads are opaque to the transport; their wire size is taken from the
message, so compressed payloads are charged their true compressed size and
timing-mode stubs can declare full-scale sizes without materializing data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

import numpy as np

from .clock import VirtualClock
from .topology import ClusterSpec


def payload_nbytes(payload: Any) -> float:
    """Best-effort wire size of a payload in bytes.

    Numpy arrays report their buffer size; objects exposing ``wire_bytes``
    (compressed payloads, timing stubs) report that; tuples/lists sum their
    elements (collectives tag chunks as ``(chunk_id, array)``); scalars and
    anything else count as an 8-byte header.
    """
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    wire = getattr(payload, "wire_bytes", None)
    if wire is not None:
        return float(wire)
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(item) for item in payload)
    return 8.0


@dataclass
class Message:
    """A point-to-point message for one communication round.

    ``match_id`` is a stable identifier pairing this message's send with its
    receive in recorded traces (the happens-before engine's send→recv edge).
    Communication primitives may assign semantic ids; the transport fills in
    a deterministic per-round id for any message that arrives without one.
    """

    src: int
    dst: int
    payload: Any
    nbytes: float | None = None
    match_id: str | None = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message from rank {self.src} to itself")
        if self.nbytes is None:
            self.nbytes = payload_nbytes(self.payload)
        if self.nbytes < 0:
            raise ValueError(f"negative message size {self.nbytes}")


@dataclass
class TrafficStats:
    """Cumulative traffic counters, used by tests and efficiency benches."""

    messages: int = 0
    rounds: int = 0
    total_bytes: float = 0.0
    inter_node_bytes: float = 0.0
    intra_node_bytes: float = 0.0
    per_rank_sent_bytes: dict[int, float] = field(default_factory=dict)

    def record(self, message: Message, inter_node: bool) -> None:
        self.messages += 1
        self.total_bytes += message.nbytes
        if inter_node:
            self.inter_node_bytes += message.nbytes
        else:
            self.intra_node_bytes += message.nbytes
        self.per_rank_sent_bytes[message.src] = (
            self.per_rank_sent_bytes.get(message.src, 0.0) + message.nbytes
        )

    def reset(self) -> None:
        self.messages = 0
        self.rounds = 0
        self.total_bytes = 0.0
        self.inter_node_bytes = 0.0
        self.intra_node_bytes = 0.0
        self.per_rank_sent_bytes.clear()


class Transport:
    """Round-based message delivery over a :class:`ClusterSpec`."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.clocks: list[VirtualClock] = [VirtualClock() for _ in range(spec.world_size)]
        self.stats = TrafficStats()
        # Optional instrumentation sink (repro.analysis.recorder.TraceRecorder):
        # when set, every exchanged round is reported before delivery.
        self.tracer = None
        self._round_counter = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self, rank: int) -> float:
        return self.clocks[rank].now

    def max_time(self, ranks: Sequence[int] | None = None) -> float:
        ranks = range(self.spec.world_size) if ranks is None else ranks
        return max(self.clocks[r].now for r in ranks)

    def compute(self, rank: int, seconds: float) -> None:
        """Charge ``rank`` with local computation time."""
        self.clocks[rank].advance(seconds * self.spec.compute_scale(rank))

    def barrier(self, ranks: Sequence[int] | None = None) -> float:
        """Synchronize ``ranks`` (default all) to the latest clock among them."""
        ranks = list(range(self.spec.world_size)) if ranks is None else list(ranks)
        latest = self.max_time(ranks)
        for r in ranks:
            self.clocks[r].advance_to(latest)
        return latest

    def reset(self) -> None:
        for clock in self.clocks:
            clock.reset()
        self.stats.reset()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def exchange(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        """Deliver one round of messages; returns messages grouped by receiver.

        Clocks of senders advance past their egress serialization; clocks of
        receivers advance to the arrival of their last inbound message.
        Ranks not participating are untouched (decentralized algorithms rely
        on this: non-neighbors do not synchronize).
        """
        if not messages:
            # An empty round moves no bytes and synchronizes nobody; counting
            # it would skew round counts for algorithms where some ranks idle.
            return {}
        self.stats.rounds += 1
        # Stable match ids pair each send with its recv in recorded traces.
        # Primitives may pre-assign semantic ids; everything else gets a
        # deterministic per-round id here.
        round_id = self._round_counter
        self._round_counter += 1
        for i, message in enumerate(messages):
            if message.match_id is None:
                message.match_id = f"x{round_id}.{i}.{message.src}->{message.dst}"
            else:
                # Qualify semantic ids with the round so repeated invocations
                # of the same primitive stay uniquely pairable.
                message.match_id = f"x{round_id}:{message.match_id}"
        if self.tracer is not None:
            self.tracer.on_exchange(messages)
        egress_free: dict[tuple[int, str], float] = {}
        ingress_free: dict[tuple[int, str], float] = {}
        arrivals: dict[int, float] = {}
        inbox: dict[int, list[Message]] = {}

        sender_done: dict[int, float] = {}
        for message in messages:
            link = self.spec.link_between(message.src, message.dst)
            fabric = link.name
            inter = not self.spec.same_node(message.src, message.dst)
            self.stats.record(message, inter)

            # Inter-node traffic serializes on the machine's NIC — all
            # workers of a node share it (one 10/25/100 Gbps port per
            # server, as on the AWS instances the paper models).  Intra-node
            # NVLink is point-to-point per worker.
            if inter:
                egress_key = (self.spec.node_of(message.src), fabric)
                ingress_key = (self.spec.node_of(message.dst), fabric)
            else:
                egress_key = (message.src, fabric)
                ingress_key = (message.dst, fabric)

            wire = link.wire_time(message.nbytes)
            start = max(self.clocks[message.src].now, egress_free.get(egress_key, 0.0))
            egress_free[egress_key] = start + wire
            sender_done[message.src] = max(sender_done.get(message.src, 0.0), start + wire)
            at_nic = start + link.latency_s + wire
            arrival = max(at_nic, ingress_free.get(ingress_key, 0.0) + wire)
            ingress_free[ingress_key] = arrival

            arrivals[message.dst] = max(arrivals.get(message.dst, 0.0), arrival)
            inbox.setdefault(message.dst, []).append(message)

        for rank, done_at in sender_done.items():
            self.clocks[rank].advance_to(done_at)
        for rank, arrival in arrivals.items():
            self.clocks[rank].advance_to(arrival)
        return inbox
