"""Message-passing transport with simulated time and byte accounting.

Collectives in :mod:`repro.comm` are written exactly as the paper implements
ScatterReduce over NCCL: as rounds of point-to-point ``send``/``recv``.  The
transport delivers each round's messages and advances per-rank virtual clocks
under an alpha-beta cost model with NIC serialization:

* a sender's outgoing messages in one round queue on its egress (per fabric);
* a receiver's incoming messages queue on its ingress;
* intra-node (NVLink) and inter-node (TCP) fabrics are independent resources.

Payloads are opaque to the transport; their wire size is taken from the
message, so compressed payloads are charged their true compressed size and
timing-mode stubs can declare full-scale sizes without materializing data.

*Moving* the payloads — as opposed to pricing them — is delegated to a
pluggable :class:`~repro.cluster.backends.TransportBackend` (in-process
reference, world-batched, or shared-memory multiprocess); see
``docs/backends.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from .clock import VirtualClock
from .topology import ClusterSpec

if TYPE_CHECKING:
    from ..analysis.recorder import TraceRecorder
    from .backends import TransportBackend

#: Wire-size charge for a container envelope (tuple/list) and for scalars.
#: A container costs one header plus its elements, so ``(i, array)`` chunk
#: tags price as 16 bytes of framing + the array, and an empty tuple is no
#: longer free while a bare scalar costs 8.
CONTAINER_BYTES = 8.0


def payload_nbytes(payload: Any) -> float:
    """Best-effort wire size of a payload in bytes.

    Numpy arrays report their buffer size; objects exposing ``wire_bytes``
    (compressed payloads, timing stubs) report that; tuples/lists charge an
    8-byte container header plus the sum of their elements (collectives tag
    chunks as ``(chunk_id, array)``); scalars and anything else count as an
    8-byte header.
    """
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    wire = getattr(payload, "wire_bytes", None)
    if wire is not None:
        return float(wire)
    if isinstance(payload, (tuple, list)):
        return CONTAINER_BYTES + sum(payload_nbytes(item) for item in payload)
    return 8.0


@dataclass
class Message:
    """A point-to-point message for one communication round.

    ``match_id`` is a stable identifier pairing this message's send with its
    receive in recorded traces (the happens-before engine's send→recv edge).
    Communication primitives may assign semantic ids; the transport fills in
    a deterministic per-round id for any message that arrives without one.
    """

    src: int
    dst: int
    payload: Any
    nbytes: float | None = None
    match_id: str | None = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message from rank {self.src} to itself")
        if self.nbytes is None:
            self.nbytes = payload_nbytes(self.payload)
        if self.nbytes < 0:
            raise ValueError(f"negative message size {self.nbytes}")


@dataclass
class TrafficStats:
    """Cumulative traffic counters, used by tests and efficiency benches."""

    messages: int = 0
    rounds: int = 0
    total_bytes: float = 0.0
    inter_node_bytes: float = 0.0
    intra_node_bytes: float = 0.0
    per_rank_sent_bytes: dict[int, float] = field(default_factory=dict)

    def record(self, message: Message, inter_node: bool) -> None:
        self.messages += 1
        self.total_bytes += message.nbytes
        if inter_node:
            self.inter_node_bytes += message.nbytes
        else:
            self.intra_node_bytes += message.nbytes
        self.per_rank_sent_bytes[message.src] = (
            self.per_rank_sent_bytes.get(message.src, 0.0) + message.nbytes
        )

    def reset(self) -> None:
        self.messages = 0
        self.rounds = 0
        self.total_bytes = 0.0
        self.inter_node_bytes = 0.0
        self.intra_node_bytes = 0.0
        self.per_rank_sent_bytes.clear()


class Transport:
    """Round-based message delivery over a :class:`ClusterSpec`.

    ``backend`` selects the execution substrate (an instance, a registry
    name, or ``None`` for ``$REPRO_BACKEND`` / the default); the transport
    attaches it on construction and owns its lifetime via :meth:`close`.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        backend: TransportBackend | str | None = None,
    ) -> None:
        from .backends import resolve_backend

        self.spec = spec
        self.backend = resolve_backend(backend, spec)
        self.backend.attach(self)
        self.clocks: list[VirtualClock] = [VirtualClock() for _ in range(spec.world_size)]
        self.stats = TrafficStats()
        # Optional instrumentation sink: when set, every exchanged round is
        # reported before delivery.
        self.tracer: TraceRecorder | None = None
        self._round_counter = 0
        # Topology is immutable, so the link / NIC-key lookups every message
        # repeats are memoized per (src, dst) pair.  ``_sized_cache`` holds
        # the same facts flattened for the sized-stub hot loop: int keys and
        # scalar link parameters instead of method calls.
        self._pair_cache: dict[tuple[int, int], tuple] = {}
        self._sized_cache: dict[int, tuple] = {}
        # NIC chain keys (egress / ingress serialization points) mapped to
        # dense int slots so the sized-stub loop can use list indexing
        # instead of tuple-key dict lookups.  Egress and ingress chains are
        # independent resources even when their keys coincide, so each key
        # gets one slot used to index two separate per-round lists.
        self._chain_slots: dict[tuple[int, str], int] = {}

    def _pair_info(self, src: int, dst: int) -> tuple:
        """``(link, inter_node, egress_key, ingress_key)`` for a rank pair."""
        info = self._pair_cache.get((src, dst))
        if info is None:
            spec = self.spec
            link = spec.link_between(src, dst)
            inter = not spec.same_node(src, dst)
            if inter:
                egress_key = (spec.node_of(src), link.name)
                ingress_key = (spec.node_of(dst), link.name)
            else:
                egress_key = (src, link.name)
                ingress_key = (dst, link.name)
            info = (link, inter, egress_key, ingress_key)
            self._pair_cache[(src, dst)] = info
        return info

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self, rank: int) -> float:
        return self.clocks[rank].now

    def max_time(self, ranks: Sequence[int] | None = None) -> float:
        ranks = range(self.spec.world_size) if ranks is None else ranks
        return max(self.clocks[r].now for r in ranks)

    def compute(self, rank: int, seconds: float) -> None:
        """Charge ``rank`` with local computation time."""
        self.clocks[rank].advance(seconds * self.spec.compute_scale(rank))

    def barrier(self, ranks: Sequence[int] | None = None) -> float:
        """Synchronize ``ranks`` (default all) to the latest clock among them."""
        ranks = list(range(self.spec.world_size)) if ranks is None else list(ranks)
        latest = self.max_time(ranks)
        for r in ranks:
            self.clocks[r].advance_to(latest)
        return latest

    def reset(self) -> None:
        for clock in self.clocks:
            clock.reset()
        self.stats.reset()

    def flush(self) -> None:
        """Drain backend-deferred work at an iteration boundary.

        Batched backends (the shm fast path) accumulate routed rounds into
        per-worker programs; this forces them to execute and verifies their
        cross-process echoes.  Synchronous backends no-op.
        """
        self.backend.flush()

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> Transport:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def exchange(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        """Deliver one round of messages; returns messages grouped by receiver.

        Clocks of senders advance past their egress serialization; clocks of
        receivers advance to the arrival of their last inbound message.
        Ranks not participating are untouched (decentralized algorithms rely
        on this: non-neighbors do not synchronize).
        """
        if not messages:
            # An empty round moves no bytes and synchronizes nobody; counting
            # it would skew round counts for algorithms where some ranks idle.
            return {}
        self.stats.rounds += 1
        # Stable match ids pair each send with its recv in recorded traces.
        # Primitives may pre-assign semantic ids; everything else gets a
        # deterministic per-round id here.
        round_id = self._round_counter
        self._round_counter += 1
        for i, message in enumerate(messages):
            if message.match_id is None:
                message.match_id = f"x{round_id}.{i}.{message.src}->{message.dst}"
            else:
                # Qualify semantic ids with the round so repeated invocations
                # of the same primitive stay uniquely pairable.
                message.match_id = f"x{round_id}:{message.match_id}"
        if self.tracer is not None:
            self.tracer.on_exchange(messages)
        egress_free: dict[tuple[int, str], float] = {}
        ingress_free: dict[tuple[int, str], float] = {}
        arrivals: dict[int, float] = {}

        sender_done: dict[int, float] = {}
        clocks = self.clocks
        stats = self.stats
        for message in messages:
            src = message.src
            dst = message.dst
            # Inter-node traffic serializes on the machine's NIC — all
            # workers of a node share it (one 10/25/100 Gbps port per
            # server, as on the AWS instances the paper models).  Intra-node
            # NVLink is point-to-point per worker.
            link, inter, egress_key, ingress_key = self._pair_info(src, dst)
            stats.record(message, inter)

            wire = link.wire_time(message.nbytes)
            start = max(clocks[src].now, egress_free.get(egress_key, 0.0))
            egress_free[egress_key] = start + wire
            sender_done[src] = max(sender_done.get(src, 0.0), start + wire)
            at_nic = start + link.latency_s + wire
            arrival = max(at_nic, ingress_free.get(ingress_key, 0.0) + wire)
            ingress_free[ingress_key] = arrival

            arrivals[dst] = max(arrivals.get(dst, 0.0), arrival)

        for rank, done_at in sender_done.items():
            clocks[rank].advance_to(done_at)
        for rank, arrival in arrivals.items():
            clocks[rank].advance_to(arrival)
        # Timing, stats and trace are settled; the backend now actually
        # moves the payloads (in-process hand-off or cross-process rings).
        return self.backend.route_round(messages)

    def exchange_sized(
        self, sends: Sequence[tuple[int, int, float, str | None]]
    ) -> None:
        """Deliver one round of *size-stub* messages: ``(src, dst, nbytes, match_id)``.

        The world-batched fast path computes collective results as ndarray
        kernels, so no payload needs to travel — but the round's timing,
        traffic accounting and trace must stay exactly what the loop
        implementation produces.  This method replays the same per-message
        arithmetic as :meth:`exchange` (same clock updates, same stats, same
        round-counter progression) without materializing :class:`Message`
        objects.  When a tracer is installed, real stub messages are built
        and routed through :meth:`exchange` so recorded traces are identical
        by construction.
        """
        if not sends:
            return
        if self.tracer is not None:
            self.exchange(
                [
                    Message(src, dst, None, nbytes=nbytes, match_id=match_id)
                    for src, dst, nbytes, match_id in sends
                ]
            )
            return
        self.stats.rounds += 1
        self._round_counter += 1

        clocks = self.clocks
        stats = self.stats
        sized_cache = self._sized_cache
        sized_get = sized_cache.get
        chain_slots = self._chain_slots
        world = self.spec.world_size
        # Per-round chain state as slot-indexed lists (None = chain untouched
        # this round, equivalent to an absent dict key in `exchange`).
        egress_end: list = [None] * len(chain_slots)
        ingress_end: list = [None] * len(chain_slots)
        sender_done: list = [None] * world
        arrivals: list = [None] * world
        # Clocks only move at the end of the round, so snapshot them once.
        nows = [c._now for c in clocks]
        # Seed the stat accumulators from the current totals so the per-send
        # accumulation sequence (and therefore every intermediate rounding)
        # is the one `exchange` performs.  Per-rank sent bytes are staged in
        # a list the same way; None marks "no entry and not touched" so that
        # ranks absent from the dict stay absent.
        messages_n = stats.messages
        total_b = stats.total_bytes
        inter_b = stats.inter_node_bytes
        intra_b = stats.intra_node_bytes
        sent = stats.per_rank_sent_bytes
        sent_acc: list = [None] * world
        for rank, value in sent.items():
            sent_acc[rank] = value
        for src, dst, nbytes, _match_id in sends:
            pair = src * world + dst
            info = sized_get(pair)
            if info is None:
                link, inter, egress_key, ingress_key = self._pair_info(src, dst)
                eg = chain_slots.setdefault(egress_key, len(chain_slots))
                ig = chain_slots.setdefault(ingress_key, len(chain_slots))
                while len(egress_end) < len(chain_slots):
                    egress_end.append(None)
                    ingress_end.append(None)
                info = (
                    inter,
                    eg,
                    ig,
                    link.latency_s,
                    link.ramp_bytes,
                    link.bandwidth_Bps,
                )
                sized_cache[pair] = info
            inter, eg, ig, latency, ramp, bandwidth = info
            # Inlined TrafficStats.record — identical accumulation order
            # (0.0 + x is bitwise x for the non-negative sizes sent here).
            messages_n += 1
            total_b += nbytes
            if inter:
                inter_b += nbytes
            else:
                intra_b += nbytes
            prev_sent = sent_acc[src]
            sent_acc[src] = nbytes if prev_sent is None else prev_sent + nbytes

            # Same expressions as `exchange`; the builtin max() calls become
            # inline comparisons (equal values either way), and the absent-key
            # defaults fold away: clocks and chain times are non-negative, and
            # a first arrival `at_nic = start + latency + wire` can never be
            # below the `0.0 + wire` an empty ingress chain would contribute.
            wire = (nbytes + ramp) / bandwidth
            now_src = nows[src]
            prev = egress_end[eg]
            start = now_src if (prev is None or now_src > prev) else prev
            end = start + wire
            egress_end[eg] = end
            prev_done = sender_done[src]
            if prev_done is None or end > prev_done:
                sender_done[src] = end
            at_nic = start + latency + wire
            prev_in = ingress_end[ig]
            if prev_in is not None:
                queued = prev_in + wire
                arrival = at_nic if at_nic > queued else queued
            else:
                arrival = at_nic
            ingress_end[ig] = arrival
            prev_arrival = arrivals[dst]
            if prev_arrival is None or arrival > prev_arrival:
                arrivals[dst] = arrival

        stats.messages = messages_n
        stats.total_bytes = total_b
        stats.inter_node_bytes = inter_b
        stats.intra_node_bytes = intra_b
        for rank in range(world):
            value = sent_acc[rank]
            if value is not None:
                sent[rank] = value
        for rank in range(world):
            done_at = sender_done[rank]
            if done_at is not None:
                clocks[rank].advance_to(done_at)
        for rank in range(world):
            arrival = arrivals[rank]
            if arrival is not None:
                clocks[rank].advance_to(arrival)
