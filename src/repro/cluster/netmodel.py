"""Alpha-beta network cost model and the paper's network conditions.

The evaluation (§4.1) uses 16 machines with 8 V100s each; intra-node GPUs
are connected by NVLink, nodes by TCP at 10, 25 or 100 Gbps (mirroring AWS
p3.8xlarge / p3.16xlarge / p3dn.24xlarge interconnects).  A transfer of
``n`` bytes over a link costs ``latency + n / bandwidth`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


GBPS = 1e9 / 8  # bytes per second per Gbit/s


@dataclass(frozen=True)
class Link:
    """A point-to-point link with latency, bandwidth and a message-size ramp.

    A transfer of ``n`` bytes costs ``latency + (n + ramp) / bandwidth``.
    The ``ramp`` term captures per-message protocol overhead and bandwidth
    ramp-up (TCP slow start, NCCL protocol switching): messages much smaller
    than ``ramp`` achieve a fraction of line rate, messages much larger
    approach it.  This is what makes tensor fusion (the F optimization) and
    fewer/larger partitions (the H optimization) matter, exactly as the
    paper's ablation observes.

    Attributes:
        latency_s: one-way latency in seconds (the "alpha" term).
        bandwidth_Bps: bandwidth in bytes/second (the "beta" term's inverse).
        ramp_bytes: half-peak message size (bytes).
        name: label used in reports.
    """

    latency_s: float
    bandwidth_Bps: float
    ramp_bytes: float = 0.0
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"negative latency {self.latency_s}")
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"non-positive bandwidth {self.bandwidth_Bps}")
        if self.ramp_bytes < 0:
            raise ValueError(f"negative ramp {self.ramp_bytes}")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return self.latency_s + (nbytes + self.ramp_bytes) / self.bandwidth_Bps

    def wire_time(self, nbytes: float) -> float:
        """Serialization time on the NIC (no propagation latency)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return (nbytes + self.ramp_bytes) / self.bandwidth_Bps

    def with_latency(self, latency_s: float) -> Link:
        return replace(self, latency_s=latency_s)

    def with_bandwidth_gbps(self, gbps: float) -> Link:
        return replace(self, bandwidth_Bps=gbps * GBPS, name=f"tcp-{gbps:g}g")


# NVLink within a server: ~150 GB/s-class fabric, microsecond latency,
# negligible per-message ramp (hardware DMA).
NVLINK = Link(latency_s=3e-6, bandwidth_Bps=150e9, ramp_bytes=8 * 1024, name="nvlink")

# TCP/IP between servers; latency and message ramp typical of a datacenter
# TCP stack (~128 KB half-peak message size).
_TCP_RAMP = 128 * 1024
TCP_10G = Link(latency_s=50e-6, bandwidth_Bps=10 * GBPS, ramp_bytes=_TCP_RAMP, name="tcp-10g")
TCP_25G = Link(latency_s=50e-6, bandwidth_Bps=25 * GBPS, ramp_bytes=_TCP_RAMP, name="tcp-25g")
TCP_100G = Link(latency_s=50e-6, bandwidth_Bps=100 * GBPS, ramp_bytes=_TCP_RAMP, name="tcp-100g")

NETWORK_PRESETS = {
    "10gbps": TCP_10G,
    "25gbps": TCP_25G,
    "100gbps": TCP_100G,
}


def preset(name: str) -> Link:
    """Look up an inter-node network preset by name ('10gbps', '25gbps', '100gbps')."""
    key = name.lower()
    if key not in NETWORK_PRESETS:
        raise KeyError(f"unknown network preset {name!r}; options: {sorted(NETWORK_PRESETS)}")
    return NETWORK_PRESETS[key]
