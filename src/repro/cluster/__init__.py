"""Simulated distributed cluster: clocks, links, topology, transport."""

from .backends import (
    BackendError,
    BatchedBackend,
    LocalBackend,
    SharedMemoryBackend,
    TransportBackend,
    available_backends,
    resolve_backend,
)
from .clock import EventQueue, VirtualClock
from .netmodel import GBPS, Link, NVLINK, TCP_10G, TCP_25G, TCP_100G, preset
from .topology import ClusterSpec, paper_cluster
from .transport import Message, TrafficStats, Transport, payload_nbytes
from .worker import WorkerContext, make_workers

__all__ = [
    "BackendError",
    "BatchedBackend",
    "LocalBackend",
    "SharedMemoryBackend",
    "TransportBackend",
    "available_backends",
    "resolve_backend",
    "VirtualClock",
    "EventQueue",
    "Link",
    "GBPS",
    "NVLINK",
    "TCP_10G",
    "TCP_25G",
    "TCP_100G",
    "preset",
    "ClusterSpec",
    "paper_cluster",
    "Message",
    "Transport",
    "TrafficStats",
    "payload_nbytes",
    "WorkerContext",
    "make_workers",
]
