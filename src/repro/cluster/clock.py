"""Virtual time-keeping for the simulated cluster.

Every worker owns a :class:`VirtualClock`; communication advances the clocks
of the participants according to the network cost model, and compute advances
a single worker's clock.  :class:`EventQueue` is the discrete-event core used
by the pipeline simulator in :mod:`repro.simulation`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t`` (no-op if already past it)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, t: float = 0.0) -> None:
        self._now = float(t)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """A minimal discrete-event scheduler.

    Events are callables executed in timestamp order; ties break by insertion
    order, which keeps simulations deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule(self, time: float, action: Callable[[], None], label: str = "") -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} before now={self.now}")
        heapq.heappush(self._heap, _Event(time, next(self._counter), action, label))

    def schedule_after(self, delay: float, action: Callable[[], None], label: str = "") -> None:
        self.schedule(self.now + delay, action, label)

    def empty(self) -> bool:
        return not self._heap

    def step(self) -> tuple[float, str] | None:
        """Pop and run the next event; return (time, label) or None if empty."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self.now = event.time
        self._processed += 1
        event.action()
        return (event.time, event.label)

    def run(self, max_events: int = 10_000_000) -> float:
        """Drain the queue; return the final simulated time."""
        remaining = max_events
        while self._heap:
            if remaining <= 0:
                raise RuntimeError("event budget exhausted; likely a scheduling loop")
            self.step()
            remaining -= 1
        return self.now

    @property
    def processed(self) -> int:
        return self._processed
