"""Pluggable transport backends (see ``docs/backends.md``).

The registry maps backend names to factories taking the cluster spec;
:func:`resolve_backend` is the single selection point used by
:class:`~repro.cluster.transport.Transport`:

explicit instance > explicit name > ``REPRO_BACKEND`` env > ``"batched"``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from .base import BackendError, PoolRef, TransportBackend
from .local import BatchedBackend, LocalBackend
from .shm import SharedMemoryBackend

if TYPE_CHECKING:
    from ..topology import ClusterSpec

#: name -> factory(spec) for every backend that ships.
BACKEND_REGISTRY = {
    "local": lambda spec: LocalBackend(),
    "batched": lambda spec: BatchedBackend(),
    "shm": lambda spec: SharedMemoryBackend(spec.world_size),
}

DEFAULT_BACKEND = "batched"

#: Environment override consulted when neither config nor caller names one.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(BACKEND_REGISTRY)


def resolve_backend(
    backend: TransportBackend | str | None, spec: ClusterSpec
) -> TransportBackend:
    """Resolve a backend selector to a live (unattached) backend instance.

    ``backend`` may be an instance (returned as-is), a registry name, or
    ``None`` — which falls back to ``$REPRO_BACKEND`` and then the default.
    """
    if isinstance(backend, TransportBackend):
        return backend
    name = backend if backend is not None else os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    try:
        factory = BACKEND_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown transport backend {name!r}; options: {available_backends()}"
        ) from None
    return factory(spec)


__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_REGISTRY",
    "BackendError",
    "BatchedBackend",
    "DEFAULT_BACKEND",
    "LocalBackend",
    "PoolRef",
    "SharedMemoryBackend",
    "TransportBackend",
    "available_backends",
    "resolve_backend",
]
