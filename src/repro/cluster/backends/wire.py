"""Pickle-free wire codec for the payload shapes the algorithms send.

The shm backend historically serialized every non-flat-f64 payload with
:mod:`pickle`.  That made the *compressed* algorithms — qsgd8, 1bit, topk,
exactly the ones the BAGUA relaxations say should be cheapest on the wire —
the slowest through the multiprocess path: each
:class:`~repro.compression.base.CompressedPayload` round-tripped through
the pickle machinery instead of blitting its packed ``uint8`` buffers.

This module is a small, deterministic, self-describing binary format for
the closed set of shapes collectives actually exchange: nested tuples /
lists / dicts of C-contiguous native-endian ndarrays, numpy scalars,
Python scalars, ``bytes``/``str``, and ``CompressedPayload``.  Anything
outside that set raises :class:`WireError` and the caller falls back to
pickle — the codec never guesses.

Determinism matters beyond speed: the shm backend byte-compares worker
echo records against the staged originals, so ``encode`` must be a pure
function of the value.  ``decode(encode(x))`` reproduces ``x`` with exact
types, dtypes, shapes and bit patterns (including ``-0.0`` and NaN
payload bits), so observational bit-identity across backends is preserved.

Format: one tag byte per node, little-endian fixed-width lengths.

====  ======================  =======================================
tag   value                   body
====  ======================  =======================================
0x00  ``None``                (empty)
0x01  ``False``               (empty)
0x02  ``True``                (empty)
0x03  ``int``                 int64 (range-checked at encode)
0x04  ``float``               float64
0x05  ``str``                 u32 length + utf-8 bytes
0x06  ``bytes``               u32 length + raw bytes
0x07  ``tuple``               u32 count + encoded items
0x08  ``list``                u32 count + encoded items
0x09  ``dict``                u32 count + encoded key/value pairs
0x0A  ``ndarray``             u8 dtype code + u8 ndim + ndim*u32 shape
                              + raw C-order data
0x0B  numpy scalar            u8 dtype code + itemsize raw bytes
0x0C  ``CompressedPayload``   codec str + n int64 + wire_bytes float64
                              + fields dict
0x0D  ``PoolRef``             rank int64 + offset int64 + length int64
====  ======================  =======================================

The ``PoolRef`` tag is the zero-copy descriptor form of a pool-resident
payload (see :class:`~.base.PoolRef` and docs/backends.md): 25 bytes on
the wire regardless of how large the referenced pool region is.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

__all__ = ["WireError", "encodable", "encode", "decode"]


class WireError(Exception):
    """Value outside the codec's closed shape set; caller must fall back."""


_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_NDARRAY = 0x0A
_T_SCALAR = 0x0B
_T_PAYLOAD = 0x0C
_T_POOLREF = 0x0D

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_ARR_HEAD = struct.Struct("<BB")  # dtype code + ndim

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: dtype → wire code.  Keys are *normalized* dtype strings (see
#: :func:`_dtype_code`); the inverse table drives decode.
_DTYPE_CODES: dict[str, int] = {
    "<f8": 0,
    "<f4": 1,
    "<f2": 2,
    "|u1": 3,
    "|i1": 4,
    "<i2": 5,
    "<i4": 6,
    "<i8": 7,
    "<u2": 8,
    "<u4": 9,
    "<u8": 10,
    "|b1": 11,
}
_CODE_DTYPES: dict[int, np.dtype] = {
    code: np.dtype(spec) for spec, code in _DTYPE_CODES.items()
}


def _dtype_code(dtype: np.dtype) -> int:
    """Wire code for ``dtype``, or :class:`WireError` if unsupported."""
    # np.dtype.str uses '=' / '<' / '|' depending on itemsize & platform;
    # normalize single-byte dtypes to '|' and multi-byte little-endian to '<'.
    spec = dtype.str
    if spec.startswith("="):
        spec = ("|" if dtype.itemsize == 1 else "<") + spec[1:]
    code = _DTYPE_CODES.get(spec)
    if code is None:
        raise WireError(f"unsupported dtype {dtype!r}")
    return code


def _compressed_payload_cls():
    """Lazy import so the cluster layer does not hard-depend on compression."""
    from ...compression.base import CompressedPayload

    return CompressedPayload


def _pool_ref_cls():
    """Lazy import: ``base`` imports nothing from here, but keep it uniform."""
    from .base import PoolRef

    return PoolRef


def _encode_into(value: Any, out: list[bytes]) -> None:
    kind = type(value)
    if value is None:
        out.append(b"\x00")
    elif kind is bool:
        out.append(b"\x02" if value else b"\x01")
    elif kind is int:
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise WireError(f"int out of int64 range: {value}")
        out.append(_U8.pack(_T_INT) + _I64.pack(value))
    elif kind is float:
        out.append(_U8.pack(_T_FLOAT) + _F64.pack(value))
    elif kind is str:
        raw = value.encode("utf-8")
        out.append(_U8.pack(_T_STR) + _U32.pack(len(raw)) + raw)
    elif kind is bytes:
        out.append(_U8.pack(_T_BYTES) + _U32.pack(len(value)) + value)
    elif kind is tuple or kind is list:
        tag = _T_TUPLE if kind is tuple else _T_LIST
        out.append(_U8.pack(tag) + _U32.pack(len(value)))
        for item in value:
            _encode_into(item, out)
    elif kind is dict:
        out.append(_U8.pack(_T_DICT) + _U32.pack(len(value)))
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
    elif kind is np.ndarray:
        if not value.flags.c_contiguous:
            raise WireError("ndarray is not C-contiguous")
        code = _dtype_code(value.dtype)
        if value.ndim > 255:
            raise WireError("ndarray has too many dimensions")
        head = _U8.pack(_T_NDARRAY) + _ARR_HEAD.pack(code, value.ndim)
        shape = b"".join(_U32.pack(dim) for dim in value.shape)
        out.append(head + shape)
        out.append(value.tobytes())
    elif isinstance(value, np.generic):
        code = _dtype_code(value.dtype)
        out.append(_U8.pack(_T_SCALAR) + _U8.pack(code) + value.tobytes())
    elif kind is _compressed_payload_cls():
        out.append(_U8.pack(_T_PAYLOAD))
        _encode_into(value.codec, out)
        _encode_into(value.n, out)
        _encode_into(value.wire_bytes, out)
        _encode_into(value.fields, out)
    elif kind is _pool_ref_cls():
        out.append(
            _U8.pack(_T_POOLREF)
            + _I64.pack(value.rank)
            + _I64.pack(value.offset)
            + _I64.pack(value.length)
        )
    else:
        raise WireError(f"unsupported wire type {kind.__name__}")


def encode(value: Any) -> bytes:
    """Serialize ``value``; raises :class:`WireError` outside the shape set."""
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def encodable(value: Any) -> bool:
    """True when :func:`encode` would succeed (no pickle fallback needed)."""
    try:
        encode(value)
    except WireError:
        return False
    return True


def _decode_from(buf: memoryview, off: int) -> tuple[Any, int]:
    tag = buf[off]
    off += 1
    if tag == _T_NONE:
        return None, off
    if tag == _T_FALSE:
        return False, off
    if tag == _T_TRUE:
        return True, off
    if tag == _T_INT:
        return _I64.unpack_from(buf, off)[0], off + 8
    if tag == _T_FLOAT:
        return _F64.unpack_from(buf, off)[0], off + 8
    if tag == _T_STR:
        (length,) = _U32.unpack_from(buf, off)
        off += 4
        return bytes(buf[off : off + length]).decode("utf-8"), off + length
    if tag == _T_BYTES:
        (length,) = _U32.unpack_from(buf, off)
        off += 4
        return bytes(buf[off : off + length]), off + length
    if tag in (_T_TUPLE, _T_LIST):
        (count,) = _U32.unpack_from(buf, off)
        off += 4
        items = []
        for _ in range(count):
            item, off = _decode_from(buf, off)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), off
    if tag == _T_DICT:
        (count,) = _U32.unpack_from(buf, off)
        off += 4
        mapping = {}
        for _ in range(count):
            key, off = _decode_from(buf, off)
            value, off = _decode_from(buf, off)
            mapping[key] = value
        return mapping, off
    if tag == _T_NDARRAY:
        code, ndim = _ARR_HEAD.unpack_from(buf, off)
        off += _ARR_HEAD.size
        shape = tuple(_U32.unpack_from(buf, off + 4 * axis)[0] for axis in range(ndim))
        off += 4 * ndim
        dtype = _CODE_DTYPES[code]
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * dtype.itemsize
        array = np.frombuffer(buf, dtype=dtype, count=count, offset=off)
        # copy(): the source may be ring memory about to be reclaimed.
        return array.reshape(shape).copy(), off + nbytes
    if tag == _T_SCALAR:
        code = buf[off]
        off += 1
        dtype = _CODE_DTYPES[code]
        scalar = np.frombuffer(buf, dtype=dtype, count=1, offset=off)[0]
        return scalar, off + dtype.itemsize
    if tag == _T_PAYLOAD:
        codec, off = _decode_from(buf, off)
        n, off = _decode_from(buf, off)
        wire_bytes, off = _decode_from(buf, off)
        fields, off = _decode_from(buf, off)
        payload_cls = _compressed_payload_cls()
        return payload_cls(codec=codec, n=n, wire_bytes=wire_bytes, fields=fields), off
    if tag == _T_POOLREF:
        rank, offset, length = (
            _I64.unpack_from(buf, off)[0],
            _I64.unpack_from(buf, off + 8)[0],
            _I64.unpack_from(buf, off + 16)[0],
        )
        return _pool_ref_cls()(rank=rank, offset=offset, length=length), off + 24
    raise WireError(f"corrupt wire data: unknown tag 0x{tag:02x}")


def decode(data: bytes | bytearray | memoryview) -> Any:
    """Inverse of :func:`encode`; returns owned objects (buffers are copied)."""
    buf = memoryview(data)
    value, off = _decode_from(buf, 0)
    if off != len(buf):
        raise WireError(f"trailing wire data: {len(buf) - off} byte(s)")
    return value
