"""The transport backend interface.

A :class:`~repro.cluster.transport.Transport` owns the *simulation
semantics* — virtual clocks, the alpha-beta/NIC cost model, traffic
statistics and trace instrumentation.  A :class:`TransportBackend` owns the
*execution substrate*: how a round's payloads actually move between ranks,
where each rank's flat bucket pool lives, and where per-rank compute runs.

Three backends ship (see :mod:`repro.cluster.backends`):

* ``local`` — the in-process loop reference.  Payloads are handed from
  sender to receiver as Python objects; per-rank tasks run serially.  This
  is the oracle every other backend must match bit-for-bit.
* ``batched`` — identical delivery substrate, but collectives prefer the
  world-batched ``(world, n)`` kernels of :mod:`repro.comm.batched` (the
  PR 5 fast path).  The default.
* ``shm`` — one OS worker process per rank.  Payload rounds travel through
  ``multiprocessing.shared_memory`` ring buffers (each record stamped with
  the round's sequence number and barriered on per-worker acks), bucket
  pools are shared-memory segments mapped into both address spaces, and
  per-rank tasks execute concurrently on real cores.

The backend contract is strict: delivered payloads, traffic statistics,
virtual clocks and recorded traces must be **bit-identical** across
backends (``tests/test_backend_identity.py`` enforces this) — backends may
only differ in wall-clock time and in which address space does the work.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from ...analysis.report import Finding
    from ..transport import Message, Transport


class BackendError(RuntimeError):
    """A transport backend failed (protocol violation, dead worker, ...)."""


#: Environment switch for the protocol conformance sanitizer (opt-in):
#: when truthy, backends emit :class:`ProtocolEvent` streams from every
#: participating process and ``repro.analysis.protocol`` replays them
#: against the protocol model.  ``BaguaConfig.protocol_sanitize`` pins the
#: choice per engine.
PROTOCOL_SANITIZE_ENV = "REPRO_PROTOCOL_SANITIZE"


def protocol_sanitize_enabled() -> bool:
    """Resolve the sanitizer default from ``REPRO_PROTOCOL_SANITIZE``."""
    return os.environ.get(PROTOCOL_SANITIZE_ENV, "0").lower() not in ("", "0", "false", "no")


@dataclass(frozen=True)
class PoolRef:
    """Descriptor of a dense f64 view into one rank's flat bucket pool.

    ``offset``/``length`` are in float64 *elements* from the start of rank
    ``rank``'s pool (:meth:`TransportBackend.allocate_pool`).  A PoolRef is
    the wire form of a pool-resident payload: 24 bytes of descriptor
    instead of ``length * 8`` bytes of data, resolvable by any process the
    pool segment is mapped into.  Descriptors travel through the shm rings
    under their own wire tag (``wire._T_POOLREF``) and drive the in-place
    worker-parallel reduction of :meth:`TransportBackend.pool_ref_reduce`.
    """

    rank: int
    offset: int
    length: int


#: One owned chunk of a pool-ref reduction: ``(lo, hi, order)`` — the
#: element range (relative to each member view) and the member fold order.
PoolRefChunk = tuple[int, int, tuple[int, ...]]


@dataclass(frozen=True)
class ProtocolEvent:
    """One observed protocol action, emitted by a backend under sanitation.

    Events are deliberately tiny and picklable: worker processes buffer
    theirs and piggyback them on the acks they already send, so the
    sanitizer sees both sides of every pipe without a new channel.

    ``proc`` is ``"parent"`` or ``"worker:<rank>"``; ``rank`` is the worker
    the event concerns (``-1`` for backend-wide events).  ``kind`` is one of
    ``config, spawn, stage, post, recv, ring_read, ring_write, ack_send,
    ack_recv, pool_map, exit, unlink, closed``; ``op`` carries the doorbell
    kind (``round``/``task``/``pool``/``close``, or ``batch`` for a staged
    program's single flag-word doorbell) where one applies; ``detail`` is
    per-kind metadata (e.g. ``(records, ring_bytes, inline)`` for a round
    post).  ``stage`` events record rounds/tasks added to a not-yet-flushed
    batch; every staged ``(rank, seq)`` must later be covered by a
    ``batch`` post.
    """

    proc: str
    kind: str
    rank: int = -1
    seq: int = -1
    op: str = ""
    detail: tuple = ()

    def describe(self) -> str:
        parts = [self.proc, self.kind]
        if self.op:
            parts.append(self.op)
        if self.rank >= 0:
            parts.append(f"rank {self.rank}")
        if self.seq >= 0:
            parts.append(f"seq {self.seq}")
        if self.detail:
            parts.append(repr(self.detail))
        return " ".join(parts)


class TransportBackend:
    """Pluggable execution substrate behind a :class:`Transport`.

    Subclasses implement payload routing (:meth:`route_round`), flat-pool
    allocation (:meth:`allocate_pool`) and per-rank task execution
    (:meth:`run_rank_tasks`).  The base class provides attach/close
    bookkeeping and context-manager lifetime.
    """

    #: registry name ("local", "batched", "shm")
    name: str = "base"
    #: kernel flavor collectives pick when no explicit fast-path override is
    #: active: the loop reference (False) or the world-batched kernels (True).
    prefers_fast_path: bool = True
    #: whether pool-resident payloads should route as :class:`PoolRef`
    #: descriptors by default (``repro.comm`` consults this the same way it
    #: consults ``prefers_fast_path``).  Every backend *can* execute
    #: :meth:`pool_ref_reduce` over its registered pools; only backends
    #: where the descriptor path actually changes the execution substrate
    #: (the shm worker processes) turn the preference on.
    supports_pool_ref: bool = False

    def __init__(self) -> None:
        self._transport: Transport | None = None
        self._protocol_sanitize = protocol_sanitize_enabled()
        #: Observed protocol events (empty unless sanitize mode is on).
        self.protocol_events: list[ProtocolEvent] = []
        #: rank → parent-side pool array, populated by ``allocate_pool``
        #: implementations via :meth:`_register_pool`; drives PoolRef
        #: resolution and the generic :meth:`pool_ref_reduce`.
        self._pool_arrays: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, transport: Transport) -> None:
        """Bind this backend to ``transport`` (validates world size)."""
        self.validate_world(transport.spec.world_size)
        self._transport = transport

    def validate_world(self, world_size: int) -> None:  # noqa: B027 (hook)
        """Raise if this backend cannot serve ``world_size`` ranks."""

    def close(self) -> None:  # noqa: B027 (hook)
        """Release backend resources (processes, shared memory).  Idempotent."""

    def flush(self) -> None:  # noqa: B027 (hook)
        """Drain any deferred transport work (batched rounds).

        The engine calls this at each iteration boundary; synchronous
        backends keep the no-op default.  After ``flush`` returns, every
        previously routed round has fully executed on its worker and its
        cross-process echoes have been verified.
        """

    def __enter__(self) -> TransportBackend:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol conformance sanitizer (opt-in instrumentation)
    # ------------------------------------------------------------------
    @property
    def sanitizing(self) -> bool:
        """Whether this backend records a protocol event stream."""
        return self._protocol_sanitize

    def set_protocol_sanitize(self, enabled: bool) -> None:
        """Switch sanitize mode on/off (before any protocol traffic).

        Backends with external executors (the shm backend's worker
        processes) need the flag at spawn time and override this to reject
        late flips.
        """
        self._protocol_sanitize = bool(enabled)

    def emit_protocol_event(
        self,
        kind: str,
        rank: int = -1,
        seq: int = -1,
        op: str = "",
        detail: tuple = (),
        proc: str = "parent",
    ) -> None:
        """Record one protocol event (no-op unless sanitizing)."""
        if self._protocol_sanitize:
            self.protocol_events.append(
                ProtocolEvent(proc=proc, kind=kind, rank=rank, seq=seq, op=op, detail=detail)
            )

    def conformance_findings(self) -> list[Finding]:
        """Replay the recorded event stream against the protocol model.

        Returns the sanitizer's findings (empty = conformant).  Requires
        sanitize mode; the import is lazy so the cluster layer stays free of
        an analysis dependency unless the sanitizer is actually used.
        """
        from ...analysis.protocol.sanitizer import check_events

        return check_events(self.protocol_events)

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    def route_round(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        """Deliver one round of messages; return them grouped by receiver.

        Per-destination message order must match the order of ``messages``,
        and every delivered payload must be bit-identical to the payload
        sent.  The transport has already charged clocks/stats/tracer for the
        round — this method only moves the payloads.
        """
        raise NotImplementedError

    def allocate_pool(self, rank: int, n_elements: int) -> np.ndarray:
        """Allocate rank ``rank``'s flat float64 bucket pool.

        Returns the parent-side array view.  Backends that execute rank
        tasks elsewhere must make the same storage visible to that rank's
        executor (the shm backend maps one shared-memory segment into both
        processes, so bucket views stay zero-copy on both sides).
        """
        raise NotImplementedError

    def run_rank_tasks(
        self,
        fn: Callable[..., Any],
        args_by_rank: Mapping[int, tuple],
    ) -> dict[int, Any]:
        """Execute ``fn(pool, *args_by_rank[rank])`` for every rank given.

        ``pool`` is the rank's pool from :meth:`allocate_pool` (or ``None``
        when none was allocated).  ``fn`` must be a module-level callable so
        multiprocess backends can pickle it by reference.  Returns results
        keyed by rank.  Backends with real per-rank executors run the tasks
        concurrently; in-process backends run them serially.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Pool-ref collectives (zero-copy descriptors over registered pools)
    # ------------------------------------------------------------------
    def _register_pool(self, rank: int, pool: np.ndarray) -> None:
        """Remember rank's pool array so views into it resolve to PoolRefs.

        ``allocate_pool`` implementations call this; a re-allocation
        replaces the entry, so stale views of a dropped segment stop
        resolving.
        """
        self._pool_arrays[rank] = pool

    def pool_ref(self, array: Any) -> PoolRef | None:
        """Resolve ``array`` to a :class:`PoolRef`, or None.

        Only dense views qualify: 1-D C-contiguous float64, lying entirely
        within one registered pool at an 8-byte-aligned offset.  Anything
        else — other dtypes, strided views, arrays owning their own storage
        — returns None and keeps the codec path.
        """
        if (
            not isinstance(array, np.ndarray)
            or array.dtype != np.float64
            or array.ndim != 1
            or not array.flags.c_contiguous
            or array.size == 0
        ):
            return None
        addr = array.__array_interface__["data"][0]
        for rank, pool in self._pool_arrays.items():
            delta = addr - pool.__array_interface__["data"][0]
            if 0 <= delta and delta + array.nbytes <= pool.nbytes and delta % 8 == 0:
                return PoolRef(rank=rank, offset=delta // 8, length=array.size)
        return None

    def resolve_pool_refs(
        self, arrays: Sequence[Any], ranks: Sequence[int]
    ) -> list[PoolRef] | None:
        """PoolRefs for a whole collective, or None if any member fails.

        Member ``i``'s array must live in rank ``ranks[i]``'s own pool —
        the ownership assumption the worker-parallel reduction's chunk
        assignment relies on.  All members must share one length.
        """
        if len(arrays) != len(ranks) or not arrays:
            return None
        refs: list[PoolRef] = []
        length = None
        for array, rank in zip(arrays, ranks):
            ref = self.pool_ref(array)
            if ref is None or ref.rank != rank:
                return None
            if length is None:
                length = ref.length
            elif ref.length != length:
                return None
            refs.append(ref)
        return refs

    def pool_ref_reduce(
        self,
        refs: Sequence[PoolRef],
        chunks: Sequence[PoolRefChunk],
        add_zero: bool,
    ) -> None:
        """Reduce the referenced pool regions in place, chunk-parallel.

        ``refs[i]`` is collective member ``i``'s region; ``chunks[j] =
        (lo, hi, order)`` assigns element range ``[lo, hi)`` (relative to
        each region) to member ``j``'s executor, which folds the members'
        slices *in exactly the order given* — ``acc = region[order[0]].copy();
        acc += region[order[k]]`` — optionally appends the loop oracle's
        trailing ``+ 0.0``, and writes the result into **every** member's
        slice.  Chunk ranges must be pairwise disjoint, which is what makes
        the per-chunk executors race-free without a barrier: chunk ``j``
        reads and writes only ``[lo_j, hi_j)`` of each region.

        The caller (``repro.comm``) picks fold orders that reproduce the
        batched kernels' float operation order bit-for-bit, so in-place
        results equal what the codec path would have returned.

        This base implementation runs the chunks serially in the calling
        process over the registered pool arrays; backends with real
        per-rank executors (shm) override it to run chunks on their owning
        workers concurrently.
        """
        views = []
        for ref in refs:
            pool = self._pool_arrays.get(ref.rank)
            if pool is None or ref.offset + ref.length > pool.shape[0]:
                raise BackendError(
                    f"pool ref (rank {ref.rank}, offset {ref.offset}, "
                    f"length {ref.length}) targets an unmapped pool segment"
                )
            views.append(pool[ref.offset : ref.offset + ref.length])
        for lo, hi, order in chunks:
            acc = views[order[0]][lo:hi].copy()
            for member in order[1:]:
                acc += views[member][lo:hi]
            if add_zero:
                acc += 0.0
            for view in views:
                view[lo:hi] = acc

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Small diagnostic summary (used by the perf harness / docs)."""
        return {
            "name": self.name,
            "prefers_fast_path": self.prefers_fast_path,
            "supports_pool_ref": self.supports_pool_ref,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
