"""Shared-memory multiprocess backend: one OS worker process per rank.

The data plane is a pair of ``multiprocessing.shared_memory`` ring buffers
per worker (parent→worker and worker→parent).  Every record is stamped with
the round's sequence number, offsets advance modulo the ring capacity
(8-byte aligned), and a record that cannot fit the ring falls back to the
control pipe inline.  The control plane is one OS pipe per worker carrying
doorbells — ``round`` / ``task`` / ``pool`` / ``close`` — and their acks;
idle workers block in the kernel instead of spinning.

Round semantics match :meth:`repro.cluster.transport.Transport.exchange`
exactly: the parent writes all of a round's payloads into the destination
workers' rings, rings the doorbells, then **barriers** on every
participating worker's ack (validating the per-round sequence number)
before the round returns.  Each worker decodes the payloads in its own
address space and re-encodes them into its outbound ring, so delivered
bytes really cross process boundaries twice — and must still come back
bit-identical (``tests/test_backend_identity.py``).

Rank bucket pools (:meth:`allocate_pool`) are plain shared-memory segments
mapped as float64 arrays in both the parent and the rank's worker: the
engine's zero-copy bucket views work unchanged on either side, and
:meth:`run_rank_tasks` runs per-rank compute on real cores against the same
storage the parent sees.

Teardown is graceful: ``close()`` (also the context-manager exit and an
``atexit`` hook) sends shutdown doorbells, joins with a timeout, terminates
stragglers, and unlinks every segment; a failure mid-startup unwinds the
workers already spawned so no orphan processes or segments survive.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import struct
import sys
import time
import traceback
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any

import numpy as np

from .base import BackendError, ProtocolEvent, TransportBackend

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.process import BaseProcess

    from ..transport import Message

#: Default per-direction ring capacity (bytes).
DEFAULT_RING_BYTES = 1 << 22
#: Default ack timeout (seconds) before a worker is declared wedged.
DEFAULT_TIMEOUT_S = 120.0

#: Record payload encodings.
_RAW_F64 = 0
_PICKLED = 1

#: Per-record sequence stamp preceding the payload bytes in the ring.
_SEQ = struct.Struct("<Q")

#: A ring entry in a control message: (kind, offset, nbytes, inline_bytes).
#: ``offset`` is -1 (and ``inline_bytes`` set) when the record overflowed
#: the ring and travelled inline over the pipe instead.
_Entry = tuple[int, int, int, bytes | None]


def _encode(payload: Any) -> tuple[int, np.ndarray]:
    """Payload → (kind, uint8 buffer).  Flat f64 arrays go raw, rest pickled."""
    if (
        isinstance(payload, np.ndarray)
        and payload.dtype == np.float64
        and payload.ndim == 1
        and payload.flags.c_contiguous
    ):
        return _RAW_F64, payload.view(np.uint8)
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _PICKLED, np.frombuffer(raw, dtype=np.uint8)


def _decode(kind: int, data: np.ndarray) -> Any:
    """Inverse of :func:`_encode`; always returns freshly owned objects."""
    if kind == _RAW_F64:
        return data.view(np.float64).copy()
    return pickle.loads(data.tobytes())


class _RingWriter:
    """Sequential writer over one shared-memory ring.

    Offsets are 8-byte aligned and wrap to 0 when a record would cross the
    end.  ``begin_round`` resets the per-round budget: the records of one
    round must all be resident simultaneously (the reader only drains at
    the doorbell), so placement refuses — returning ``None``, which makes
    the record travel inline — once a round has consumed the capacity.
    """

    def __init__(self, buf: memoryview, capacity: int) -> None:
        self.buf = buf
        self.capacity = capacity
        self._off = 0
        self._used = 0

    def begin_round(self) -> None:
        self._used = 0

    def write(self, seq: int, data: np.ndarray) -> tuple[int, int] | None:
        """Stamp + blit one record; returns (offset, nbytes) or None if full."""
        total = _SEQ.size + len(data)
        off = (self._off + 7) & ~7
        waste = off - self._off
        if off + total > self.capacity:
            waste += self.capacity - off
            off = 0
        if total > self.capacity or self._used + waste + total > self.capacity:
            return None
        _SEQ.pack_into(self.buf, off, seq)
        view = np.frombuffer(self.buf, dtype=np.uint8, count=len(data), offset=off + _SEQ.size)
        view[:] = data
        del view
        self._off = off + total
        self._used += waste + total
        return off, len(data)


def _write_record(writer: _RingWriter, seq: int, payload: Any) -> _Entry:
    kind, data = _encode(payload)
    placed = writer.write(seq, data)
    if placed is None:
        return (kind, -1, len(data), data.tobytes())
    off, nbytes = placed
    return (kind, off, nbytes, None)


def _read_record(buf: memoryview, seq: int, entry: _Entry) -> Any:
    kind, off, nbytes, inline = entry
    if off < 0:
        if inline is None:
            raise BackendError("ring entry has neither an offset nor inline bytes")
        return _decode(kind, np.frombuffer(inline, dtype=np.uint8))
    stamp = _SEQ.unpack_from(buf, off)[0]
    if stamp != seq:
        raise BackendError(
            f"ring record at offset {off} is stamped seq {stamp}, expected {seq}"
        )
    data = np.frombuffer(buf, dtype=np.uint8, count=nbytes, offset=off + _SEQ.size)
    payload = _decode(kind, data)
    del data
    return payload


def _close_segment(shm: shared_memory.SharedMemory, unlink: bool) -> None:
    """Best-effort close (+ optional unlink) tolerating exported views.

    Note on the resource tracker: worker processes inherit the parent's
    tracker (fork and spawn both ship its fd), and registrations live in a
    set — so a worker attaching a segment is a no-op re-registration and
    the parent's unlink below performs the single unregister.  Workers must
    never unregister themselves or the parent's unlink would KeyError in
    the tracker process.
    """
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    try:
        shm.close()
    except BufferError:
        # Long-lived pool views (engine buckets) may still reference the
        # mapping; the segment is already unlinked, so the memory goes away
        # with the last view / at process exit.  Disarm the instance so its
        # __del__ does not retry the close and print an ignored exception.
        shm.close = lambda: None  # type: ignore[method-assign]


def _worker_main(
    rank: int,
    in_name: str,
    out_name: str,
    capacity: int,
    conn: Connection,
    sanitize: bool = False,
) -> None:
    """Entry point of one rank server process.

    With ``sanitize`` on, the worker records a :class:`ProtocolEvent` for
    every protocol action and piggybacks the buffered events on each ack it
    already sends — the parent's sanitizer sees both sides of the pipe
    without any extra channel.
    """
    in_shm = shared_memory.SharedMemory(name=in_name)
    out_shm = shared_memory.SharedMemory(name=out_name)
    writer = _RingWriter(out_shm.buf, capacity)
    pool_shm: shared_memory.SharedMemory | None = None
    pool: np.ndarray | None = None
    expected = 0
    me = f"worker:{rank}"
    events: list[ProtocolEvent] = []

    def emit(kind: str, seq: int = -1, op: str = "", detail: tuple = ()) -> None:
        if sanitize:
            events.append(
                ProtocolEvent(proc=me, kind=kind, rank=rank, seq=seq, op=op, detail=detail)
            )

    def send(*payload: Any) -> None:
        """Ship one ack, with the buffered event batch attached in sanitize mode."""
        if sanitize:
            conn.send((*payload, tuple(events)))
            events.clear()
        else:
            conn.send(payload)

    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            op, seq = request[0], request[1]
            emit("recv", seq=seq, op=op)
            try:
                if seq != expected:
                    raise BackendError(
                        f"worker {rank}: expected doorbell seq {expected}, got {seq}"
                    )
                expected += 1
                if op == "round":
                    payloads = [_read_record(in_shm.buf, seq, e) for e in request[2]]
                    emit("ring_read", seq=seq, detail=(len(payloads),))
                    writer.begin_round()
                    entries = [_write_record(writer, seq, p) for p in payloads]
                    emit("ring_write", seq=seq, detail=(len(entries),))
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, entries)
                elif op == "task":
                    fn, args = _read_record(in_shm.buf, seq, request[2])
                    emit("ring_read", seq=seq, detail=(1,))
                    result = fn(pool, *args)
                    writer.begin_round()
                    entry = _write_record(writer, seq, result)
                    emit("ring_write", seq=seq, detail=(1,))
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, entry)
                elif op == "pool":
                    new = shared_memory.SharedMemory(name=request[2])
                    pool = np.frombuffer(new.buf, dtype=np.float64, count=request[3])
                    if pool_shm is not None:
                        _close_segment(pool_shm, unlink=False)
                    pool_shm = new
                    emit("pool_map", seq=seq)
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, None)
                elif op == "close":
                    emit("exit")
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, None)
                    break
                else:
                    raise BackendError(f"worker {rank}: unknown doorbell {op!r}")
            except BaseException:
                send("err", seq, traceback.format_exc())
    finally:
        pool = None
        if pool_shm is not None:
            _close_segment(pool_shm, unlink=False)
        del writer  # releases the ring view so the segment can close
        _close_segment(in_shm, unlink=False)
        _close_segment(out_shm, unlink=False)
        conn.close()


@dataclass
class _WorkerHandle:
    """Parent-side view of one rank server."""

    rank: int
    process: BaseProcess
    conn: Connection
    in_shm: shared_memory.SharedMemory
    out_shm: shared_memory.SharedMemory
    writer: _RingWriter = field(init=False)
    seq: int = 0

    def __post_init__(self) -> None:
        self.writer = _RingWriter(self.in_shm.buf, self.in_shm.size)

    def next_seq(self) -> int:
        seq = self.seq
        self.seq += 1
        return seq


class SharedMemoryBackend(TransportBackend):
    """N rank-server processes over shared-memory rings (see module doc)."""

    name = "shm"
    prefers_fast_path = True

    def __init__(
        self,
        world_size: int,
        ring_bytes: int = DEFAULT_RING_BYTES,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        start_method: str | None = None,
        sanitize: bool | None = None,
    ) -> None:
        super().__init__()
        if sanitize is not None:
            self._protocol_sanitize = bool(sanitize)
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.ring_bytes = int(ring_bytes)
        self.timeout_s = float(timeout_s)
        if start_method is None:
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._workers: dict[int, _WorkerHandle] = {}
        self._pools: dict[int, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        self._started = False
        self._closed = False
        self._atexit_hook: Callable[[], None] | None = None
        self.shm_stats = {"rounds": 0, "payload_bytes": 0, "tasks": 0, "inline_fallbacks": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def validate_world(self, world_size: int) -> None:
        if world_size != self.world_size:
            raise ValueError(
                f"shm backend serves {self.world_size} ranks, transport has {world_size}"
            )

    def set_protocol_sanitize(self, enabled: bool) -> None:
        """Sanitize mode must be fixed before the workers spawn."""
        if self._started and bool(enabled) != self._protocol_sanitize:
            raise BackendError(
                "protocol sanitize mode must be set before the shm workers start"
            )
        self._protocol_sanitize = bool(enabled)

    def ensure_started(self) -> None:
        """Spawn the rank servers (lazy; a no-op once running)."""
        if self._started:
            return
        if self._closed:
            raise BackendError("shm backend already closed")
        self.emit_protocol_event("config", detail=(self.world_size, self.ring_bytes))
        try:
            for rank in range(self.world_size):
                in_shm = shared_memory.SharedMemory(create=True, size=self.ring_bytes)
                out_shm = shared_memory.SharedMemory(create=True, size=self.ring_bytes)
                parent_conn, child_conn = self._ctx.Pipe()
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        in_shm.name,
                        out_shm.name,
                        self.ring_bytes,
                        child_conn,
                        self._protocol_sanitize,
                    ),
                    name=f"repro-shm-w{rank}",
                    daemon=True,
                )
                # Register the handle before starting so a failed spawn is
                # still unwound by the except-branch close().
                self._workers[rank] = _WorkerHandle(rank, process, parent_conn, in_shm, out_shm)
                process.start()
                child_conn.close()
                self.emit_protocol_event("spawn", rank=rank)
            self._started = True
        except BaseException:
            self._teardown(graceful=False)
            raise
        hook = self.close
        atexit.register(hook)
        self._atexit_hook = hook
        # Re-attach pools allocated before startup.
        for rank, (pool_shm, pool) in self._pools.items():
            self._map_pool(rank, pool_shm, pool.shape[0])

    def close(self) -> None:
        """Shut down workers and release every segment.  Idempotent."""
        if self._closed:
            return
        self._teardown(graceful=True)
        self.emit_protocol_event("closed")
        self._closed = True
        if self._atexit_hook is not None:
            atexit.unregister(self._atexit_hook)
            self._atexit_hook = None

    def _teardown(self, graceful: bool) -> None:
        for handle in self._workers.values():
            if graceful and handle.process.is_alive():
                try:
                    seq = handle.next_seq()
                    handle.conn.send(("close", seq))
                except (BrokenPipeError, OSError):
                    pass
                else:
                    self.emit_protocol_event("post", rank=handle.rank, seq=seq, op="close")
        if self._protocol_sanitize and graceful:
            # The close doorbell is normally fire-and-forget (join is the
            # close barrier), but the worker's final event batch — including
            # its exit event — rides on the close ack; drain it so the
            # sanitizer can prove unlink happened after every exit.
            for handle in self._workers.values():
                try:
                    if handle.process.is_alive() or handle.conn.poll(0):
                        if handle.conn.poll(2.0):
                            message = handle.conn.recv()
                            if len(message) > 3:
                                self.protocol_events.extend(message[3])
                            self.emit_protocol_event(
                                "ack_recv", rank=handle.rank, seq=message[1]
                            )
                except (EOFError, OSError):
                    pass
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            _close_segment(handle.in_shm, unlink=True)
            _close_segment(handle.out_shm, unlink=True)
            self.emit_protocol_event("unlink", rank=handle.rank)
        self._workers.clear()
        self._started = False
        for rank, (pool_shm, _pool) in self._pools.items():
            _close_segment(pool_shm, unlink=True)
            self.emit_protocol_event("unlink", rank=rank)
        self._pools.clear()

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _await_ack(self, handle: _WorkerHandle, seq: int) -> Any:
        deadline = time.monotonic() + self.timeout_s
        while not handle.conn.poll(0.05):
            if not handle.process.is_alive():
                code = handle.process.exitcode
                self.close()
                raise BackendError(
                    f"shm worker {handle.rank} died (exit code {code}); backend closed"
                )
            if time.monotonic() > deadline:
                self.close()
                raise BackendError(
                    f"shm worker {handle.rank} did not ack seq {seq} within "
                    f"{self.timeout_s:.0f}s; backend closed"
                )
        message = handle.conn.recv()
        op, ack_seq, payload = message[0], message[1], message[2]
        if self._protocol_sanitize and len(message) > 3:
            self.protocol_events.extend(message[3])
        self.emit_protocol_event("ack_recv", rank=handle.rank, seq=ack_seq)
        if op == "err":
            raise BackendError(f"shm worker {handle.rank} failed:\n{payload}")
        if ack_seq != seq:
            self.close()
            raise BackendError(
                f"shm worker {handle.rank} acked seq {ack_seq}, expected {seq}; "
                "backend closed"
            )
        return payload

    def _post(self, handle: _WorkerHandle, op: str, *payload: Any) -> int:
        seq = handle.next_seq()
        try:
            handle.conn.send((op, seq, *payload))
        except (BrokenPipeError, OSError) as exc:
            self.close()
            raise BackendError(
                f"shm worker {handle.rank} pipe is gone ({exc}); backend closed"
            ) from exc
        self.emit_protocol_event("post", rank=handle.rank, seq=seq, op=op)
        return seq

    # ------------------------------------------------------------------
    # Backend contract
    # ------------------------------------------------------------------
    def route_round(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        from ..transport import Message as MessageCls

        self.ensure_started()
        by_dst: dict[int, list[Message]] = {}
        for message in messages:
            by_dst.setdefault(message.dst, []).append(message)

        # Phase 1: stage every destination's payloads and ring its doorbell.
        pending: list[tuple[_WorkerHandle, int, list[Message]]] = []
        for dst, batch in by_dst.items():
            handle = self._workers[dst]
            seq = handle.next_seq()
            handle.writer.begin_round()
            entries = []
            for message in batch:
                entry = _write_record(handle.writer, seq, message.payload)
                if entry[1] < 0:
                    self.shm_stats["inline_fallbacks"] += 1
                self.shm_stats["payload_bytes"] += entry[2]
                entries.append(entry)
            try:
                handle.conn.send(("round", seq, entries))
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise BackendError(
                    f"shm worker {dst} pipe is gone ({exc}); backend closed"
                ) from exc
            placed = sum(e[2] for e in entries if e[1] >= 0)
            inline = sum(1 for e in entries if e[1] < 0)
            self.emit_protocol_event(
                "post", rank=dst, seq=seq, op="round", detail=(len(entries), placed, inline)
            )
            pending.append((handle, seq, batch))
        self.shm_stats["rounds"] += 1

        # Phase 2: barrier — every participating worker must ack its round
        # seq and echo the payloads through its outbound ring.
        inbox: dict[int, list[Message]] = {}
        for handle, seq, batch in pending:
            out_entries = self._await_ack(handle, seq)
            if len(out_entries) != len(batch):
                self.close()
                raise BackendError(
                    f"shm worker {handle.rank} echoed {len(out_entries)} records "
                    f"for a {len(batch)}-message round; backend closed"
                )
            delivered = []
            for message, entry in zip(batch, out_entries):
                payload = _read_record(handle.out_shm.buf, seq, entry)
                delivered.append(
                    MessageCls(
                        src=message.src,
                        dst=message.dst,
                        payload=payload,
                        nbytes=message.nbytes,
                        match_id=message.match_id,
                    )
                )
            inbox[handle.rank] = delivered
        return inbox

    def allocate_pool(self, rank: int, n_elements: int) -> np.ndarray:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of {self.world_size}")
        nbytes = max(8, int(n_elements) * 8)
        pool_shm = shared_memory.SharedMemory(create=True, size=nbytes)
        pool = np.frombuffer(pool_shm.buf, dtype=np.float64, count=n_elements)
        previous = self._pools.get(rank)
        self._pools[rank] = (pool_shm, pool)
        if self._started:
            self._map_pool(rank, pool_shm, n_elements)
        if previous is not None:
            _close_segment(previous[0], unlink=True)
        return pool

    def _map_pool(self, rank: int, pool_shm: shared_memory.SharedMemory, n: int) -> None:
        handle = self._workers[rank]
        seq = self._post(handle, "pool", pool_shm.name, n)
        self._await_ack(handle, seq)

    def run_rank_tasks(
        self,
        fn: Callable[..., Any],
        args_by_rank: Mapping[int, tuple],
    ) -> dict[int, Any]:
        self.ensure_started()
        ranks = sorted(args_by_rank)
        pending: list[tuple[_WorkerHandle, int]] = []
        for rank in ranks:
            handle = self._workers[rank]
            seq = handle.next_seq()
            handle.writer.begin_round()
            entry = _write_record(handle.writer, seq, (fn, tuple(args_by_rank[rank])))
            try:
                handle.conn.send(("task", seq, entry))
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise BackendError(
                    f"shm worker {rank} pipe is gone ({exc}); backend closed"
                ) from exc
            self.emit_protocol_event(
                "post", rank=rank, seq=seq, op="task", detail=(1, entry[2], int(entry[1] < 0))
            )
            pending.append((handle, seq))
        self.shm_stats["tasks"] += len(ranks)
        results: dict[int, Any] = {}
        for handle, seq in pending:
            entry = self._await_ack(handle, seq)
            results[handle.rank] = _read_record(handle.out_shm.buf, seq, entry)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        info = super().describe()
        info.update(
            world_size=self.world_size,
            started=self._started,
            start_method=self.start_method,
            ring_bytes=self.ring_bytes,
            cpu_count=os.cpu_count(),
            **self.shm_stats,
        )
        return info

    def __del__(self) -> None:
        # Interpreter shutdown tears modules down in arbitrary order: a
        # backend dropped at exit must not touch multiprocessing machinery
        # (pipes, process joins, the resource tracker) once finalization has
        # begun — the atexit hook already ran close() while it was safe.
        try:
            if sys is None or sys.is_finalizing():
                return
            self.close()
        except Exception:
            pass
