"""Shared-memory multiprocess backend: one OS worker process per rank.

The data plane is a pair of ``multiprocessing.shared_memory`` ring buffers
per worker (parent→worker and worker→parent).  Every record is stamped with
a sequence number, offsets advance modulo the ring capacity (8-byte
aligned), and a record that cannot fit the ring falls back to the control
pipe inline.  The first 64 bytes of each ring are a header of u64 flag
words (see below); record data starts at ``_HEADER_BYTES``.

Two steady-state modes:

* **Batched (default, ``batch_rounds=True``)** — the parent *stages* each
  round's records into the destination rings and returns the delivered
  payloads immediately (decode∘encode is the identity, so the staged bytes
  already determine them).  Staged rounds — and ``run_rank_tasks`` work —
  accumulate into one *program* per worker.  At a flush boundary (an
  explicit :meth:`flush`, a control-plane op, ring-budget pressure, or
  close) the parent writes the program as one codec-encoded ring record,
  publishes its offset/length in the header, and rings a single
  **flag-word doorbell**: doorbell/ack traffic drops from O(rounds×ranks)
  pipe messages to O(ranks) flag writes per iteration.  The worker executes
  the whole program locally, echoes every record through its outbound ring,
  and acks once per batch with a flag word; the parent byte-compares the
  echoes against the staged originals.  Pipes are only touched for control
  (``pool``/``close``) and overflow (a program or reply too large for its
  ring travels as a ``batch`` pipe message — the oversize/irregular
  fallback).
* **Per-round (``batch_rounds=False``)** — the original protocol: every
  round posts a pipe doorbell per destination and barriers on per-round
  pipe acks before returning.  Kept as the conservative fallback and as
  the baseline leg of the ``shm_round_latency`` microbenchmark.

Header layout (u64 little-endian words):

* parent→worker ring: ``[0]`` doorbell flag (``batch_seq + 1``; 0 = idle),
  ``[8]`` program record offset, ``[16]`` program record nbytes;
* worker→parent ring: ``[0]`` ack flag (``(batch_seq + 1) << 8 | status``
  with status 1 = reply in ring, 2 = reply via pipe, 3 = error via pipe),
  ``[8]`` reply record offset, ``[16]`` reply record nbytes.

Waiters use a bounded spin then a short ``poll`` backoff on the control
pipe, so flag words and pipe messages share one wait loop.  There are no
atomics in pure Python: correctness relies on the GIL serializing each
8-byte aligned store and on x86-TSO store ordering (data published before
the flag); the program record's seq stamp is validated as a secondary
check.

Payload encodings: flat contiguous f64 arrays blit raw; everything the
:mod:`.wire` codec covers (nested tuples/lists/dicts of ndarrays, scalars,
``CompressedPayload``) uses the pickle-free binary format; only the
remainder (e.g. task functions) falls back to :mod:`pickle`.

Rank bucket pools (:meth:`allocate_pool`) are plain shared-memory segments
mapped as float64 arrays in the parent and in **every** worker (keyed by
owner rank), which enables the zero-copy **pool-ref fast path**: a payload
that is a dense f64 view into a mapped pool ships as a 25-byte
``PoolRef`` descriptor (wire tag ``0x0D``) instead of its bytes, and
:meth:`pool_ref_reduce` stages per-chunk ``reduce`` items that each owning
worker executes *in place on the shared pools, in parallel* — fold the
members' chunk slices in the caller-given order, then broadcast by writing
peers' segments directly.  Chunk element ranges are disjoint across
workers, so the executors are race-free without a barrier; the parent
posts all programs before awaiting any ack (`flush` is post-all-then-
await-all), which is what lets the per-worker reductions overlap on real
cores.  See docs/backends.md § "Pool-ref collectives".

Teardown is graceful: ``close()`` flushes pending batches, sends shutdown
doorbells, joins with a timeout, terminates stragglers, and unlinks every
segment.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import struct
import sys
import time
import traceback
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from functools import lru_cache
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any

import numpy as np

from . import wire
from .base import BackendError, PoolRef, PoolRefChunk, ProtocolEvent, TransportBackend

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.process import BaseProcess

    from ..transport import Message

#: Default per-direction ring capacity (bytes).
DEFAULT_RING_BYTES = 1 << 22
#: Default ack timeout (seconds) before a worker is declared wedged.
DEFAULT_TIMEOUT_S = 120.0

#: Record payload encodings.
_RAW_F64 = 0
_PICKLED = 1
_CODEC = 2

#: Per-record sequence stamp preceding the payload bytes in the ring.
_SEQ = struct.Struct("<Q")
#: Header flag words (u64, little-endian).
_U64 = struct.Struct("<Q")

#: Bytes reserved at the front of each ring for flag words.
_HEADER_BYTES = 64
_DOOR_FLAG_OFF = 0
_PROG_OFF_OFF = 8
_PROG_LEN_OFF = 16
_ACK_FLAG_OFF = 0
_REPLY_OFF_OFF = 8
_REPLY_LEN_OFF = 16

#: Ack-flag status byte.
_ACK_RING = 1
_ACK_PIPE = 2
_ACK_ERR = 3

#: Flag waiters busy-spin this many iterations before sleeping in poll().
_SPIN_LIMIT = 512
#: Poll backoff once the spin budget is exhausted.
_POLL_BACKOFF_S = 0.002

#: A batch flushes once its program reaches this many round/task items.
_MAX_BATCH_ITEMS = 128

#: A ring entry in a control message: (kind, offset, nbytes, inline_bytes).
#: ``offset`` is -1 (and ``inline_bytes`` set) when the record overflowed
#: the ring and travelled inline over the pipe instead.
_Entry = tuple[int, int, int, bytes | None]


def _encode(payload: Any) -> tuple[int, np.ndarray]:
    """Payload → (kind, uint8 buffer).

    Flat f64 arrays go raw, wire-codec shapes go pickle-free, the rest
    (task closures, exotic objects) falls back to pickle.
    """
    if (
        isinstance(payload, np.ndarray)
        and payload.dtype == np.float64
        and payload.ndim == 1
        and payload.flags.c_contiguous
    ):
        return _RAW_F64, payload.view(np.uint8)
    try:
        raw = wire.encode(payload)
        return _CODEC, np.frombuffer(raw, dtype=np.uint8)
    except wire.WireError:
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return _PICKLED, np.frombuffer(raw, dtype=np.uint8)


def _decode(kind: int, data: np.ndarray) -> Any:
    """Inverse of :func:`_encode`; always returns freshly owned objects."""
    if kind == _RAW_F64:
        return data.view(np.float64).copy()
    if kind == _CODEC:
        return wire.decode(memoryview(data))
    return pickle.loads(data.tobytes())


@lru_cache(maxsize=4096)
def _record_span(nbytes: int) -> int:
    """Aligned byte span of one stamped record (stamp + payload, 8-rounded)."""
    return (_SEQ.size + nbytes + 7) & ~7


class _RingWriter:
    """Sequential writer over one shared-memory ring.

    Record spans are 8-byte multiples so offsets stay aligned; a record
    that would cross the end wraps to ``base`` (the first byte past the
    flag-word header).  ``begin_round`` resets the per-batch budget: the
    records of one batch must all be resident simultaneously (the reader
    only drains at the doorbell), so placement refuses — returning
    ``None``, which makes the record travel inline — once a batch has
    consumed the capacity.
    """

    def __init__(self, buf: memoryview, capacity: int, base: int = _HEADER_BYTES) -> None:
        self.buf = buf
        self.base = base
        self.capacity = capacity - base
        self._off = base
        self._used = 0

    def begin_round(self) -> None:
        self._used = 0

    def write(self, seq: int, data: np.ndarray) -> tuple[int, int] | None:
        """Stamp + blit one record; returns (offset, nbytes) or None if full."""
        total = _record_span(len(data))
        off = self._off
        waste = 0
        if off + total > self.base + self.capacity:
            waste = self.base + self.capacity - off
            off = self.base
        if total > self.capacity or self._used + waste + total > self.capacity:
            return None
        _SEQ.pack_into(self.buf, off, seq)
        view = np.frombuffer(self.buf, dtype=np.uint8, count=len(data), offset=off + _SEQ.size)
        view[:] = data
        del view
        self._off = off + total
        self._used += waste + total
        return off, len(data)


def _write_encoded(writer: _RingWriter, seq: int, kind: int, data: np.ndarray) -> _Entry:
    placed = writer.write(seq, data)
    if placed is None:
        return (kind, -1, len(data), data.tobytes())
    off, nbytes = placed
    return (kind, off, nbytes, None)


def _write_record(writer: _RingWriter, seq: int, payload: Any) -> _Entry:
    kind, data = _encode(payload)
    return _write_encoded(writer, seq, kind, data)


def _read_record(buf: memoryview, seq: int, entry: _Entry) -> Any:
    kind, off, nbytes, inline = entry
    if off < 0:
        if inline is None:
            raise BackendError("ring entry has neither an offset nor inline bytes")
        return _decode(kind, np.frombuffer(inline, dtype=np.uint8))
    stamp = _SEQ.unpack_from(buf, off)[0]
    if stamp != seq:
        raise BackendError(
            f"ring record at offset {off} is stamped seq {stamp}, expected {seq}"
        )
    data = np.frombuffer(buf, dtype=np.uint8, count=nbytes, offset=off + _SEQ.size)
    payload = _decode(kind, data)
    del data
    return payload


def _record_bytes(buf: memoryview, entry: _Entry) -> np.ndarray:
    """Raw payload bytes of a staged/echoed entry (ring or inline)."""
    kind, off, nbytes, inline = entry
    if off < 0:
        return np.frombuffer(inline if inline is not None else b"", dtype=np.uint8)
    return np.frombuffer(buf, dtype=np.uint8, count=nbytes, offset=off + _SEQ.size)


def _close_segment(shm: shared_memory.SharedMemory, unlink: bool) -> None:
    """Best-effort close (+ optional unlink) tolerating exported views.

    Note on the resource tracker: worker processes inherit the parent's
    tracker (fork and spawn both ship its fd), and registrations live in a
    set — so a worker attaching a segment is a no-op re-registration and
    the parent's unlink below performs the single unregister.  Workers must
    never unregister themselves or the parent's unlink would KeyError in
    the tracker process.
    """
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    try:
        shm.close()
    except BufferError:
        # Long-lived pool views (engine buckets) may still reference the
        # mapping; the segment is already unlinked, so the memory goes away
        # with the last view / at process exit.  Disarm the instance so its
        # __del__ does not retry the close and print an ignored exception.
        shm.close = lambda: None  # type: ignore[method-assign]


def _worker_main(
    rank: int,
    in_name: str,
    out_name: str,
    capacity: int,
    conn: Connection,
    sanitize: bool = False,
) -> None:
    """Entry point of one rank server process.

    One wait loop serves both doorbell channels: the in-ring flag word
    (batched programs) is spun on briefly, then the worker sleeps in short
    ``conn.poll`` slices so pipe doorbells (``round``/``task``/``pool``/
    ``close`` and the oversize ``batch`` fallback) wake it too.

    With ``sanitize`` on, the worker records a :class:`ProtocolEvent` for
    every protocol action and piggybacks the buffered events on each ack —
    inside the codec-encoded reply record for ring acks, attached to the
    pipe message otherwise — so the parent's sanitizer sees both sides
    without any extra channel.
    """
    in_shm = shared_memory.SharedMemory(name=in_name)
    out_shm = shared_memory.SharedMemory(name=out_name)
    in_buf = in_shm.buf
    out_buf = out_shm.buf
    writer = _RingWriter(out_buf, capacity)
    # Every rank's pool maps into every worker (keyed by owner rank) so
    # PoolRef descriptors resolve locally; ``pools[rank]`` is this worker's
    # own pool, the one rank tasks receive.
    pool_shms: dict[int, shared_memory.SharedMemory] = {}
    pools: dict[int, np.ndarray] = {}
    expected = 0
    me = f"worker:{rank}"
    events: list[ProtocolEvent] = []

    def resolve_ref(ref: PoolRef) -> np.ndarray:
        """PoolRef → local view of the mapped segment (or a hard fault)."""
        pool = pools.get(ref.rank)
        if pool is None or ref.offset < 0 or ref.offset + ref.length > pool.shape[0]:
            raise BackendError(
                f"worker {rank}: pool ref (rank {ref.rank}, offset {ref.offset}, "
                f"length {ref.length}) targets an unmapped pool segment"
            )
        return pool[ref.offset : ref.offset + ref.length]

    def run_reduce(spec: tuple) -> tuple[int, int]:
        """Execute one owned chunk of an in-place pool reduction.

        ``spec = (lo, hi, refs, order, add_zero)``: fold the members'
        ``[lo, hi)`` slices in exactly ``order``, then write the result
        into every member's slice — including peers' pool segments, which
        is the broadcast phase.  Chunk ranges are disjoint across workers,
        so concurrent chunk executors never touch the same elements.
        """
        lo, hi, refs, order, add_zero = spec
        views = [resolve_ref(ref) for ref in refs]
        acc = views[order[0]][lo:hi].copy()
        for member in order[1:]:
            acc += views[member][lo:hi]
        if add_zero:
            acc += 0.0
        for view in views:
            view[lo:hi] = acc
        return (int(lo), int(hi))

    def emit(kind: str, seq: int = -1, op: str = "", detail: tuple = ()) -> None:
        if sanitize:
            events.append(
                ProtocolEvent(proc=me, kind=kind, rank=rank, seq=seq, op=op, detail=detail)
            )

    def send(*payload: Any) -> None:
        """Ship one ack, with the buffered event batch attached in sanitize mode."""
        if sanitize:
            conn.send((*payload, tuple(events)))
            events.clear()
        else:
            conn.send(payload)

    def set_ack(seq: int, status: int) -> None:
        _U64.pack_into(out_buf, _ACK_FLAG_OFF, ((seq + 1) << 8) | status)

    def run_program(seq: int, program: Sequence[tuple[str, Any]], via_pipe: bool) -> None:
        """Execute one batched program and ack it (ring flag or pipe)."""
        writer.begin_round()
        reply_items: list[Any] = []
        n_read = 0
        for op, data in program:
            if op == "round":
                payloads = [_read_record(in_buf, seq, tuple(e)) for e in data]
                for payload in payloads:
                    if type(payload) is PoolRef:
                        resolve_ref(payload)  # descriptor must be resolvable here
                n_read += len(payloads)
                reply_items.append(tuple(_write_record(writer, seq, p) for p in payloads))
            elif op == "task":
                fn, args = _read_record(in_buf, seq, tuple(data))
                n_read += 1
                reply_items.append(_write_record(writer, seq, fn(pools.get(rank), *args)))
            elif op == "reduce":
                spec = _read_record(in_buf, seq, tuple(data))
                n_read += 1
                reply_items.append(_write_record(writer, seq, run_reduce(spec)))
            else:
                raise BackendError(f"worker {rank}: unknown program op {op!r}")
        emit("ring_read", seq=seq, detail=(n_read,))
        emit("ring_write", seq=seq, detail=(len(reply_items),))
        emit("ack_send", seq=seq, op="batch")
        if not via_pipe:
            batch_events = tuple(
                (e.kind, e.seq, e.op, e.detail) for e in events
            ) if sanitize else None
            try:
                raw = wire.encode((tuple(reply_items), batch_events))
            except wire.WireError:  # pragma: no cover - reply shapes are closed
                raw = None
            if raw is not None:
                placed = writer.write(seq, np.frombuffer(raw, dtype=np.uint8))
                if placed is not None:
                    _U64.pack_into(out_buf, _REPLY_OFF_OFF, placed[0])
                    _U64.pack_into(out_buf, _REPLY_LEN_OFF, placed[1])
                    set_ack(seq, _ACK_RING)
                    events.clear()
                    return
        # Reply too large for the ring (or the program itself arrived by
        # pipe): ack over the pipe, then publish the flag so both waiters
        # converge.
        send("ok", seq, tuple(reply_items))
        set_ack(seq, _ACK_PIPE)

    try:
        while True:
            # Wait for either doorbell channel: flag word first (hot path),
            # then the pipe with a short escalating backoff.
            request: tuple | None = None
            flag_seq = -1
            want = expected + 1
            spins = 0
            while True:
                flag = _U64.unpack_from(in_buf, _DOOR_FLAG_OFF)[0]
                if flag >= want:
                    flag_seq = flag - 1
                    break
                try:
                    ready = conn.poll(0.0 if spins < _SPIN_LIMIT else _POLL_BACKOFF_S)
                except OSError:
                    request = ("_eof",)
                    break
                if ready:
                    try:
                        request = conn.recv()
                    except EOFError:
                        request = ("_eof",)
                    break
                spins += 1
            if request is not None and request[0] == "_eof":
                break
            if request is None:
                # Flag-word doorbell: the program record's offset/length are
                # published in the header; its seq stamp is the secondary
                # check that the data was visible before the flag.
                seq = flag_seq
                emit("recv", seq=seq, op="batch")
                try:
                    if seq != expected:
                        raise BackendError(
                            f"worker {rank}: expected doorbell seq {expected}, "
                            f"got flag seq {seq}"
                        )
                    expected = seq + 1
                    prog_off = _U64.unpack_from(in_buf, _PROG_OFF_OFF)[0]
                    prog_len = _U64.unpack_from(in_buf, _PROG_LEN_OFF)[0]
                    stamp = _SEQ.unpack_from(in_buf, prog_off)[0]
                    if stamp != seq:
                        raise BackendError(
                            f"worker {rank}: program record stamped seq {stamp}, "
                            f"expected {seq}"
                        )
                    program = wire.decode(
                        in_buf[prog_off + _SEQ.size : prog_off + _SEQ.size + prog_len]
                    )
                    run_program(seq, program, via_pipe=False)
                except BaseException:
                    send("err", seq, traceback.format_exc())
                    set_ack(seq, _ACK_ERR)
                continue
            op, seq = request[0], request[1]
            emit("recv", seq=seq, op=op)
            try:
                if seq != expected:
                    raise BackendError(
                        f"worker {rank}: expected doorbell seq {expected}, got {seq}"
                    )
                expected += 1
                if op == "batch":
                    # Oversize fallback: the program (entries included)
                    # travelled over the pipe; payload records may still
                    # live in the ring.
                    run_program(seq, request[2], via_pipe=True)
                elif op == "round":
                    payloads = [_read_record(in_buf, seq, e) for e in request[2]]
                    for payload in payloads:
                        if type(payload) is PoolRef:
                            resolve_ref(payload)
                    emit("ring_read", seq=seq, detail=(len(payloads),))
                    writer.begin_round()
                    entries = [_write_record(writer, seq, p) for p in payloads]
                    emit("ring_write", seq=seq, detail=(len(entries),))
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, entries)
                elif op == "task":
                    fn, args = _read_record(in_buf, seq, request[2])
                    emit("ring_read", seq=seq, detail=(1,))
                    result = fn(pools.get(rank), *args)
                    writer.begin_round()
                    entry = _write_record(writer, seq, result)
                    emit("ring_write", seq=seq, detail=(1,))
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, entry)
                elif op == "reduce":
                    spec = _read_record(in_buf, seq, request[2])
                    emit("ring_read", seq=seq, detail=(1,))
                    result = run_reduce(spec)
                    writer.begin_round()
                    entry = _write_record(writer, seq, result)
                    emit("ring_write", seq=seq, detail=(1,))
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, entry)
                elif op == "pool":
                    owner = request[4]
                    new = shared_memory.SharedMemory(name=request[2])
                    mapped = np.frombuffer(new.buf, dtype=np.float64, count=request[3])
                    previous = pool_shms.get(owner)
                    pools[owner] = mapped
                    pool_shms[owner] = new
                    if previous is not None:
                        _close_segment(previous, unlink=False)
                    emit("pool_map", seq=seq, detail=(owner,))
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, None)
                elif op == "close":
                    emit("exit")
                    emit("ack_send", seq=seq, op=op)
                    send("ok", seq, None)
                    break
                else:
                    raise BackendError(f"worker {rank}: unknown doorbell {op!r}")
            except BaseException:
                send("err", seq, traceback.format_exc())
    finally:
        pools.clear()
        for pool_shm in pool_shms.values():
            _close_segment(pool_shm, unlink=False)
        pool_shms.clear()
        del writer  # releases the ring view so the segment can close
        del in_buf, out_buf
        _close_segment(in_shm, unlink=False)
        _close_segment(out_shm, unlink=False)
        conn.close()


@dataclass
class _PendingBatch:
    """One un-flushed program staged into a worker's inbound ring."""

    seq: int
    program: list[tuple[str, Any]] = field(default_factory=list)
    placed_bytes: int = 0
    inline_count: int = 0


@dataclass
class _WorkerHandle:
    """Parent-side view of one rank server."""

    rank: int
    process: BaseProcess
    conn: Connection
    in_shm: shared_memory.SharedMemory
    out_shm: shared_memory.SharedMemory
    writer: _RingWriter = field(init=False)
    seq: int = 0

    def __post_init__(self) -> None:
        self.writer = _RingWriter(self.in_shm.buf, self.in_shm.size)

    def next_seq(self) -> int:
        seq = self.seq
        self.seq += 1
        return seq


class SharedMemoryBackend(TransportBackend):
    """N rank-server processes over shared-memory rings (see module doc)."""

    name = "shm"
    prefers_fast_path = True
    supports_pool_ref = True

    def __init__(
        self,
        world_size: int,
        ring_bytes: int = DEFAULT_RING_BYTES,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        start_method: str | None = None,
        sanitize: bool | None = None,
        batch_rounds: bool = True,
    ) -> None:
        super().__init__()
        if sanitize is not None:
            self._protocol_sanitize = bool(sanitize)
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.ring_bytes = int(ring_bytes)
        self.timeout_s = float(timeout_s)
        self.batch_rounds = bool(batch_rounds)
        if start_method is None:
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._workers: dict[int, _WorkerHandle] = {}
        self._batches: dict[int, _PendingBatch] = {}
        self._pools: dict[int, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        self._started = False
        self._closed = False
        self._atexit_hook: Callable[[], None] | None = None
        self.shm_stats = {
            "rounds": 0,
            "payload_bytes": 0,
            "tasks": 0,
            "inline_fallbacks": 0,
            "batches": 0,
            "flag_doorbells": 0,
            "pipe_batch_fallbacks": 0,
            "pool_ref_payloads": 0,
            "reduces": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def validate_world(self, world_size: int) -> None:
        if world_size != self.world_size:
            raise ValueError(
                f"shm backend serves {self.world_size} ranks, transport has {world_size}"
            )

    def set_protocol_sanitize(self, enabled: bool) -> None:
        """Sanitize mode must be fixed before the workers spawn."""
        if self._started and bool(enabled) != self._protocol_sanitize:
            raise BackendError(
                "protocol sanitize mode must be set before the shm workers start"
            )
        self._protocol_sanitize = bool(enabled)

    def ensure_started(self) -> None:
        """Spawn the rank servers (lazy; a no-op once running)."""
        if self._started:
            return
        if self._closed:
            raise BackendError("shm backend already closed")
        self.emit_protocol_event("config", detail=(self.world_size, self.ring_bytes))
        try:
            for rank in range(self.world_size):
                in_shm = shared_memory.SharedMemory(create=True, size=self.ring_bytes)
                out_shm = shared_memory.SharedMemory(create=True, size=self.ring_bytes)
                parent_conn, child_conn = self._ctx.Pipe()
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        in_shm.name,
                        out_shm.name,
                        self.ring_bytes,
                        child_conn,
                        self._protocol_sanitize,
                    ),
                    name=f"repro-shm-w{rank}",
                    daemon=True,
                )
                # Register the handle before starting so a failed spawn is
                # still unwound by the except-branch close().
                self._workers[rank] = _WorkerHandle(rank, process, parent_conn, in_shm, out_shm)
                process.start()
                child_conn.close()
                self.emit_protocol_event("spawn", rank=rank)
            self._started = True
        except BaseException:
            self._teardown(graceful=False)
            raise
        hook = self.close
        atexit.register(hook)
        self._atexit_hook = hook
        # Re-attach pools allocated before startup.
        for rank, (pool_shm, pool) in self._pools.items():
            self._map_pool(rank, pool_shm, pool.shape[0])

    def close(self) -> None:
        """Shut down workers and release every segment.  Idempotent."""
        if self._closed:
            return
        self._teardown(graceful=True)
        self.emit_protocol_event("closed")
        self._closed = True
        if self._atexit_hook is not None:
            atexit.unregister(self._atexit_hook)
            self._atexit_hook = None

    def _teardown(self, graceful: bool) -> None:
        if graceful:
            # Drain staged batches so close doorbells never overtake a
            # flag doorbell; failures must not block teardown.
            for rank in list(self._batches):
                try:
                    self._flush_rank(rank, closing=True)
                except Exception:
                    pass
        self._batches.clear()
        for handle in self._workers.values():
            if graceful and handle.process.is_alive():
                try:
                    seq = handle.next_seq()
                    handle.conn.send(("close", seq))
                except (BrokenPipeError, OSError):
                    pass
                else:
                    self.emit_protocol_event("post", rank=handle.rank, seq=seq, op="close")
        if self._protocol_sanitize and graceful:
            # The close doorbell is normally fire-and-forget (join is the
            # close barrier), but the worker's final event batch — including
            # its exit event — rides on the close ack; drain it so the
            # sanitizer can prove unlink happened after every exit.
            for handle in self._workers.values():
                try:
                    if handle.process.is_alive() or handle.conn.poll(0):
                        if handle.conn.poll(2.0):
                            message = handle.conn.recv()
                            if len(message) > 3:
                                self.protocol_events.extend(message[3])
                            self.emit_protocol_event(
                                "ack_recv", rank=handle.rank, seq=message[1]
                            )
                except (EOFError, OSError):
                    pass
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            _close_segment(handle.in_shm, unlink=True)
            _close_segment(handle.out_shm, unlink=True)
            self.emit_protocol_event("unlink", rank=handle.rank)
        self._workers.clear()
        self._started = False
        for rank, (pool_shm, _pool) in self._pools.items():
            _close_segment(pool_shm, unlink=True)
            self.emit_protocol_event("unlink", rank=rank)
        self._pools.clear()
        self._pool_arrays.clear()

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _check_alive(self, handle: _WorkerHandle) -> None:
        if not handle.process.is_alive():
            code = handle.process.exitcode
            self.close()
            raise BackendError(
                f"shm worker {handle.rank} died (exit code {code}); backend closed"
            )

    def _await_ack(self, handle: _WorkerHandle, seq: int) -> Any:
        deadline = time.monotonic() + self.timeout_s
        while not handle.conn.poll(0.05):
            if not handle.process.is_alive():
                code = handle.process.exitcode
                self.close()
                raise BackendError(
                    f"shm worker {handle.rank} died (exit code {code}); backend closed"
                )
            if time.monotonic() > deadline:
                self.close()
                raise BackendError(
                    f"shm worker {handle.rank} did not ack seq {seq} within "
                    f"{self.timeout_s:.0f}s; backend closed"
                )
        message = handle.conn.recv()
        op, ack_seq, payload = message[0], message[1], message[2]
        if self._protocol_sanitize and len(message) > 3:
            self.protocol_events.extend(message[3])
        self.emit_protocol_event("ack_recv", rank=handle.rank, seq=ack_seq)
        if op == "err":
            raise BackendError(f"shm worker {handle.rank} failed:\n{payload}")
        if ack_seq != seq:
            self.close()
            raise BackendError(
                f"shm worker {handle.rank} acked seq {ack_seq}, expected {seq}; "
                "backend closed"
            )
        return payload

    def _post(self, handle: _WorkerHandle, op: str, *payload: Any) -> int:
        # Control-plane pipe ops must never overtake a staged batch: drain
        # the rank's pending program first so pipe and flag doorbells stay
        # strictly ordered per worker.
        self._flush_rank(handle.rank)
        seq = handle.next_seq()
        try:
            handle.conn.send((op, seq, *payload))
        except (BrokenPipeError, OSError) as exc:
            self.close()
            raise BackendError(
                f"shm worker {handle.rank} pipe is gone ({exc}); backend closed"
            ) from exc
        self.emit_protocol_event("post", rank=handle.rank, seq=seq, op=op)
        return seq

    # ------------------------------------------------------------------
    # Batched fast path
    # ------------------------------------------------------------------
    def _batch(self, handle: _WorkerHandle) -> _PendingBatch:
        """The rank's open batch, flushing first when the program is full."""
        pending = self._batches.get(handle.rank)
        if pending is not None and len(pending.program) >= _MAX_BATCH_ITEMS:
            self._flush_rank(handle.rank)
            pending = None
        if pending is None:
            pending = _PendingBatch(seq=handle.next_seq())
            handle.writer.begin_round()
            self._batches[handle.rank] = pending
        return pending

    def _try_stage(
        self,
        handle: _WorkerHandle,
        pending: _PendingBatch,
        encoded: Sequence[tuple[int, np.ndarray]],
        force_inline: bool,
    ) -> list[_Entry] | None:
        """Place one round's records; None = batch full, flush and retry."""
        entries: list[_Entry] = []
        for kind, data in encoded:
            placed = handle.writer.write(pending.seq, data)
            if placed is None:
                if not force_inline and (pending.program or entries):
                    return None
                entries.append((kind, -1, len(data), data.tobytes()))
            else:
                entries.append((kind, placed[0], placed[1], None))
        return entries

    def _stage_item(
        self,
        handle: _WorkerHandle,
        op: str,
        encoded: Sequence[tuple[int, np.ndarray]],
    ) -> tuple[_PendingBatch, list[_Entry]]:
        """Append one round/task item to the rank's open batch.

        A round whose records no longer fit the open batch flushes it and
        restages into a fresh one; a record larger than the ring itself
        travels inline in the program (the per-record fallback).
        """
        pending = self._batch(handle)
        entries = self._try_stage(handle, pending, encoded, force_inline=False)
        if entries is None:
            self._flush_rank(handle.rank)
            pending = self._batch(handle)
            entries = self._try_stage(handle, pending, encoded, force_inline=True)
            assert entries is not None
        pending.program.append((op, entries if op == "round" else entries[0]))
        for entry in entries:
            if entry[1] < 0:
                pending.inline_count += 1
            else:
                pending.placed_bytes += entry[2]
            # payload_bytes / inline_fallbacks count *round* traffic only, in
            # both modes: the per-round pipe path never counted task records,
            # so the batched path must not either or describe() diverges
            # between modes for the same workload.
            if op == "round":
                if entry[1] < 0:
                    self.shm_stats["inline_fallbacks"] += 1
                self.shm_stats["payload_bytes"] += entry[2]
        self.emit_protocol_event(
            "stage",
            rank=handle.rank,
            seq=pending.seq,
            op=op,
            detail=(
                len(entries),
                sum(e[2] for e in entries if e[1] >= 0),
                sum(1 for e in entries if e[1] < 0),
            ),
        )
        return pending, entries

    def flush(self) -> None:
        """Drain every staged batch (the iteration boundary).

        Posts every rank's program first and ack-barriers second, so the
        per-worker executions overlap on real cores — what turns staged
        ``reduce`` items into a genuinely parallel collective instead of a
        sequence of post-and-wait round trips.
        """
        self._flush_ranks(list(self._batches))

    def _flush_ranks(
        self, ranks: Sequence[int], closing: bool = False
    ) -> dict[int, list[Any]]:
        """Post all the named ranks' programs, then await/verify each ack."""
        posted: list[tuple[_WorkerHandle, _PendingBatch]] = []
        for rank in ranks:
            post = self._post_batch(rank, closing)
            if post is not None:
                posted.append(post)
        results: dict[int, list[Any]] = {}
        for handle, pending in posted:
            results[handle.rank] = self._complete_batch(handle, pending, closing)
        return results

    def _flush_rank(self, rank: int, closing: bool = False) -> list[Any]:
        """Ship one rank's program and wait for it (post + complete fused)."""
        return self._flush_ranks((rank,), closing).get(rank, [])

    def _post_batch(
        self, rank: int, closing: bool = False
    ) -> tuple[_WorkerHandle, _PendingBatch] | None:
        """Encode and doorbell rank's staged program without awaiting it."""
        pending = self._batches.pop(rank, None)
        if pending is None or not pending.program:
            return None
        handle = self._workers[rank]
        seq = pending.seq
        program_obj = tuple(
            (op, tuple(tuple(e) for e in data) if op == "round" else tuple(data))
            for op, data in pending.program
        )
        raw = np.frombuffer(wire.encode(program_obj), dtype=np.uint8)
        placed = handle.writer.write(seq, raw)
        if placed is not None:
            in_buf = handle.in_shm.buf
            _U64.pack_into(in_buf, _PROG_OFF_OFF, placed[0])
            _U64.pack_into(in_buf, _PROG_LEN_OFF, placed[1])
            # Publish the data, then the flag: CPython executes the stores
            # in order and x86-TSO keeps them ordered for the worker; the
            # program record's seq stamp is the secondary check.
            _U64.pack_into(in_buf, _DOOR_FLAG_OFF, seq + 1)
            self.shm_stats["flag_doorbells"] += 1
        else:
            try:
                handle.conn.send(("batch", seq, program_obj))
            except (BrokenPipeError, OSError) as exc:
                if closing:
                    raise BackendError(f"shm worker {rank} pipe is gone ({exc})") from exc
                self.close()
                raise BackendError(
                    f"shm worker {rank} pipe is gone ({exc}); backend closed"
                ) from exc
            self.shm_stats["pipe_batch_fallbacks"] += 1
        self.shm_stats["batches"] += 1
        self.emit_protocol_event(
            "post",
            rank=rank,
            seq=seq,
            op="batch",
            detail=(len(pending.program), pending.placed_bytes, pending.inline_count),
        )
        return handle, pending

    def _complete_batch(
        self, handle: _WorkerHandle, pending: _PendingBatch, closing: bool = False
    ) -> list[Any]:
        """Await one posted program's ack and verify its echoes.

        Returns one result slot per program item: ``None`` for rounds
        (their payloads were already delivered at stage time), the decoded
        result for tasks and reduces.
        """
        rank = handle.rank
        seq = pending.seq
        reply_items = self._await_batch_ack(handle, seq, closing)
        if len(reply_items) != len(pending.program):
            message = (
                f"shm worker {rank} executed {len(reply_items)} program item(s) "
                f"of {len(pending.program)}"
            )
            if closing:
                raise BackendError(message)
            self.close()
            raise BackendError(message + "; backend closed")
        results: list[Any] = []
        out_buf = handle.out_shm.buf
        for (op, data), reply in zip(pending.program, reply_items):
            if op == "round":
                for staged, echo in zip(data, reply):
                    self._verify_echo(handle, seq, staged, tuple(echo), closing)
                results.append(None)
            else:
                results.append(_read_record(out_buf, seq, tuple(reply)))
        del out_buf
        return results

    def _verify_echo(
        self,
        handle: _WorkerHandle,
        seq: int,
        staged: _Entry,
        echo: _Entry,
        closing: bool,
    ) -> None:
        """Byte-compare a worker echo against the staged original.

        Pickled records are exempt: re-pickling in the worker is value- but
        not guaranteed byte-stable.  Raw and codec encodings are canonical,
        so any divergence is a real transport fault.
        """
        if staged[0] == _PICKLED:
            return
        if echo[1] >= 0:
            stamp = _SEQ.unpack_from(handle.out_shm.buf, echo[1])[0]
            if stamp != seq:
                self._echo_fail(handle, f"echo record stamped seq {stamp}", closing)
        if echo[0] != staged[0] or echo[2] != staged[2] or not np.array_equal(
            _record_bytes(handle.in_shm.buf, staged),
            _record_bytes(handle.out_shm.buf, echo),
        ):
            self._echo_fail(handle, "echoed bytes diverge from the staged record", closing)

    def _echo_fail(self, handle: _WorkerHandle, reason: str, closing: bool) -> None:
        message = f"shm worker {handle.rank} echo verification failed: {reason}"
        if closing:
            raise BackendError(message)
        self.close()
        raise BackendError(message + "; backend closed")

    def _await_batch_ack(
        self, handle: _WorkerHandle, seq: int, closing: bool
    ) -> tuple:
        """Wait on the ack flag word (or a pipe ack/err that beats it)."""

        def fail(reason: str) -> None:
            if closing:
                raise BackendError(f"shm worker {handle.rank} {reason}")
            self.close()
            raise BackendError(f"shm worker {handle.rank} {reason}; backend closed")

        out_buf = handle.out_shm.buf
        deadline = time.monotonic() + self.timeout_s
        want = seq + 1
        spins = 0
        status = 0
        message: tuple | None = None
        while True:
            flag = _U64.unpack_from(out_buf, _ACK_FLAG_OFF)[0]
            acked = flag >> 8
            if acked == want:
                status = flag & 0xFF
                break
            if acked > want:
                fail(f"acked batch seq {acked - 1}, expected {seq}")
            try:
                ready = handle.conn.poll(0.0 if spins < _SPIN_LIMIT else _POLL_BACKOFF_S)
            except OSError:
                ready = False
            if ready:
                try:
                    message = handle.conn.recv()
                except EOFError:
                    fail("pipe is gone mid-batch")
                break
            spins += 1
            if spins % 128 == 0:
                if not handle.process.is_alive():
                    fail(f"died (exit code {handle.process.exitcode})")
                if time.monotonic() > deadline:
                    fail(f"did not ack batch seq {seq} within {self.timeout_s:.0f}s")
        if message is None and status in (_ACK_PIPE, _ACK_ERR):
            # The flag landed first but the payload travels by pipe.
            if not handle.conn.poll(self.timeout_s):
                fail(f"flagged a pipe ack for seq {seq} but sent nothing")
            message = handle.conn.recv()
        if message is not None:
            op, ack_seq, payload = message[0], message[1], message[2]
            if self._protocol_sanitize and len(message) > 3:
                self.protocol_events.extend(message[3])
            self.emit_protocol_event("ack_recv", rank=handle.rank, seq=ack_seq)
            if op == "err":
                raise BackendError(f"shm worker {handle.rank} failed:\n{payload}")
            if ack_seq != seq:
                fail(f"acked seq {ack_seq}, expected {seq}")
            return payload
        # Ring ack: the reply record carries the echo entries (and, in
        # sanitize mode, the worker's buffered events).
        reply_off = _U64.unpack_from(out_buf, _REPLY_OFF_OFF)[0]
        reply_len = _U64.unpack_from(out_buf, _REPLY_LEN_OFF)[0]
        stamp = _SEQ.unpack_from(out_buf, reply_off)[0]
        if stamp != seq:
            fail(f"reply record stamped seq {stamp}, expected {seq}")
        reply_items, batch_events = wire.decode(
            out_buf[reply_off + _SEQ.size : reply_off + _SEQ.size + reply_len]
        )
        if self._protocol_sanitize and batch_events:
            me = f"worker:{handle.rank}"
            self.protocol_events.extend(
                ProtocolEvent(
                    proc=me, kind=kind, rank=handle.rank, seq=ev_seq, op=op, detail=detail
                )
                for kind, ev_seq, op, detail in batch_events
            )
        self.emit_protocol_event("ack_recv", rank=handle.rank, seq=seq)
        return reply_items

    # ------------------------------------------------------------------
    # Backend contract
    # ------------------------------------------------------------------
    def route_round(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        self.ensure_started()
        if self.batch_rounds:
            return self._route_round_batched(messages)
        return self._route_round_pipe(messages)

    def _encode_payload(self, payload: Any) -> tuple[int, np.ndarray]:
        """Like :func:`_encode`, but pool-resident arrays ship as PoolRefs.

        A dense f64 view into a mapped pool segment stages as its 25-byte
        descriptor instead of its data — the receiving worker resolves the
        descriptor against its own mapping of the same segment, so zero
        payload bytes cross the ring.  Everything else keeps the codec
        path.
        """
        ref = self.pool_ref(payload)
        if ref is None:
            return _encode(payload)
        self.shm_stats["pool_ref_payloads"] += 1
        return _CODEC, np.frombuffer(wire.encode(ref), dtype=np.uint8)

    def _route_round_batched(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        """Stage the round into per-rank programs; deliver immediately.

        Decode∘encode is the identity and the worker's re-encode is
        deterministic, so the staged bytes already determine the delivered
        payloads; the cross-process echo is verified byte-wise when the
        batch flushes.  Delivery therefore hands the *sender's* message
        objects through, exactly like the in-process oracle — no
        decode-what-we-just-encoded copy per dense bucket.
        """
        by_dst: dict[int, list[Message]] = {}
        for message in messages:
            by_dst.setdefault(message.dst, []).append(message)
        for dst, batch in by_dst.items():
            handle = self._workers[dst]
            self._check_alive(handle)
            encoded = [self._encode_payload(message.payload) for message in batch]
            self._stage_item(handle, "round", encoded)
        self.shm_stats["rounds"] += 1
        return by_dst

    def _route_round_pipe(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        """The per-round pipe protocol (``batch_rounds=False`` fallback)."""
        from ..transport import Message as MessageCls

        by_dst: dict[int, list[Message]] = {}
        for message in messages:
            by_dst.setdefault(message.dst, []).append(message)

        # Phase 1: stage every destination's payloads and ring its doorbell.
        pending: list[tuple[_WorkerHandle, int, list[Message]]] = []
        for dst, batch in by_dst.items():
            handle = self._workers[dst]
            seq = handle.next_seq()
            handle.writer.begin_round()
            entries = []
            for message in batch:
                kind, data = self._encode_payload(message.payload)
                entry = _write_encoded(handle.writer, seq, kind, data)
                if entry[1] < 0:
                    self.shm_stats["inline_fallbacks"] += 1
                self.shm_stats["payload_bytes"] += entry[2]
                entries.append(entry)
            try:
                handle.conn.send(("round", seq, entries))
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise BackendError(
                    f"shm worker {dst} pipe is gone ({exc}); backend closed"
                ) from exc
            placed = sum(e[2] for e in entries if e[1] >= 0)
            inline = sum(1 for e in entries if e[1] < 0)
            self.emit_protocol_event(
                "post", rank=dst, seq=seq, op="round", detail=(len(entries), placed, inline)
            )
            pending.append((handle, seq, batch))
        self.shm_stats["rounds"] += 1

        # Phase 2: barrier — every participating worker must ack its round
        # seq and echo the payloads through its outbound ring.
        inbox: dict[int, list[Message]] = {}
        for handle, seq, batch in pending:
            out_entries = self._await_ack(handle, seq)
            if len(out_entries) != len(batch):
                self.close()
                raise BackendError(
                    f"shm worker {handle.rank} echoed {len(out_entries)} records "
                    f"for a {len(batch)}-message round; backend closed"
                )
            delivered = []
            for message, entry in zip(batch, out_entries):
                payload = _read_record(handle.out_shm.buf, seq, entry)
                if type(payload) is PoolRef:
                    # The echoed descriptor resolves to the same storage the
                    # sender's view aliases — the oracle's hand-off semantics.
                    payload = self._resolve_ref_view(payload)
                delivered.append(
                    MessageCls(
                        src=message.src,
                        dst=message.dst,
                        payload=payload,
                        nbytes=message.nbytes,
                        match_id=message.match_id,
                    )
                )
            inbox[handle.rank] = delivered
        return inbox

    def allocate_pool(self, rank: int, n_elements: int) -> np.ndarray:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of {self.world_size}")
        nbytes = max(8, int(n_elements) * 8)
        pool_shm = shared_memory.SharedMemory(create=True, size=nbytes)
        pool = np.frombuffer(pool_shm.buf, dtype=np.float64, count=n_elements)
        previous = self._pools.get(rank)
        self._pools[rank] = (pool_shm, pool)
        self._register_pool(rank, pool)
        if self._started:
            self._map_pool(rank, pool_shm, n_elements)
        if previous is not None:
            _close_segment(previous[0], unlink=True)
        return pool

    def _map_pool(self, owner: int, pool_shm: shared_memory.SharedMemory, n: int) -> None:
        """Map owner's pool segment into **every** worker.

        Cross-rank mapping is what lets any worker resolve any rank's
        PoolRef descriptors — the substrate of the in-place pool-ref
        collectives.  Pool allocation is cold-path (once per training run),
        so the per-worker post+ack round trips stay serial.
        """
        for handle in self._workers.values():
            seq = self._post(handle, "pool", pool_shm.name, n, owner)
            self._await_ack(handle, seq)

    def _resolve_ref_view(self, ref: PoolRef) -> np.ndarray:
        """Parent-side view of the pool region a descriptor names."""
        entry = self._pools.get(ref.rank)
        if entry is None or ref.offset < 0 or ref.offset + ref.length > entry[1].shape[0]:
            raise BackendError(
                f"pool ref (rank {ref.rank}, offset {ref.offset}, length "
                f"{ref.length}) targets an unmapped pool segment"
            )
        return entry[1][ref.offset : ref.offset + ref.length]

    def pool_ref_reduce(
        self,
        refs: Sequence[PoolRef],
        chunks: Sequence[PoolRefChunk],
        add_zero: bool,
    ) -> None:
        """In-place reduction executed by the workers, chunk-parallel.

        Chunk ``j`` ships to the worker owning ``refs[j]``'s pool as a
        ``reduce`` program item (batched mode) or a ``reduce`` pipe
        doorbell (per-round mode); every involved worker folds and
        broadcasts its owned chunk concurrently with its peers — disjoint
        element ranges, so no inter-worker barrier is needed.  The parent
        posts all the work before awaiting any ack, and each worker's
        ``(lo, hi)`` reply is checked against the chunk it was assigned.

        Any round still staged for an involved worker flushes as part of
        the same program, so program order keeps rounds and the reduction
        correctly sequenced per worker.
        """
        self.ensure_started()
        if len(chunks) != len(refs):
            raise ValueError(
                f"pool_ref_reduce got {len(chunks)} chunk(s) for {len(refs)} member(s)"
            )
        spec_refs = tuple(refs)
        self.shm_stats["reduces"] += len(chunks)
        if self.batch_rounds:
            slots: list[tuple[int, int, int, int]] = []
            for (lo, hi, order), ref in zip(chunks, refs):
                handle = self._workers[ref.rank]
                self._check_alive(handle)
                spec = (int(lo), int(hi), spec_refs, tuple(order), bool(add_zero))
                encoded = [_encode(spec)]
                pending, _entries = self._stage_item(handle, "reduce", encoded)
                slots.append((ref.rank, len(pending.program) - 1, lo, hi))
            results = self._flush_ranks(sorted({ref.rank for ref in refs}))
            for rank, slot, lo, hi in slots:
                reply = results[rank][slot]
                if reply != (lo, hi):
                    self.close()
                    raise BackendError(
                        f"shm worker {rank} reduced chunk {reply}, expected "
                        f"({lo}, {hi}); backend closed"
                    )
            return
        pending_acks: list[tuple[_WorkerHandle, int, int, int]] = []
        for (lo, hi, order), ref in zip(chunks, refs):
            handle = self._workers[ref.rank]
            self._check_alive(handle)
            seq = handle.next_seq()
            handle.writer.begin_round()
            spec = (int(lo), int(hi), spec_refs, tuple(order), bool(add_zero))
            entry = _write_record(handle.writer, seq, spec)
            try:
                handle.conn.send(("reduce", seq, entry))
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise BackendError(
                    f"shm worker {ref.rank} pipe is gone ({exc}); backend closed"
                ) from exc
            self.emit_protocol_event(
                "post",
                rank=ref.rank,
                seq=seq,
                op="reduce",
                detail=(1, entry[2], int(entry[1] < 0)),
            )
            pending_acks.append((handle, seq, lo, hi))
        for handle, seq, lo, hi in pending_acks:
            entry = self._await_ack(handle, seq)
            reply = _read_record(handle.out_shm.buf, seq, entry)
            if reply != (lo, hi):
                self.close()
                raise BackendError(
                    f"shm worker {handle.rank} reduced chunk {reply}, expected "
                    f"({lo}, {hi}); backend closed"
                )

    def run_rank_tasks(
        self,
        fn: Callable[..., Any],
        args_by_rank: Mapping[int, tuple],
    ) -> dict[int, Any]:
        self.ensure_started()
        ranks = sorted(args_by_rank)
        if self.batch_rounds:
            # Tasks join the rank's open program (so an iteration's rounds
            # and its per-rank compute ship as one doorbell) and force a
            # flush: the caller needs the results synchronously.
            slots: dict[int, int] = {}
            for rank in ranks:
                handle = self._workers[rank]
                self._check_alive(handle)
                encoded = [_encode((fn, tuple(args_by_rank[rank])))]
                pending, _entries = self._stage_item(handle, "task", encoded)
                slots[rank] = len(pending.program) - 1
            self.shm_stats["tasks"] += len(ranks)
            # Post every rank's program before awaiting any ack so the
            # tasks genuinely overlap across worker processes.
            results = self._flush_ranks(ranks)
            return {rank: results[rank][slots[rank]] for rank in ranks}
        pending_acks: list[tuple[_WorkerHandle, int]] = []
        for rank in ranks:
            handle = self._workers[rank]
            seq = handle.next_seq()
            handle.writer.begin_round()
            entry = _write_record(handle.writer, seq, (fn, tuple(args_by_rank[rank])))
            try:
                handle.conn.send(("task", seq, entry))
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise BackendError(
                    f"shm worker {rank} pipe is gone ({exc}); backend closed"
                ) from exc
            self.emit_protocol_event(
                "post", rank=rank, seq=seq, op="task", detail=(1, entry[2], int(entry[1] < 0))
            )
            pending_acks.append((handle, seq))
        self.shm_stats["tasks"] += len(ranks)
        results: dict[int, Any] = {}
        for handle, seq in pending_acks:
            entry = self._await_ack(handle, seq)
            results[handle.rank] = _read_record(handle.out_shm.buf, seq, entry)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        info = super().describe()
        info.update(
            world_size=self.world_size,
            started=self._started,
            start_method=self.start_method,
            ring_bytes=self.ring_bytes,
            batch_rounds=self.batch_rounds,
            cpu_count=os.cpu_count(),
            **self.shm_stats,
        )
        return info

    def __del__(self) -> None:
        # Interpreter shutdown tears modules down in arbitrary order: a
        # backend dropped at exit must not touch multiprocessing machinery
        # (pipes, process joins, the resource tracker) once finalization has
        # begun — the atexit hook already ran close() while it was safe.
        try:
            if sys is None or sys.is_finalizing():
                return
            self.close()
        except Exception:
            pass
