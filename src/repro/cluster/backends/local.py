"""In-process backends: the loop-reference oracle and the batched fast path.

Both deliver payloads by handing the sender's objects straight to the
receiver (the original single-process execution model); they differ only in
which kernel flavor collectives pick by default.  ``LocalBackend`` is the
auditable oracle — per-rank Python loops, one payload per message — and
``BatchedBackend`` prefers the world-batched ``(world, n)`` kernels of
:mod:`repro.comm.batched` (bit-identical by the PR 5 contract, so the two
backends are interchangeable in every observable way except wall-clock).

Under the protocol sanitizer (``REPRO_PROTOCOL_SANITIZE=1``) the in-process
backends emit the same doorbell/ack event shape the shm backend does — the
"worker" half synthesized synchronously, since delivery and per-rank compute
happen in the parent's address space — so the conformance checker
(:mod:`repro.analysis.protocol.sanitizer`) replays every backend uniformly.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from .base import TransportBackend

if TYPE_CHECKING:
    from ..transport import Message


class LocalBackend(TransportBackend):
    """Single-process delivery, loop-reference kernels, serial rank tasks."""

    name = "local"
    prefers_fast_path = False

    def __init__(self) -> None:
        super().__init__()
        self._pools: dict[int, np.ndarray] = {}
        self._seq: dict[int, int] = {}

    def _next_seq(self, rank: int) -> int:
        seq = self._seq.get(rank, 0)
        self._seq[rank] = seq + 1
        return seq

    def _emit_exchange(self, op: str, rank: int, records: int) -> None:
        """One synchronous doorbell/ack event sextet for ``rank``."""
        seq = self._next_seq(rank)
        worker = f"worker:{rank}"
        self.emit_protocol_event("post", rank=rank, seq=seq, op=op, detail=(records, 0, records))
        self.emit_protocol_event("recv", rank=rank, seq=seq, op=op, proc=worker)
        if op in ("round", "task"):
            self.emit_protocol_event("ring_read", rank=rank, seq=seq, detail=(records,), proc=worker)
            self.emit_protocol_event("ring_write", rank=rank, seq=seq, detail=(records,), proc=worker)
        elif op == "pool":
            self.emit_protocol_event("pool_map", rank=rank, seq=seq, proc=worker)
        self.emit_protocol_event("ack_send", rank=rank, seq=seq, op=op, proc=worker)
        self.emit_protocol_event("ack_recv", rank=rank, seq=seq, op=op)

    def route_round(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        inbox: dict[int, list[Message]] = {}
        for message in messages:
            inbox.setdefault(message.dst, []).append(message)
        if self.sanitizing:
            for dst, batch in inbox.items():
                self._emit_exchange("round", dst, len(batch))
        return inbox

    def flush(self) -> None:
        """Delivery is synchronous in-process; there is nothing staged."""

    def allocate_pool(self, rank: int, n_elements: int) -> np.ndarray:
        pool = np.empty(n_elements, dtype=np.float64)
        self._pools[rank] = pool
        self._register_pool(rank, pool)
        if self.sanitizing:
            self._emit_exchange("pool", rank, 0)
        return pool

    def run_rank_tasks(
        self,
        fn: Callable[..., Any],
        args_by_rank: Mapping[int, tuple],
    ) -> dict[int, Any]:
        results = {}
        for rank in sorted(args_by_rank):
            if self.sanitizing:
                self._emit_exchange("task", rank, 1)
            results[rank] = fn(self._pools.get(rank), *args_by_rank[rank])
        return results

    def close(self) -> None:
        self._pools.clear()
        self._pool_arrays.clear()
        if self.sanitizing and self._seq:
            for rank in sorted(self._seq):
                seq = self._next_seq(rank)
                worker = f"worker:{rank}"
                self.emit_protocol_event("post", rank=rank, seq=seq, op="close")
                self.emit_protocol_event("recv", rank=rank, seq=seq, op="close", proc=worker)
                self.emit_protocol_event("exit", rank=rank, proc=worker)
                self.emit_protocol_event("ack_send", rank=rank, seq=seq, op="close", proc=worker)
                self.emit_protocol_event("ack_recv", rank=rank, seq=seq, op="close")
                self.emit_protocol_event("unlink", rank=rank)
            self._seq.clear()
            self.emit_protocol_event("closed")


class BatchedBackend(LocalBackend):
    """Single-process delivery preferring the world-batched kernels."""

    name = "batched"
    prefers_fast_path = True
