"""In-process backends: the loop-reference oracle and the batched fast path.

Both deliver payloads by handing the sender's objects straight to the
receiver (the original single-process execution model); they differ only in
which kernel flavor collectives pick by default.  ``LocalBackend`` is the
auditable oracle — per-rank Python loops, one payload per message — and
``BatchedBackend`` prefers the world-batched ``(world, n)`` kernels of
:mod:`repro.comm.batched` (bit-identical by the PR 5 contract, so the two
backends are interchangeable in every observable way except wall-clock).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from .base import TransportBackend

if TYPE_CHECKING:
    from ..transport import Message


class LocalBackend(TransportBackend):
    """Single-process delivery, loop-reference kernels, serial rank tasks."""

    name = "local"
    prefers_fast_path = False

    def __init__(self) -> None:
        super().__init__()
        self._pools: dict[int, np.ndarray] = {}

    def route_round(self, messages: Sequence[Message]) -> dict[int, list[Message]]:
        inbox: dict[int, list[Message]] = {}
        for message in messages:
            inbox.setdefault(message.dst, []).append(message)
        return inbox

    def allocate_pool(self, rank: int, n_elements: int) -> np.ndarray:
        pool = np.empty(n_elements, dtype=np.float64)
        self._pools[rank] = pool
        return pool

    def run_rank_tasks(
        self,
        fn: Callable[..., Any],
        args_by_rank: Mapping[int, tuple],
    ) -> dict[int, Any]:
        return {
            rank: fn(self._pools.get(rank), *args_by_rank[rank])
            for rank in sorted(args_by_rank)
        }

    def close(self) -> None:
        self._pools.clear()


class BatchedBackend(LocalBackend):
    """Single-process delivery preferring the world-batched kernels."""

    name = "batched"
    prefers_fast_path = True
