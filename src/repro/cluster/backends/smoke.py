"""2-core scaling smoke check: ``python -m repro.cluster.backends.smoke``.

Runs the compute-bound per-rank workload at world 2 on the ``local``
(serial) and ``shm`` (one process per rank) backends and requires the shm
backend to show real overlap — wall time below ~85% of serial — plus
bitwise-identical results.  Exits 0 and prints SKIP on machines with fewer
than 2 cores, where the scaling assertion is physically unsatisfiable;
exits 1 on a miss.  CI's ``backends`` job runs this on a 2-core runner.
"""

from __future__ import annotations

import os
import sys
import time

from ..topology import ClusterSpec
from ..transport import Transport
from ...perf.workloads import EPOCH_ITERS, EPOCH_POOL_ELEMENTS, compute_epoch_task

WORLD = 2
#: shm wall time must be below this fraction of serial local wall time.
#: Perfect 2-core scaling is 0.5; 0.85 leaves headroom for dispatch
#: overhead and noisy shared runners while still proving actual overlap.
MAX_RATIO = 0.85
REPEATS = 3


def _best_run(backend, args) -> tuple[float, dict]:
    result = backend.run_rank_tasks(compute_epoch_task, args)  # warmup
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = backend.run_rank_tasks(compute_epoch_task, args)
        best = min(best, time.perf_counter() - t0)
    return best, result


def main() -> int:
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(f"SKIP: {cpus} core(s); the scaling check needs >= 2")
        return 0
    spec = ClusterSpec(num_nodes=1, workers_per_node=WORLD)
    args = {rank: (rank, EPOCH_ITERS) for rank in range(WORLD)}
    times: dict[str, float] = {}
    results: dict[str, dict] = {}
    for name in ("local", "shm"):
        with Transport(spec, backend=name) as transport:
            for rank in range(WORLD):
                transport.backend.allocate_pool(rank, EPOCH_POOL_ELEMENTS)
            times[name], results[name] = _best_run(transport.backend, args)
    if results["local"] != results["shm"]:
        print(f"FAIL: backend results diverge: {results}")
        return 1
    ratio = times["shm"] / times["local"]
    verdict = "ok" if ratio <= MAX_RATIO else "FAIL"
    print(
        f"{verdict}: world={WORLD} local={times['local']:.3f}s "
        f"shm={times['shm']:.3f}s ratio={ratio:.2f} (required <= {MAX_RATIO})"
    )
    return 0 if ratio <= MAX_RATIO else 1


if __name__ == "__main__":
    sys.exit(main())
