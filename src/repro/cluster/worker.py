"""Per-worker context for functional (lock-step) training."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import ClusterSpec
from .transport import Transport


@dataclass
class WorkerContext:
    """Everything an algorithm instance knows about 'its' worker.

    Each simulated worker gets an independent RNG stream (seeded from a base
    seed and its rank) so data sharding and stochastic compression are
    deterministic yet decorrelated across workers.
    """

    rank: int
    spec: ClusterSpec
    transport: Transport
    rng: np.random.Generator

    @property
    def world_size(self) -> int:
        return self.spec.world_size

    @property
    def node(self) -> int:
        return self.spec.node_of(self.rank)

    @property
    def local_rank(self) -> int:
        return self.spec.local_rank(self.rank)

    @property
    def now(self) -> float:
        return self.transport.now(self.rank)


def make_workers(
    spec: ClusterSpec,
    transport: Transport | None = None,
    seed: int = 0,
    backend: str | None = None,
) -> list[WorkerContext]:
    """Create one context per rank sharing a transport.

    ``backend`` names the transport backend for a freshly created transport
    (ignored when ``transport`` is passed in).
    """
    transport = transport or Transport(spec, backend=backend)
    return [
        WorkerContext(
            rank=rank,
            spec=spec,
            transport=transport,
            rng=np.random.default_rng(np.random.SeedSequence([seed, rank])),
        )
        for rank in range(spec.world_size)
    ]
