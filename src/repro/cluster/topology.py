"""Cluster topology: nodes x workers, link selection, stragglers.

A :class:`ClusterSpec` describes the machine layout the simulation runs on.
Worker ranks are assigned node-major: ranks ``[0, g)`` on node 0, ``[g, 2g)``
on node 1, and so on — matching how NCCL ranks map onto multi-GPU servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .netmodel import Link, NVLINK, TCP_25G

# Sustained mixed-precision throughput assumed per V100-class worker, used to
# convert model FLOPs into compute seconds.  The paper quotes 2 PFLOPS
# aggregate over 128 GPUs with Tensor Cores; sustained training throughput is
# far below peak, and only relative times matter for the reproduced shapes.
DEFAULT_WORKER_FLOPS = 15.6e12


@dataclass(frozen=True)
class ClusterSpec:
    """Immutable description of the simulated cluster.

    Attributes:
        num_nodes: number of machines.
        workers_per_node: GPUs per machine.
        inter_node: link model between machines (TCP).
        intra_node: link model within a machine (NVLink).
        worker_flops: sustained FLOP/s per worker for compute-time estimates.
        straggler_slowdown: rank -> multiplicative compute slowdown (>1 means
            slower; models the paper's downclocked-GPU heterogeneity study).
        compute_jitter_sigma: relative std-dev of per-iteration compute time
            on one worker.  Synchronous algorithms pace on the slowest of all
            workers each iteration, paying roughly ``sigma * sqrt(2 ln n)``
            extra; asynchronous algorithms average the noise out.  This is
            the system-level reason async wins even on fast networks.
    """

    num_nodes: int = 16
    workers_per_node: int = 8
    inter_node: Link = TCP_25G
    intra_node: Link = NVLINK
    worker_flops: float = DEFAULT_WORKER_FLOPS
    straggler_slowdown: dict[int, float] = field(default_factory=dict)
    compute_jitter_sigma: float = 0.06

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.workers_per_node < 1:
            raise ValueError(f"workers_per_node must be >= 1, got {self.workers_per_node}")
        for rank, slow in self.straggler_slowdown.items():
            if not 0 <= rank < self.world_size:
                raise ValueError(f"straggler rank {rank} out of range")
            if slow < 1.0:
                raise ValueError(f"straggler slowdown must be >= 1, got {slow}")

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.workers_per_node

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.workers_per_node

    def local_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.workers_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def link_between(self, a: int, b: int) -> Link:
        """The link used by a message from rank ``a`` to rank ``b``."""
        if a == b:
            raise ValueError(f"no link from rank {a} to itself")
        return self.intra_node if self.same_node(a, b) else self.inter_node

    def node_ranks(self, node: int) -> list[int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        start = node * self.workers_per_node
        return list(range(start, start + self.workers_per_node))

    def node_groups(self) -> list[list[int]]:
        """Global ranks grouped per node, node-major: ``[[0..g), [g..2g), ...]``.

        The hierarchical (H) lowering and the symbolic plan verifier consume
        this partition; it is the static twin of
        :meth:`repro.comm.group.CommGroup.node_subgroups`.
        """
        return [self.node_ranks(node) for node in range(self.num_nodes)]

    def node_leaders(self) -> list[int]:
        """First rank of each node (the 'leader workers' of §3.4)."""
        return [node * self.workers_per_node for node in range(self.num_nodes)]

    def compute_scale(self, rank: int) -> float:
        """Multiplier on compute time for ``rank`` (stragglers are > 1)."""
        return self.straggler_slowdown.get(rank, 1.0)

    def sync_jitter_factor(self) -> float:
        """Expected slowdown of a per-iteration barrier over all workers.

        The max of ``n`` draws of N(1, sigma) concentrates near
        ``1 + sigma * sqrt(2 ln n)``; synchronous collectives pay this every
        iteration because everyone waits for the slowest worker.
        """
        import math

        n = self.world_size
        if n <= 1 or self.compute_jitter_sigma <= 0:
            return 1.0
        return 1.0 + self.compute_jitter_sigma * math.sqrt(2.0 * math.log(n))

    def compute_time(self, flops: float, rank: int = 0) -> float:
        """Seconds for ``rank`` to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError(f"negative flops {flops}")
        return flops * self.compute_scale(rank) / self.worker_flops

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")


def paper_cluster(network: str = "25gbps", straggler_slowdown: dict[int, float] | None = None) -> ClusterSpec:
    """The 16-node x 8-GPU cluster from the paper's evaluation."""
    from .netmodel import preset

    return ClusterSpec(
        num_nodes=16,
        workers_per_node=8,
        inter_node=preset(network),
        straggler_slowdown=straggler_slowdown or {},
    )
