"""Plan-space enumeration and pruning over the symbolic verifier.

The auto-tuner (:mod:`repro.core.autotune`) and the O/F/H ablations explore
a combinatorial space — algorithm × overlap × fusion × hierarchy × bucket
cap × codec × topology.  Timing every point is expensive; *checking* every
point is not: :func:`verify_point` runs the static rules of
:mod:`repro.analysis.symbolic` and, when those prove nothing wrong, lowers
the point symbolically and runs the full checker suite (plus the
happens-before rules) over IR that never touched a transport.

:func:`enumerate_points` walks the knob grid; :func:`sweep_planspace` turns
it into a :class:`PlanSpaceReport` (the ``repro analyze --plans`` artifact);
:func:`prune_points` splits accepted from rejected points with per-plan
rejection reasons — the auto-tuner consumes exactly this split so it never
spends simulation time on a plan the verifier can refute.

Static errors short-circuit the lowering: a plan whose description is
already refuted reports its one root-cause finding instead of the cascade
of downstream checker noise the broken IR would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterable, Sequence

from ..algorithms.registry import ALGORITHM_REGISTRY
from ..baselines import BASELINE_REGISTRY
from .checkers import HB_CHECKERS, run_checkers
from .report import Finding
from .symbolic import (
    PROBE_BUCKET_BYTES,
    PlanPoint,
    check_plan_static,
    lower_point,
)

#: World shapes the plan sweep verifies by default: every shape the paper's
#: ablations exercise at probe scale (flat two-node, wide node, tall node).
DEFAULT_WORLD_SHAPES: tuple[tuple[int, int], ...] = ((2, 2),)

#: Per-algorithm knobs so the sweep reaches each algorithm's interesting
#: communication phase in a handful of symbolic steps — the plan-space twin
#: of :data:`repro.analysis.driver.ANALYSIS_OVERRIDES` (a 20-step warmup or
#: 4-step sync period would otherwise hide the compressed / synchronized
#: path behind steps the sweep never lowers).
PLAN_OVERRIDES: dict[str, dict] = {
    "1bit-adam": {"warmup_steps": 1, "steps": 2},
    "local-sgd": {"frequency": 2, "steps": 2},
    "qsparse-local-sgd": {"frequency": 2, "steps": 2},
}


@dataclass(frozen=True)
class PlanVerdict:
    """One plan point's verification outcome."""

    point: PlanPoint
    findings: tuple[Finding, ...]
    source: str
    num_ops: int = 0

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def rejection(self) -> str:
        """The first error's message — why the pruner drops this point."""
        return self.errors[0].message if self.errors else ""

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"{status} {self.point.describe()}: {self.num_ops} ops, "
            f"{len(self.findings)} finding(s)"
        ]
        lines.extend(f"  {f.render()}" for f in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "plan": self.point.describe(),
            "algorithm": self.point.algorithm,
            "ok": self.ok,
            "num_ops": self.num_ops,
            "source": self.source,
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass
class PlanSpaceReport:
    """All verdicts of one plan-space sweep."""

    verdicts: list[PlanVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def accepted(self) -> list[PlanVerdict]:
        return [v for v in self.verdicts if v.ok]

    def rejected(self) -> list[PlanVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def all_findings(self) -> list[Finding]:
        return [f for v in self.verdicts for f in v.findings]

    def render(self) -> str:
        rejected = self.rejected()
        lines = [
            f"plan space: {len(self.verdicts)} plan(s) checked, "
            f"{len(self.accepted())} accepted, {len(rejected)} rejected"
        ]
        for verdict in rejected:
            lines.append("")
            lines.append(verdict.render())
        warned = [
            v for v in self.verdicts
            if v.ok and any(f.severity == "warning" for f in v.findings)
        ]
        for verdict in warned:
            lines.append("")
            lines.append(verdict.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "num_plans": len(self.verdicts),
            "num_rejected": len(self.rejected()),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def verify_point(point: PlanPoint, hb: bool = True, profile=None) -> PlanVerdict:
    """Verify one plan point: static rules first, lowered IR second.

    A static *error* is final — the lowering is skipped, both because the
    point may not even be lowerable (a non-divisible hierarchy split has no
    node partition) and because one refuted description should report its
    root cause, not a cascade.  Static warnings do not block the lowering.
    """
    findings = list(check_plan_static(point, profile))
    if any(f.severity == "error" for f in findings):
        return PlanVerdict(
            point=point,
            findings=tuple(findings),
            source="static rules (lowering skipped)",
        )
    subject = lower_point(point, profile)
    label = point.describe()
    checker_findings = run_checkers(subject)
    if hb:
        checker_findings.extend(run_checkers(subject, HB_CHECKERS))
    findings.extend(
        f if f.plan else replace(f, plan=label) for f in checker_findings
    )
    return PlanVerdict(
        point=point,
        findings=tuple(findings),
        source=subject.source,
        num_ops=subject.trace.num_ops if subject.trace else 0,
    )


def enumerate_points(
    algorithms: Sequence[str] | None = None,
    world_shapes: Sequence[tuple[int, int]] = DEFAULT_WORLD_SHAPES,
    bucket_bytes_options: Sequence[float] = (PROBE_BUCKET_BYTES,),
    compressors: Sequence[str | None] = (None,),
    topologies: Sequence[str | None] = (None,),
    include_baselines: bool = False,
    steps: int = 1,
) -> list[PlanPoint]:
    """Walk the plan-space grid: O/F/H × shape × bucket cap × codec × topology.

    ``None`` entries in ``compressors``/``topologies`` mean each algorithm's
    natural choice; explicit entries apply to every algorithm (the pruner
    then rejects the incompatible combinations — that is the point).
    """
    if algorithms is None:
        algorithms = sorted(ALGORITHM_REGISTRY)
        if include_baselines:
            algorithms += sorted(BASELINE_REGISTRY)
    points = []
    for name in algorithms:
        overrides = PLAN_OVERRIDES.get(name, {})
        for num_nodes, workers_per_node in world_shapes:
            for bucket_bytes in bucket_bytes_options:
                for compressor in compressors:
                    for topology in topologies:
                        for overlap in (False, True):
                            for flatten in (False, True):
                                for hierarchical in (False, True):
                                    points.append(
                                        PlanPoint(
                                            algorithm=name,
                                            world_size=num_nodes * workers_per_node,
                                            workers_per_node=workers_per_node,
                                            overlap=overlap,
                                            flatten=flatten,
                                            hierarchical=hierarchical,
                                            bucket_bytes=bucket_bytes,
                                            compressor=compressor,
                                            topology=topology,
                                            steps=overrides.get("steps", steps),
                                            frequency=overrides.get("frequency"),
                                            warmup_steps=overrides.get("warmup_steps"),
                                        )
                                    )
    return points


def sweep_planspace(
    points: Iterable[PlanPoint] | None = None,
    hb: bool = True,
    profile=None,
) -> PlanSpaceReport:
    """Verify every point; the ``repro analyze --plans`` entry point."""
    if points is None:
        points = enumerate_points()
    report = PlanSpaceReport()
    for point in points:
        report.verdicts.append(verify_point(point, hb=hb, profile=profile))
    return report


def prune_points(
    points: Iterable[PlanPoint],
    hb: bool = True,
    profile=None,
) -> tuple[list[PlanPoint], list[PlanVerdict]]:
    """Split ``points`` into (accepted, rejected-with-reasons).

    The auto-tuner calls this before spending any simulation time: rejected
    points carry their verdict (rule, message, location) so the ranked
    output can show *why* a candidate was never timed.
    """
    accepted: list[PlanPoint] = []
    rejected: list[PlanVerdict] = []
    for point in points:
        verdict = verify_point(point, hb=hb, profile=profile)
        if verdict.ok:
            accepted.append(point)
        else:
            rejected.append(verdict)
    return accepted, rejected
