"""Cross-process conformance sanitizer: replay observed protocol events.

With ``REPRO_PROTOCOL_SANITIZE=1`` (or ``BaguaConfig.protocol_sanitize``)
every transport backend records a :class:`~repro.cluster.backends.base.ProtocolEvent`
stream from each participating OS process — the parent emits directly,
workers piggyback their buffered events on the acks they already send.
:func:`check_events` replays that stream against the protocol model's
invariants and returns a located :class:`~repro.analysis.report.Finding`
per divergence (empty = the execution conformed).

The replay extends **vector clocks across OS processes**: each process's
events are totally ordered by program order, and the two pipe directions
induce the cross-process join edges —

* ``post(rank, seq)``  →  ``recv(rank, seq)``   (doorbell delivery), and
* ``ack_send(rank, seq)``  →  ``ack_recv(rank, seq)``   (ack delivery).

Events reach the parent's buffer in an order consistent with those edges
(a worker's events ride the ack that follows them), so a single pass can
assign every event a clock and then check the happens-before rules —
``unlink`` after the worker's ``exit``, no doorbell posted to an exited
worker — exactly as the model checker does, but against a real execution.

Batched-mode streams add two shapes on top: ``stage`` events record
rounds/tasks the parent appended to a not-yet-flushed per-worker program,
and a ``post`` with op ``batch`` is the program's single (flag-word)
doorbell — it participates in the same post → recv → ack exchange, with
every worker-side event stamped with the batch seq.  The sanitizer checks
additionally that every staged ``(rank, seq)`` is eventually covered by
its ``batch`` post: rounds staged but never flushed are a barrier bug.

Matching rules (per doorbell exchange) are checked exclusively and each
rank short-circuits after its first finding, so a single seeded bug yields
a single root-cause finding.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..report import Finding
from .model import (
    RULE_BARRIER,
    RULE_BUDGET,
    RULE_CONFORMANCE,
    RULE_DELIVERY,
    RULE_LIFECYCLE,
    RULE_LOST_WAKEUP,
    RULE_ORPHAN,
    RULE_SEQ,
    _finding,
)

if TYPE_CHECKING:
    from ...cluster.backends.base import ProtocolEvent

#: Doorbell kinds that participate in the post → recv → ack exchange
#: ("batch" is a staged program's single flag-word doorbell, "reduce" a
#: pool-ref in-place reduction shipped by descriptor).
_DOORBELL_OPS = ("round", "task", "reduce", "pool", "close", "batch")

VectorClock = dict[str, int]


def vc_leq(a: VectorClock, b: VectorClock) -> bool:
    """True iff ``a`` happens-before-or-equals ``b`` componentwise."""
    return all(v <= b.get(proc, 0) for proc, v in a.items())


def _witness(*events: ProtocolEvent) -> tuple[str, ...]:
    return tuple(f"observed: {ev.describe()}" for ev in events)


def _worker_rank(proc: str) -> int | None:
    if proc.startswith("worker:"):
        try:
            return int(proc.split(":", 1)[1])
        except ValueError:
            return None
    return None


class _Replay:
    """Single-pass replay state: clocks, exchange matching, lifecycles."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        #: ranks that already produced a finding (short-circuited).
        self.bad: set[int] = set()
        self.clocks: dict[str, VectorClock] = {}
        self.event_clock: dict[int, VectorClock] = {}
        #: (rank, seq) -> {"post": ev, "recv": ev, "ack_send": ev, "ack_recv": ev}
        self.exchanges: dict[tuple[int, int], dict[str, ProtocolEvent]] = {}
        #: posting order, for deterministic reporting.
        self.post_order: list[tuple[int, int]] = []
        self.capacity: int | None = None
        self.world: int | None = None
        self.spawned: set[int] = set()
        self.exits: dict[int, int] = {}  # rank -> event index of worker exit
        self.last_recv_seq: dict[str, int] = {}
        #: rounds/tasks staged into a pending batch, awaiting a "batch" post.
        self.staged: list[ProtocolEvent] = []
        self.events: list[ProtocolEvent] = []

    # -- clock assignment ---------------------------------------------
    def _tick(self, index: int, ev: ProtocolEvent) -> None:
        clock = self.clocks.setdefault(ev.proc, {})
        clock[ev.proc] = clock.get(ev.proc, 0) + 1
        join: ProtocolEvent | None = None
        key = (ev.rank, ev.seq)
        if ev.kind == "recv":
            join = self.exchanges.get(key, {}).get("post")
        elif ev.kind == "ack_recv":
            join = self.exchanges.get(key, {}).get("ack_send")
        if join is not None:
            other = self.event_clock[id(join)]
            for proc, value in other.items():
                if clock.get(proc, 0) < value:
                    clock[proc] = value
        self.event_clock[id(ev)] = dict(clock)

    def _report(self, finding: Finding) -> None:
        if finding.rank is not None and finding.rank >= 0:
            if finding.rank in self.bad:
                return
            self.bad.add(finding.rank)
        self.findings.append(finding)

    # -- per-event checks ---------------------------------------------
    def ingest(self, index: int, ev: ProtocolEvent) -> None:
        self.events.append(ev)
        self._tick(index, ev)
        worker_rank = _worker_rank(ev.proc)
        if ev.kind == "config" and len(ev.detail) >= 2:
            self.world, self.capacity = int(ev.detail[0]), int(ev.detail[1])
        elif ev.kind == "spawn":
            self.spawned.add(ev.rank)
        elif ev.kind == "stage":
            self.staged.append(ev)
        elif ev.kind == "post":
            self._check_post(ev)
        elif ev.kind == "exit" and worker_rank is not None:
            self.exits.setdefault(worker_rank, id(ev))
        elif ev.kind == "unlink":
            self._check_unlink(ev)
        if worker_rank is not None:
            self._check_worker_event(ev, worker_rank)

    def _check_post(self, ev: ProtocolEvent) -> None:
        key = (ev.rank, ev.seq)
        if key in self.exchanges and "post" in self.exchanges[key]:
            self._report(
                _finding(
                    RULE_SEQ,
                    f"parent posted doorbell seq {ev.seq} to rank {ev.rank} twice "
                    "(stale/reused sequence number)",
                    rank=ev.rank,
                    seq=ev.seq,
                ).with_witness(_witness(self.exchanges[key]["post"], ev))
            )
            return
        self.exchanges.setdefault(key, {})["post"] = ev
        self.post_order.append(key)
        exit_id = self.exits.get(ev.rank)
        if exit_id is not None:
            exit_clock = self.event_clock[exit_id]
            if vc_leq(exit_clock, self.event_clock[id(ev)]):
                self._report(
                    _finding(
                        RULE_LIFECYCLE,
                        f"parent posted {ev.op or 'a'} doorbell (seq {ev.seq}) to "
                        f"rank {ev.rank} after that worker exited",
                        rank=ev.rank,
                        seq=ev.seq,
                    ).with_witness(_witness(ev))
                )
        if (
            ev.op in ("round", "task", "reduce", "batch")
            and self.capacity is not None
            and len(ev.detail) >= 2
            and int(ev.detail[1]) > self.capacity
        ):
            self._report(
                _finding(
                    RULE_BUDGET,
                    f"round seq {ev.seq} placed {ev.detail[1]} ring bytes at rank "
                    f"{ev.rank}, over the {self.capacity}-byte capacity "
                    "(inline-overflow fallback not taken)",
                    rank=ev.rank,
                    seq=ev.seq,
                ).with_witness(_witness(ev))
            )

    def _check_unlink(self, ev: ProtocolEvent) -> None:
        if ev.rank not in self.spawned:
            return  # pool-only segment for a rank whose worker never ran
        exit_id = self.exits.get(ev.rank)
        if exit_id is None:
            self._report(
                _finding(
                    RULE_LIFECYCLE,
                    f"segments of rank {ev.rank} unlinked but its worker never "
                    "exited (early unlink / use-after-unlink hazard)",
                    rank=ev.rank,
                    seq=ev.seq if ev.seq >= 0 else None,
                ).with_witness(_witness(ev))
            )
        elif not vc_leq(self.event_clock[exit_id], self.event_clock[id(ev)]):
            self._report(
                _finding(
                    RULE_LIFECYCLE,
                    f"unlink of rank {ev.rank}'s segments is not happens-after "
                    "its worker's exit (concurrent unlink)",
                    rank=ev.rank,
                    seq=None,
                ).with_witness(_witness(ev))
            )

    def _check_worker_event(self, ev: ProtocolEvent, worker_rank: int) -> None:
        if ev.rank >= 0 and ev.rank != worker_rank:
            self._report(
                _finding(
                    RULE_DELIVERY,
                    f"{ev.proc} observed a {ev.kind} event for rank {ev.rank} "
                    "(wrong-rank delivery)",
                    rank=worker_rank,
                    seq=ev.seq if ev.seq >= 0 else None,
                ).with_witness(_witness(ev))
            )
            return
        if ev.kind == "recv":
            expected = self.last_recv_seq.get(ev.proc, -1) + 1
            if ev.seq != expected:
                self._report(
                    _finding(
                        RULE_SEQ,
                        f"{ev.proc} received doorbell seq {ev.seq}, expected "
                        f"{expected} (sequence regression or skip)",
                        rank=worker_rank,
                        seq=ev.seq,
                    ).with_witness(_witness(ev))
                )
            self.last_recv_seq[ev.proc] = max(self.last_recv_seq.get(ev.proc, -1), ev.seq)
            self.exchanges.setdefault((worker_rank, ev.seq), {})["recv"] = ev
        elif ev.kind in ("ring_read", "ring_write", "pool_map", "ack_send") and ev.seq >= 0:
            current = self.last_recv_seq.get(ev.proc, -1)
            if ev.seq != current:
                self._report(
                    _finding(
                        RULE_SEQ,
                        f"{ev.proc} performed {ev.kind} for seq {ev.seq} while "
                        f"serving doorbell seq {current}",
                        rank=worker_rank,
                        seq=ev.seq,
                    ).with_witness(_witness(ev))
                )
            if ev.kind == "ack_send":
                self.exchanges.setdefault((worker_rank, ev.seq), {})["ack_send"] = ev

    def ingest_parent_ack(self, ev: ProtocolEvent) -> None:
        self.exchanges.setdefault((ev.rank, ev.seq), {})["ack_recv"] = ev

    # -- end-of-stream checks -----------------------------------------
    def finish(self) -> list[Finding]:
        for key in self.post_order:
            rank, seq = key
            if rank in self.bad:
                continue
            exchange = self.exchanges[key]
            post = exchange["post"]
            if "recv" not in exchange:
                self._report(
                    _finding(
                        RULE_LOST_WAKEUP,
                        f"doorbell {post.op or '?'} seq {seq} posted to rank {rank} "
                        "was never received (lost wakeup)",
                        rank=rank,
                        seq=seq,
                    ).with_witness(_witness(post))
                )
            elif "ack_send" not in exchange:
                self._report(
                    _finding(
                        RULE_LOST_WAKEUP,
                        f"rank {rank} received doorbell {post.op or '?'} seq {seq} "
                        "but never sent its ack (dropped ack)",
                        rank=rank,
                        seq=seq,
                    ).with_witness(_witness(post, exchange["recv"]))
                )
            elif post.op != "close" and "ack_recv" not in exchange:
                self._report(
                    _finding(
                        RULE_BARRIER,
                        f"parent never consumed rank {rank}'s ack for {post.op} "
                        f"seq {seq} (round barrier skipped)",
                        rank=rank,
                        seq=seq,
                    ).with_witness(_witness(post, exchange["ack_send"]))
                )
        for ev in self.staged:
            if ev.rank in self.bad:
                continue
            exchange = self.exchanges.get((ev.rank, ev.seq), {})
            post = exchange.get("post")
            if post is None or post.op != "batch":
                self._report(
                    _finding(
                        RULE_BARRIER,
                        f"{ev.op or 'work'} staged for rank {ev.rank}'s batch seq "
                        f"{ev.seq} was never flushed (no batch doorbell posted)",
                        rank=ev.rank,
                        seq=ev.seq,
                    ).with_witness(_witness(ev))
                )
        for key, exchange in self.exchanges.items():
            rank, seq = key
            if rank in self.bad:
                continue
            if "post" not in exchange:
                observed = next(iter(exchange.values()))
                self._report(
                    _finding(
                        RULE_CONFORMANCE,
                        f"rank {rank} observed protocol traffic for seq {seq} the "
                        "parent never posted (phantom doorbell)",
                        rank=rank,
                        seq=seq,
                    ).with_witness(_witness(observed))
                )
        for rank in sorted(self.spawned):
            if rank in self.bad:
                continue
            if rank not in self.exits:
                self._report(
                    _finding(
                        RULE_ORPHAN,
                        f"worker {rank} was spawned but never exited gracefully "
                        "(orphaned or terminated worker)",
                        rank=rank,
                    ).with_witness(())
                )
        return self.findings


def check_events(events: Sequence[ProtocolEvent]) -> list[Finding]:
    """Replay ``events`` against the protocol model; return divergences.

    Expects the stream a sanitizing backend accumulates: parent events in
    program order with each worker's batches spliced in at ack-ingestion
    points (which is consistent with the cross-process happens-before
    edges).  An empty result means the observed execution conforms.
    """
    replay = _Replay()
    for index, ev in enumerate(events):
        replay.ingest(index, ev)
        if ev.kind == "ack_recv" and ev.proc == "parent":
            replay.ingest_parent_ack(ev)
    return replay.finish()
