"""Bounded-exhaustive interleaving explorer for the protocol model.

Explores every reachable interleaving of the :class:`~.model.ModelState`
transition system (parent program × per-rank worker loops), with two
state-space reductions:

* **state deduplication** — states are fingerprinted structurally; a state
  reached twice through different interleavings is expanded once;
* **ample-set partial-order reduction** (DPOR-style) — when some process's
  next transition touches objects disjoint from every *other* enabled
  process's next transition, only that process is scheduled.  All protocol
  objects (doorbell/ack pipes, rings, segments, liveness) are per-worker
  with a single reader and single writer, so dependent transitions are
  exactly the parent↔worker pairs on one worker's objects — which are never
  reduced away.  ``por=False`` disables the reduction for cross-checking.

The first invariant violation (raised inside a transition) or bad quiescent
state (classified by :meth:`~.model.ModelState.quiescence_finding`) stops
the search and is returned as a single root-cause
:class:`~repro.analysis.report.Finding` whose witness is the interleaving
trace — the counterexample, printable via ``repro analyze --explain``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from ..report import Finding
from .model import Faults, ModelState, Workload, build_model

#: Witness traces longer than this elide their prefix.
MAX_WITNESS_STEPS = 30


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    workload: Workload
    faults: Faults
    finding: Finding | None = None
    states: int = 0
    transitions: int = 0
    max_depth: int = 0
    truncated: bool = False
    elapsed_s: float = 0.0
    por: bool = True

    @property
    def ok(self) -> bool:
        return self.finding is None and not self.truncated

    def findings(self) -> list[Finding]:
        return [self.finding] if self.finding is not None else []

    def describe(self) -> str:
        status = "clean" if self.ok else ("TRUNCATED" if self.finding is None else "FAIL")
        wire = " (batched flag-word)" if self.workload.batched else ""
        return (
            f"{status}: world {self.workload.world}{wire}, {self.states} states, "
            f"{self.transitions} transitions, depth {self.max_depth}, "
            f"{self.elapsed_s * 1000:.0f} ms"
        )

    def to_dict(self) -> dict:
        return {
            "world": self.workload.world,
            "rounds": self.workload.rounds,
            "batched": self.workload.batched,
            "ok": self.ok,
            "states": self.states,
            "transitions": self.transitions,
            "max_depth": self.max_depth,
            "truncated": self.truncated,
            "elapsed_s": self.elapsed_s,
            "por": self.por,
            "finding": self.finding.to_dict() if self.finding else None,
        }


@dataclass
class _Node:
    """One executed transition, linked to its predecessor for witnesses."""

    desc: str
    parent: int
    depth: int = 0


def _witness(nodes: list[_Node], index: int) -> tuple[str, ...]:
    steps: list[str] = []
    while index >= 0:
        node = nodes[index]
        steps.append(node.desc)
        index = node.parent
    steps.reverse()
    lines = [f"step {i}: {desc}" for i, desc in enumerate(steps)]
    if len(lines) > MAX_WITNESS_STEPS:
        omitted = len(lines) - MAX_WITNESS_STEPS
        lines = [f"... ({omitted} earlier step(s) elided)"] + lines[-MAX_WITNESS_STEPS:]
    return tuple(lines)


def _ample(state: ModelState, procs: list[str]) -> list[str]:
    """Pick a single independent process when one exists (POR)."""
    if len(procs) <= 1:
        return procs
    footprints = {proc: state.footprint(proc) for proc in procs}
    for proc in procs:
        mine = footprints[proc]
        if all(mine.isdisjoint(footprints[other]) for other in procs if other is not proc):
            return [proc]
    return procs


@dataclass
class Explorer:
    """Reusable exploration configuration (bounds + reduction toggle)."""

    max_states: int = 500_000
    max_depth: int = 5_000
    por: bool = True

    def explore(self, workload: Workload, faults: Faults | None = None) -> ExplorationResult:
        """Exhaustively explore ``workload`` with ``faults`` seeded."""
        faults = faults or Faults()
        start = time.monotonic()
        initial = build_model(workload, faults)
        result = ExplorationResult(workload=workload, faults=faults, por=self.por)

        nodes: list[_Node] = [_Node(desc="initial state", parent=-1)]
        stack: list[tuple[ModelState, int]] = [(initial, 0)]
        visited: set[tuple] = {initial.fingerprint()}
        result.states = 1

        while stack:
            state, node_index = stack.pop()
            depth = nodes[node_index].depth
            procs = state.enabled_procs()
            if not procs:
                finding = state.quiescence_finding()
                if finding is not None:
                    result.finding = dataclasses.replace(
                        finding, witness=_witness(nodes, node_index)
                    )
                    break
                continue
            if self.por:
                procs = _ample(state, procs)
            stop = False
            for proc in procs:
                child = state.clone()
                desc, finding = child.step(proc)
                result.transitions += 1
                nodes.append(_Node(desc=desc, parent=node_index, depth=depth + 1))
                child_index = len(nodes) - 1
                result.max_depth = max(result.max_depth, depth + 1)
                if finding is not None:
                    result.finding = dataclasses.replace(
                        finding, witness=_witness(nodes, child_index)
                    )
                    stop = True
                    break
                fingerprint = child.fingerprint()
                if fingerprint in visited:
                    continue
                visited.add(fingerprint)
                result.states += 1
                if result.states >= self.max_states or depth + 1 >= self.max_depth:
                    result.truncated = True
                    continue
                stack.append((child, child_index))
            if stop:
                break

        result.elapsed_s = time.monotonic() - start
        return result


def explore(
    workload: Workload,
    faults: Faults | None = None,
    *,
    max_states: int = 500_000,
    max_depth: int = 5_000,
    por: bool = True,
) -> ExplorationResult:
    """One-shot exhaustive exploration (see :class:`Explorer`)."""
    return Explorer(max_states=max_states, max_depth=max_depth, por=por).explore(
        workload, faults
    )
