"""Mutation testing for the protocol model checker.

Each :class:`Mutation` seeds one plausible backend bug into the model (via
:class:`~.model.Faults`) and names the single protocol rule whose finding
the explorer must report — the *root cause*, not a downstream symptom.  The
harness (:func:`run_mutations`) runs the exhaustive explorer over every
mutation and over the clean baseline, asserting:

* the clean model explores with **zero** findings (no false positives);
* every mutation is **caught** (the search finds a counterexample);
* the counterexample is **exactly one** finding carrying the mutation's
  expected rule and a printable interleaving witness (root-cause
  localization, no cascades).

This is the self-test of the checker: if someone weakens an invariant or
a quiescence classifier, a mutation stops being caught (or gets the wrong
rule) and ``make check`` / the ``protocol-check`` CI job fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .explorer import ExplorationResult, Explorer
from .model import (
    RULE_BARRIER,
    RULE_BUDGET,
    RULE_DEADLOCK,
    RULE_DELIVERY,
    RULE_LEAK,
    RULE_LIFECYCLE,
    RULE_LOST_WAKEUP,
    RULE_ORPHAN,
    RULE_POOLREF,
    RULE_PROGRAM,
    RULE_RING_OVERLAP,
    RULE_SEQ,
    Faults,
    Workload,
)

#: The small-but-complete default workload: two ranks, two rounds, a pool
#: mapping and a task per rank — every protocol phase is exercised.
DEFAULT_WORKLOAD = Workload()

#: Three pipelined rounds whose records wrap a 256-byte ring: the minimal
#: shape where skipping the barrier lets a write land on an unread slot.
_WRAP_WORKLOAD = Workload(
    world=1, rounds=3, record_sizes=(64, 24), ring_bytes=256, pool=False, task=False
)

#: The default workload spoken over the PR 9 flag-word protocol: both
#: rounds staged as one batch program per destination, plus the task batch.
_BATCHED_WORKLOAD = Workload(batched=True)

#: Two single-round batches, rounds only — the minimal shape where batch
#: 1's flag word can be rung without bumping its seq past batch 0's.
_STALE_FLAG_WORKLOAD = Workload(batched=True, batch_rounds=1, pool=False, task=False)

#: A pool-ref reduce over the batched flag-word protocol: every rank maps
#: every pool, then executes one in-place reduce chunk (PR 10).
_REDUCE_WORKLOAD = Workload(world=2, batched=True, reduce=True)


@dataclass(frozen=True)
class Mutation:
    """One seeded protocol bug and the rule that must catch it."""

    name: str
    faults: Faults
    expected_rule: str
    workload: Workload = DEFAULT_WORKLOAD
    description: str = ""


#: The seeded-bug suite (ISSUE 8's eight protocol bugs + three extras the
#: fault model supports: a leaked segment, pipelined ring overlap, and a
#: doorbell posted behind a close — plus two batched flag-word bugs from
#: PR 9: an ack set before the staged program ran, and a flag word rung
#: without bumping its seq — plus two pool-ref bugs from PR 10: a reduce
#: descriptor targeting a segment its executor never mapped, and a batch
#: ack raised before the reduce's peer-segment writes completed).
MUTATIONS: tuple[Mutation, ...] = (
    Mutation(
        name="dropped-ack",
        faults=Faults(drop_ack=((0, 0),)),
        expected_rule=RULE_DEADLOCK,
        description="worker 0 silently drops its round-0 ack; the parent's "
        "barrier waits forever",
    ),
    Mutation(
        name="stale-seq",
        faults=Faults(stale_seq=((0, 1),)),
        expected_rule=RULE_SEQ,
        description="round 1's doorbell to rank 0 reuses round 0's sequence "
        "number",
    ),
    Mutation(
        name="early-unlink",
        faults=Faults(early_unlink=(0,)),
        expected_rule=RULE_LIFECYCLE,
        description="the parent unlinks rank 0's segments before joining the "
        "worker",
    ),
    Mutation(
        name="skipped-barrier",
        faults=Faults(skip_barrier=(0,)),
        expected_rule=RULE_BARRIER,
        description="the parent never awaits round 0's acks",
    ),
    Mutation(
        name="oversized-record",
        faults=Faults(force_place=True),
        expected_rule=RULE_BUDGET,
        workload=Workload(oversize=True),
        description="a record larger than the ring is force-placed instead of "
        "falling back inline",
    ),
    Mutation(
        name="double-close",
        faults=Faults(double_close=(0,)),
        expected_rule=RULE_LIFECYCLE,
        description="rank 0 receives a second close doorbell after exiting",
    ),
    Mutation(
        name="wrong-rank-delivery",
        faults=Faults(wrong_dst=((1, 0),)),
        expected_rule=RULE_DELIVERY,
        description="round 0's records for rank 1 are stamped for another rank",
    ),
    Mutation(
        name="orphaned-worker",
        faults=Faults(orphan=(1,)),
        expected_rule=RULE_ORPHAN,
        description="the parent abandons rank 1: no close, no join, no unlink",
    ),
    Mutation(
        name="leaked-segment",
        faults=Faults(skip_unlink=(0,)),
        expected_rule=RULE_LEAK,
        description="rank 0's segments survive teardown",
    ),
    Mutation(
        name="post-after-close",
        faults=Faults(post_after_close=(0,)),
        expected_rule=RULE_LOST_WAKEUP,
        description="a round doorbell is posted to rank 0 behind its close: "
        "the wakeup is lost in the shutdown",
    ),
    Mutation(
        name="pipelined-ring-overlap",
        faults=Faults(pipeline_rounds=True),
        expected_rule=RULE_RING_OVERLAP,
        workload=_WRAP_WORKLOAD,
        description="rounds are posted without barriering, so a wrapped write "
        "lands on a slot the worker has not read yet",
    ),
    Mutation(
        name="ack-before-program-end",
        faults=Faults(ack_early=(0,)),
        expected_rule=RULE_PROGRAM,
        workload=_BATCHED_WORKLOAD,
        description="worker 0 sets its batch ack flag before executing the "
        "staged program: the parent would read echoes that were never written",
    ),
    Mutation(
        name="stale-flag-seq",
        faults=Faults(stale_flag=((0, 1),)),
        expected_rule=RULE_LOST_WAKEUP,
        workload=_STALE_FLAG_WORKLOAD,
        description="batch 1's doorbell flag word for rank 0 reuses batch 0's "
        "seq, so the spinning worker never observes the new program",
    ),
    Mutation(
        name="unmapped-pool-ref",
        faults=Faults(poolref_unmapped=((0, 1),)),
        expected_rule=RULE_POOLREF,
        workload=_REDUCE_WORKLOAD,
        description="rank 1's pool segment is never mapped into worker 0, so "
        "worker 0's staged reduce dereferences an unmapped descriptor",
    ),
    Mutation(
        name="reduce-before-peer-write",
        faults=Faults(skip_reduce_write=(0,)),
        expected_rule=RULE_POOLREF,
        workload=_REDUCE_WORKLOAD,
        description="worker 0 acks its reduce batch before writing the peers' "
        "pool segments; the parent reads slices that were never reduced",
    ),
)


@dataclass
class MutationOutcome:
    """Verdict for one mutation (or the clean baseline)."""

    mutation: Mutation
    result: ExplorationResult
    caught: bool
    rule: str | None
    exact: bool  # exactly one finding, carrying the expected rule

    @property
    def ok(self) -> bool:
        return self.exact

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        caught = self.rule or "not caught"
        return (
            f"{verdict:4s} {self.mutation.name}: expected "
            f"{self.mutation.expected_rule}, got {caught} "
            f"({self.result.states} states)"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.mutation.name,
            "expected_rule": self.mutation.expected_rule,
            "caught_rule": self.rule,
            "caught": self.caught,
            "ok": self.ok,
            "states": self.result.states,
            "transitions": self.result.transitions,
            "elapsed_s": self.result.elapsed_s,
        }


@dataclass
class MutationReport:
    """All mutation outcomes plus the clean-baseline exploration."""

    baseline: ExplorationResult
    outcomes: list[MutationOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.baseline.ok and all(outcome.ok for outcome in self.outcomes)

    def render(self) -> str:
        lines = [f"clean baseline: {self.baseline.describe()}"]
        lines.extend(outcome.describe() for outcome in self.outcomes)
        caught = sum(1 for o in self.outcomes if o.ok)
        lines.append(f"mutations: {caught}/{len(self.outcomes)} caught with the root cause")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "baseline": self.baseline.to_dict(),
            "mutations": [outcome.to_dict() for outcome in self.outcomes],
        }


def run_mutation(mutation: Mutation, explorer: Explorer | None = None) -> MutationOutcome:
    """Explore one mutation; classify whether its bug was root-caused."""
    explorer = explorer or Explorer()
    result = explorer.explore(mutation.workload, mutation.faults)
    findings = result.findings()
    rule = findings[0].rule if findings else None
    caught = bool(findings)
    exact = (
        len(findings) == 1
        and rule == mutation.expected_rule
        and bool(findings[0].witness)
        and not result.truncated
    )
    return MutationOutcome(
        mutation=mutation, result=result, caught=caught, rule=rule, exact=exact
    )


def run_mutations(
    mutations: tuple[Mutation, ...] = MUTATIONS,
    explorer: Explorer | None = None,
) -> MutationReport:
    """Run the clean baseline plus every seeded bug through the explorer."""
    explorer = explorer or Explorer()
    report = MutationReport(baseline=explorer.explore(DEFAULT_WORKLOAD))
    for mutation in mutations:
        report.outcomes.append(run_mutation(mutation, explorer))
    return report
