"""``python -m repro analyze --protocol``: the protocol verification gate.

One :func:`analyze_protocol` call runs the three protocol checks end to
end and aggregates them into a :class:`ProtocolReport`:

1. **exhaustive exploration** — the clean protocol model at several world
   sizes (default 1/2/4), every interleaving, under DPOR + state dedup,
   over *both* wire protocols (legacy per-round pipe doorbells and the
   PR 9 batched flag-word steady state), plus pool-ref reduce workloads
   (PR 10: every pool mapped everywhere, one in-place reduce per rank) at
   each multi-rank world; any finding or truncation fails the gate;
2. **mutation testing** — the seeded-bug suite of :mod:`.mutations`; every
   bug must be caught with exactly its root-cause rule;
3. **live conformance** (optional, default on) — a real
   :class:`~repro.cluster.backends.shm.SharedMemoryBackend` run under the
   sanitizer: payload rounds, a pool mapping, a pool-ref in-place reduce,
   per-rank tasks and a graceful close, with the recorded cross-process
   event stream replayed through
   :func:`~.sanitizer.check_events`.  Divergence fails the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..report import Finding
from .explorer import ExplorationResult, Explorer
from .mutations import MutationReport, run_mutations
from .model import Workload


def _sanitized_live_findings(world: int = 2) -> tuple[int, list[Finding]]:
    """One sanitized end-to-end shm run; returns (events, divergences)."""
    import numpy as np

    from ...cluster.backends.shm import SharedMemoryBackend
    from ...cluster.transport import Message
    from .sanitizer import check_events

    with SharedMemoryBackend(world_size=world, ring_bytes=1 << 16, sanitize=True) as backend:
        pools = [backend.allocate_pool(rank, 16) for rank in range(world)]
        for rank, pool in enumerate(pools):
            pool[:] = np.arange(16, dtype=np.float64) * (rank + 1)
        for round_index in range(2 if world > 1 else 0):
            messages = [
                Message(
                    src=src,
                    dst=(src + 1 + round_index % (world - 1)) % world,
                    payload=np.arange(8, dtype=np.float64) + src,
                    nbytes=64,
                    match_id=f"r{round_index}s{src}",
                )
                for src in range(world)
            ]
            backend.route_round(messages)
        refs = backend.resolve_pool_refs(pools, list(range(world)))
        if refs is not None:
            order = tuple(range(world))
            step = 16 // world
            chunks = [(j * step, (j + 1) * step, order) for j in range(world)]
            backend.pool_ref_reduce(refs, chunks, add_zero=True)
        backend.run_rank_tasks(_pool_sum, {rank: () for rank in range(world)})
        backend.close()
        events = backend.protocol_events
    return len(events), check_events(events)


def _pool_sum(pool, *args):  # module-level: workers pickle it by reference
    return float(pool.sum()) if pool is not None else 0.0


@dataclass
class ProtocolReport:
    """Aggregated verdict of the protocol gate (see module doc)."""

    explorations: list[ExplorationResult] = field(default_factory=list)
    mutation_report: MutationReport | None = None
    live_events: int | None = None
    live_findings: list[Finding] = field(default_factory=list)
    live_error: str | None = None

    @property
    def ok(self) -> bool:
        return (
            all(result.ok for result in self.explorations)
            and (self.mutation_report is None or self.mutation_report.ok)
            and not self.live_findings
            and self.live_error is None
        )

    def all_findings(self) -> list[Finding]:
        findings: list[Finding] = []
        for result in self.explorations:
            findings.extend(result.findings())
        findings.extend(self.live_findings)
        return findings

    def render(self) -> str:
        lines = ["protocol model exploration:"]
        lines.extend(f"  {result.describe()}" for result in self.explorations)
        for result in self.explorations:
            for finding in result.findings():
                lines.append(finding.explain())
        if self.mutation_report is not None:
            lines.append("mutation testing:")
            lines.extend(f"  {line}" for line in self.mutation_report.render().splitlines())
        if self.live_error is not None:
            lines.append(f"live conformance: ERROR ({self.live_error})")
        elif self.live_events is not None:
            verdict = "clean" if not self.live_findings else "DIVERGED"
            lines.append(
                f"live conformance: {verdict} "
                f"({self.live_events} events from a sanitized shm run)"
            )
            lines.extend(finding.explain() for finding in self.live_findings)
        lines.append(f"protocol gate: {'ok' if self.ok else 'FAILED'}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "explorations": [result.to_dict() for result in self.explorations],
            "mutations": (
                self.mutation_report.to_dict() if self.mutation_report is not None else None
            ),
            "live": {
                "events": self.live_events,
                "error": self.live_error,
                "findings": [finding.to_dict() for finding in self.live_findings],
            },
        }


def analyze_protocol(
    worlds: tuple[int, ...] = (1, 2, 4),
    mutations: bool = True,
    live: bool = True,
    explorer: Explorer | None = None,
) -> ProtocolReport:
    """Run the full protocol gate (exploration + mutations + live run)."""
    explorer = explorer or Explorer()
    report = ProtocolReport()
    for world in worlds:
        report.explorations.append(explorer.explore(Workload(world=world)))
    for world in worlds:
        report.explorations.append(explorer.explore(Workload(world=world, batched=True)))
    for world in worlds:
        if world > 1:  # a 1-member collective never takes the pool-ref path
            report.explorations.append(explorer.explore(Workload(world=world, reduce=True)))
            report.explorations.append(
                explorer.explore(Workload(world=world, batched=True, reduce=True))
            )
    if mutations:
        report.mutation_report = run_mutations(explorer=explorer)
    if live:
        try:
            report.live_events, report.live_findings = _sanitized_live_findings()
        except Exception as exc:  # pragma: no cover - environment-dependent
            report.live_error = f"{type(exc).__name__}: {exc}"
    return report
