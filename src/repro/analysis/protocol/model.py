"""Executable state-machine model of the shared-memory backend protocol.

:class:`~repro.cluster.backends.shm.SharedMemoryBackend` implements a
hand-rolled multiprocess protocol: seq-stamped ring records, doorbell/ack
pipes, a barrier per round, a per-round ring budget with inline fallback,
pool-segment mapping, and multi-stage teardown.  This module models that
protocol as a small transition system the interleaving explorer
(:mod:`.explorer`) can check exhaustively:

* **roles** — one *parent* process and one *worker* per rank;
* **channels** — per worker, a doorbell FIFO (parent→worker), an ack FIFO
  (worker→parent), and two ring buffers (``in``/``out``) modelled at the
  granularity the safety argument needs: byte offsets, 8-byte alignment,
  wraparound, per-round budgets, and a seq + destination stamp per record;
* **guarded transitions** — the parent executes a straight-line *program*
  (round posting, ack barriers, pool mapping, graceful teardown) while each
  worker runs the reactive doorbell loop (`recv → read → echo → ack`).

The model covers both wire protocols the backend speaks.  The legacy
per-round mode posts one pipe doorbell per round and barriers each ack.
The **batched** mode (``Workload(batched=True)``) mirrors the PR 9 steady
state: the parent *stages* a whole iteration's rounds as one program of
ring records sharing a batch seq, rings a single seq-stamped *flag word*
(a one-slot overwrite register, not a FIFO), and the worker executes the
entire program before setting its own ack flag word; pipes stay reserved
for control (``pool``/``close``).  A flag word whose seq was never bumped
cannot wake the worker — the model classifies that quiescent state as a
lost wakeup — and an ack raised before the staged program finished
executing violates :data:`RULE_PROGRAM`.

The pool-ref collectives (PR 10) add a third item kind, ``reduce``: the
parent ships a tiny descriptor and the worker folds its chunk *in place*
across every rank's mapped pool segment, then broadcasts by writing the
peers' segments directly.  Two invariants guard the fast path
(:data:`RULE_POOLREF`): a descriptor may only dereference pool segments
the executing worker actually mapped, and the batch ack may not be raised
until every staged reduce completed its peer-segment writes — the parent
reads the reduced slices right after the ack barrier.

Transitions validate the protocol invariants as they fire (seq monotonicity,
stamp matching, ring-slot overlap, budget handling, segment lifecycle); a
quiescent state that is not a clean termination is classified as deadlock,
lost wakeup, orphaned worker, missed barrier, or leaked segment.  Violations
surface as :class:`~repro.analysis.report.Finding` objects whose witness is
the interleaving trace, in the happens-before witness style.

:class:`Faults` injects the protocol bugs the mutation harness
(:mod:`.mutations`) seeds — each knob corresponds to a one-line bug a real
backend patch could introduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..report import Finding

#: Ring-record seq stamp size, mirroring ``shm._SEQ.size``.
STAMP_BYTES = 8

#: Destination stamp meaning "the parent" (echo records travel worker→parent).
PARENT = -1

# Worker reactive phases.
_RECV = "recv"
_READ = "read"
_ECHO = "echo"
_ACK = "ack"

#: Protocol rule identifiers (one per invariant class).
RULE_DEADLOCK = "protocol-deadlock"
RULE_LOST_WAKEUP = "protocol-lost-wakeup"
RULE_SEQ = "protocol-seq"
RULE_DELIVERY = "protocol-delivery"
RULE_RING_OVERLAP = "protocol-ring-overlap"
RULE_BUDGET = "protocol-budget"
RULE_LIFECYCLE = "protocol-lifecycle"
RULE_BARRIER = "protocol-barrier"
RULE_LEAK = "protocol-leak"
RULE_ORPHAN = "protocol-orphan"
RULE_CONFORMANCE = "protocol-conformance"
RULE_PROGRAM = "protocol-program"
RULE_POOLREF = "protocol-poolref"

ALL_RULES = (
    RULE_DEADLOCK,
    RULE_LOST_WAKEUP,
    RULE_SEQ,
    RULE_DELIVERY,
    RULE_RING_OVERLAP,
    RULE_BUDGET,
    RULE_LIFECYCLE,
    RULE_BARRIER,
    RULE_LEAK,
    RULE_ORPHAN,
    RULE_CONFORMANCE,
    RULE_PROGRAM,
    RULE_POOLREF,
)


class Violation(Exception):
    """Internal control flow: a transition tripped a protocol invariant."""

    def __init__(self, finding: Finding) -> None:
        super().__init__(finding.message)
        self.finding = finding


def _finding(rule: str, message: str, rank: int | None = None, seq: int | None = None) -> Finding:
    return Finding(rule=rule, severity="error", message=message, rank=rank, seq=seq)


@dataclass(frozen=True)
class Faults:
    """Seeded protocol bugs; all default off (the faithful protocol).

    Each field flips one guarded behaviour of the model into the broken
    variant a plausible backend bug would produce.  The mutation harness
    constructs one :class:`Faults` per seeded bug and asserts the explorer
    reports exactly the matching root-cause finding.
    """

    #: (rank, seq) pairs whose worker ack is silently dropped.
    drop_ack: tuple[tuple[int, int], ...] = ()
    #: (rank, round) pairs whose doorbell reuses the previous seq number.
    stale_seq: tuple[tuple[int, int], ...] = ()
    #: ranks whose segments the parent unlinks *before* join (early unlink).
    early_unlink: tuple[int, ...] = ()
    #: round indices whose ack barrier the parent skips entirely.
    skip_barrier: tuple[int, ...] = ()
    #: force ring placement even when the per-round budget refuses (the
    #: inline-overflow fallback is "forgotten").
    force_place: bool = False
    #: ranks that receive a second close doorbell (double close).
    double_close: tuple[int, ...] = ()
    #: (rank, round) pairs whose records are stamped for the wrong rank.
    wrong_dst: tuple[tuple[int, int], ...] = ()
    #: ranks the parent abandons: no close, no join, no unlink (orphan).
    orphan: tuple[int, ...] = ()
    #: ranks whose segments are never unlinked (leak).
    skip_unlink: tuple[int, ...] = ()
    #: rounds posted without awaiting the previous round's barrier first
    #: (pipelined rounds; drives write-before-read-complete ring overlap).
    pipeline_rounds: bool = False
    #: ranks that get one extra round doorbell posted *after* their close
    #: doorbell (use-after-close: the wakeup is lost behind the shutdown).
    post_after_close: tuple[int, ...] = ()
    #: ranks whose workers ack a batch flag word before executing the staged
    #: program (ack-before-program-end; batched mode only).
    ack_early: tuple[int, ...] = ()
    #: (rank, batch) pairs whose doorbell flag word reuses the previous batch
    #: seq — the flag is "rung" but its value never changes, so the spinning
    #: worker cannot observe the new batch (batched mode only).
    stale_flag: tuple[tuple[int, int], ...] = ()
    #: (dst, owner) pairs whose pool-mapping doorbell the parent skips: dst's
    #: worker never maps owner's pool segment, so any reduce descriptor that
    #: targets it resolves against an unmapped segment.
    poolref_unmapped: tuple[tuple[int, int], ...] = ()
    #: ranks whose workers ack a reduce-carrying batch before completing the
    #: in-place peer-segment writes (reduce result published before the
    #: broadcast-by-write phase ran; batched mode only).
    skip_reduce_write: tuple[int, ...] = ()


@dataclass
class _Record:
    """One live ring record: [off, off+nbytes) stamped (seq, dst)."""

    off: int
    nbytes: int  # stamp + payload, the footprint in the ring
    seq: int
    dst: int
    read: bool = False

    def key(self) -> tuple[int, int, int, int, bool]:
        return (self.off, self.nbytes, self.seq, self.dst, self.read)


@dataclass
class _Ring:
    """One shared-memory ring: mirrors ``shm._RingWriter`` placement."""

    capacity: int
    records: list[_Record] = field(default_factory=list)
    next_off: int = 0
    used: int = 0  # budget consumed since begin_round

    def clone(self) -> _Ring:
        return _Ring(
            self.capacity,
            [replace(r) for r in self.records],
            self.next_off,
            self.used,
        )

    def key(self) -> tuple:
        return (self.next_off, self.used, tuple(r.key() for r in self.records))

    def begin_round(self) -> None:
        self.used = 0

    def place(self, payload_bytes: int) -> tuple[int, int] | None:
        """Compute the next record placement; ``None`` means over budget."""
        total = STAMP_BYTES + payload_bytes
        off = (self.next_off + 7) & ~7
        waste = off - self.next_off
        if off + total > self.capacity:
            waste += self.capacity - off
            off = 0
        if total > self.capacity or self.used + waste + total > self.capacity:
            return None
        return off, waste

    def write(
        self, seq: int, dst: int, payload_bytes: int, *, force: bool, writer_rank: int | None
    ) -> tuple[int, int] | None:
        """Write one record; returns (offset, nbytes) or ``None`` for inline.

        ``force=True`` models the budget-overflow bug: the record is rammed
        into the ring even though placement refused.
        """
        placed = self.place(payload_bytes)
        total = STAMP_BYTES + payload_bytes
        if placed is None:
            if not force:
                return None  # the correct inline-pipe fallback
            raise Violation(
                _finding(
                    RULE_BUDGET,
                    f"record of {total} bytes exceeds the ring's per-round budget "
                    f"({self.capacity} bytes) but was placed in the ring instead of "
                    "falling back to the inline pipe",
                    rank=writer_rank,
                    seq=seq,
                )
            )
        off, waste = placed
        lo, hi = off, off + total
        for record in self.records:
            if not record.read and record.off < hi and lo < record.off + record.nbytes:
                raise Violation(
                    _finding(
                        RULE_RING_OVERLAP,
                        f"ring write [{lo}, {hi}) for seq {seq} overlaps the live "
                        f"unread record at offset {record.off} (seq {record.seq}): "
                        "write-before-read-complete",
                        rank=writer_rank,
                        seq=seq,
                    )
                )
        # Reclaim fully-read records the new write covers.
        self.records = [
            r for r in self.records if not (r.read and r.off < hi and lo < r.off + r.nbytes)
        ]
        self.records.append(_Record(off=off, nbytes=total, seq=seq, dst=dst))
        self.next_off = off + total
        self.used += waste + total
        return off, total

    def read(self, off: int, expected_seq: int, expected_dst: int, reader: int | None) -> None:
        """Validate and consume the record at ``off`` (stamp + dst checks)."""
        for record in self.records:
            if record.off == off and not record.read:
                if record.seq != expected_seq:
                    raise Violation(
                        _finding(
                            RULE_SEQ,
                            f"ring record at offset {off} is stamped seq {record.seq}, "
                            f"expected {expected_seq}: stale or regressed sequence",
                            rank=reader,
                            seq=expected_seq,
                        )
                    )
                if record.dst != expected_dst:
                    raise Violation(
                        _finding(
                            RULE_DELIVERY,
                            f"ring record at offset {off} (seq {record.seq}) is stamped "
                            f"for rank {record.dst} but was delivered to rank "
                            f"{expected_dst}: wrong-rank delivery",
                            rank=reader,
                            seq=expected_seq,
                        )
                    )
                record.read = True
                return
        raise Violation(
            _finding(
                RULE_SEQ,
                f"no live record at ring offset {off} for seq {expected_seq}: "
                "the read raced the write or consumed a stale entry",
                rank=reader,
                seq=expected_seq,
            )
        )


#: A doorbell-entry describing where one record travels:
#: ("ring", offset) or ("inline", payload_bytes).
_EntryT = tuple[str, int]


@dataclass
class _Worker:
    """One rank server: the reactive doorbell loop."""

    rank: int
    alive: bool = True
    expected: int = 0
    phase: str = _RECV
    cur_op: str = ""
    cur_seq: int = -1
    cur_data: tuple = ()
    echo_entries: tuple[_EntryT, ...] = ()
    #: pool segment ids this worker has attached (cross-rank: every owner's
    #: pool maps into every worker, the reduce executors' address space).
    pool_segs: tuple[int, ...] = ()
    #: batch items actually executed before the ack flag was set (batched
    #: mode; the faithful worker always executes the whole staged program).
    executed: int = 0
    #: reduce items whose in-place peer-segment writes completed before the
    #: ack flag was set (the faithful worker completes all of them).
    reduced: int = 0

    def clone(self) -> _Worker:
        return replace(self)

    def key(self) -> tuple:
        return (
            self.rank,
            self.alive,
            self.expected,
            self.phase,
            self.cur_op,
            self.cur_seq,
            self.cur_data,
            self.echo_entries,
            self.pool_segs,
            self.executed,
            self.reduced,
        )


@dataclass
class _Segment:
    """One named shared-memory segment (ring or pool)."""

    seg_id: int
    kind: str  # "in" | "out" | "pool"
    rank: int
    unlinked: bool = False

    def clone(self) -> _Segment:
        return replace(self)

    def key(self) -> tuple:
        return (self.seg_id, self.kind, self.rank, self.unlinked)


# Parent program instructions (straight-line; guards block, never branch):
#   ("post", dst, op, sizes, round_index[, needs])   op in {"round", "task",
#       "reduce"}; ``needs`` (reduce only) lists the pool-owner ranks the
#       staged descriptors dereference
#   ("await", dst)
#   ("stage", dst, kind, sizes, batch_index[, needs])  kind in {"round",
#       "task", "reduce"}
#   ("flag", dst, batch_index)
#   ("flagwait", dst)
#   ("pool", dst, owner)   map owner's pool segment into dst's worker
#   ("close", rank)
#   ("join", rank)
#   ("unlink", rank)
#   ("end",)
_Instr = tuple


@dataclass
class ModelState:
    """The whole system state: parent + workers + channels + segments."""

    world: int
    faults: Faults
    program: tuple[_Instr, ...]
    pc: int = 0
    parent_done: bool = False
    next_seq: dict[int, int] = field(default_factory=dict)
    #: per destination, FIFO of (seq, op) posted but not yet barriered
    outstanding: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    door: dict[int, list[tuple]] = field(default_factory=dict)
    ack: dict[int, list[tuple]] = field(default_factory=dict)
    #: per destination, the seq-stamped doorbell flag word — a single-slot
    #: OVERWRITE register (the shared-memory u64), not a FIFO: (seq, items)
    door_flag: dict[int, tuple | None] = field(default_factory=dict)
    #: per destination, the ack flag word: (seq, executed, echo_entries,
    #: reduced)
    ack_flag: dict[int, tuple | None] = field(default_factory=dict)
    #: per destination, the staged-but-not-yet-flagged batch: (seq, items)
    open_batch: dict[int, tuple[int, tuple]] = field(default_factory=dict)
    #: per destination, how many items the last flagged program contained
    flagged: dict[int, int] = field(default_factory=dict)
    #: per destination, how many of those items were reduces
    flagged_reduces: dict[int, int] = field(default_factory=dict)
    #: pool owner rank -> its (single) pool segment id
    pool_seg_ids: dict[int, int] = field(default_factory=dict)
    in_ring: dict[int, _Ring] = field(default_factory=dict)
    out_ring: dict[int, _Ring] = field(default_factory=dict)
    workers: dict[int, _Worker] = field(default_factory=dict)
    segments: list[_Segment] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Exploration plumbing
    # ------------------------------------------------------------------
    def clone(self) -> ModelState:
        return ModelState(
            world=self.world,
            faults=self.faults,
            program=self.program,
            pc=self.pc,
            parent_done=self.parent_done,
            next_seq=dict(self.next_seq),
            outstanding={k: list(v) for k, v in self.outstanding.items()},
            door={k: list(v) for k, v in self.door.items()},
            ack={k: list(v) for k, v in self.ack.items()},
            door_flag=dict(self.door_flag),
            ack_flag=dict(self.ack_flag),
            open_batch=dict(self.open_batch),
            flagged=dict(self.flagged),
            flagged_reduces=dict(self.flagged_reduces),
            pool_seg_ids=dict(self.pool_seg_ids),
            in_ring={k: v.clone() for k, v in self.in_ring.items()},
            out_ring={k: v.clone() for k, v in self.out_ring.items()},
            workers={k: v.clone() for k, v in self.workers.items()},
            segments=[s.clone() for s in self.segments],
        )

    def fingerprint(self) -> tuple:
        return (
            self.pc,
            self.parent_done,
            tuple(sorted(self.next_seq.items())),
            tuple((k, tuple(v)) for k, v in sorted(self.outstanding.items())),
            tuple((k, tuple(v)) for k, v in sorted(self.door.items())),
            tuple((k, tuple(v)) for k, v in sorted(self.ack.items())),
            tuple(sorted(self.door_flag.items())),
            tuple(sorted(self.ack_flag.items())),
            tuple(sorted(self.open_batch.items())),
            tuple(sorted(self.flagged.items())),
            tuple(sorted(self.flagged_reduces.items())),
            tuple(sorted(self.pool_seg_ids.items())),
            tuple((k, v.key()) for k, v in sorted(self.in_ring.items())),
            tuple((k, v.key()) for k, v in sorted(self.out_ring.items())),
            tuple((k, v.key()) for k, v in sorted(self.workers.items())),
            tuple(s.key() for s in self.segments),
        )

    # ------------------------------------------------------------------
    # Enabledness
    # ------------------------------------------------------------------
    def parent_enabled(self) -> bool:
        if self.parent_done or self.pc >= len(self.program):
            return False
        instr = self.program[self.pc]
        if instr[0] == "await":
            return bool(self.ack[instr[1]])
        if instr[0] == "flagwait":
            return self.ack_flag.get(instr[1]) is not None
        if instr[0] == "join":
            return not self.workers[instr[1]].alive
        return True

    def _flag_ready(self, rank: int) -> bool:
        """Whether rank's spinning worker can observe its doorbell flag.

        The worker spins until the flag word carries the seq it expects; a
        stale value (seq already consumed) leaves the spin loop blocked —
        that is the whole point of the seq stamp.
        """
        flag = self.door_flag.get(rank)
        return flag is not None and flag[0] == self.workers[rank].expected

    def worker_enabled(self, rank: int) -> bool:
        worker = self.workers[rank]
        if not worker.alive:
            return False
        if worker.phase == _RECV:
            return bool(self.door[rank]) or self._flag_ready(rank)
        return True  # mid-protocol phases never block

    def enabled_procs(self) -> list[str]:
        procs = []
        if self.parent_enabled():
            procs.append("parent")
        for rank in range(self.world):
            if self.worker_enabled(rank):
                procs.append(f"worker:{rank}")
        return procs

    def footprint(self, proc: str) -> frozenset[tuple[str, int]]:
        """Objects the proc's next transition touches (independence relation)."""
        if proc == "parent":
            instr = self.program[self.pc]
            op = instr[0]
            if op == "post":
                return frozenset({("door", instr[1]), ("inring", instr[1]), ("life", instr[1])})
            if op == "await":
                return frozenset({("ack", instr[1]), ("outring", instr[1])})
            if op == "stage":
                return frozenset({("inring", instr[1])})
            if op == "flag":
                return frozenset({("door", instr[1])})
            if op == "flagwait":
                return frozenset({("ack", instr[1]), ("outring", instr[1])})
            if op == "pool":
                return frozenset({("door", instr[1]), ("seg", instr[2]), ("life", instr[1])})
            if op == "close":
                return frozenset({("door", instr[1]), ("life", instr[1])})
            if op == "join":
                return frozenset({("life", instr[1])})
            if op == "unlink":
                return frozenset({("seg", instr[1]), ("life", instr[1])})
            return frozenset()
        rank = int(proc.split(":")[1])
        worker = self.workers[rank]
        if worker.phase == _RECV:
            return frozenset({("door", rank), ("life", rank)})
        if worker.phase == _READ:
            return frozenset({("inring", rank)})
        if worker.phase == _ECHO:
            return frozenset({("outring", rank)})
        # ack / pool-attach / close-finish: touches the ack pipe, possibly
        # segments and liveness.  A pool attach touches the *owner's*
        # segment (cross-rank mapping), so include it in the footprint.
        objects = {("ack", rank), ("seg", rank), ("life", rank)}
        if worker.cur_op == "pool" and worker.cur_data:
            seg = self.segments[worker.cur_data[0]]
            objects.add(("seg", seg.rank))
        return frozenset(objects)

    # ------------------------------------------------------------------
    # Transition semantics
    # ------------------------------------------------------------------
    def step(self, proc: str) -> tuple[str, Finding | None]:
        """Fire ``proc``'s enabled transition in place.

        Returns ``(description, finding)``; a non-``None`` finding means the
        transition tripped an invariant and the state is a counterexample.
        """
        try:
            if proc == "parent":
                return self._step_parent(), None
            return self._step_worker(int(proc.split(":")[1])), None
        except Violation as violation:
            return violation.finding.message, violation.finding

    def _take_seq(self, dst: int, round_index: int | None) -> int:
        seq = self.next_seq[dst]
        self.next_seq[dst] = seq + 1
        if round_index is not None and (dst, round_index) in self.faults.stale_seq:
            return max(0, seq - 1)  # reuse the previous round's seq: stale
        return seq

    def _check_pool_refs(self, rank: int, worker: _Worker, needs: tuple, seq: int) -> None:
        """A reduce's descriptors must dereference only mapped, live segments."""
        for owner in needs:
            attached = any(
                self.segments[seg_id].rank == owner and not self.segments[seg_id].unlinked
                for seg_id in worker.pool_segs
            )
            if not attached:
                raise Violation(
                    _finding(
                        RULE_POOLREF,
                        f"worker {rank} executes a reduce whose descriptor targets "
                        f"rank {owner}'s pool segment, which this worker never "
                        "mapped: unmapped pool ref",
                        rank=rank,
                        seq=seq,
                    )
                )

    def _check_worker_alive(self, rank: int, what: str) -> None:
        if not self.workers[rank].alive:
            raise Violation(
                _finding(
                    RULE_LIFECYCLE,
                    f"parent posted {what} to worker {rank} after it exited: "
                    "the doorbell can never be received",
                    rank=rank,
                )
            )

    def _step_parent(self) -> str:
        instr = self.program[self.pc]
        self.pc += 1
        op = instr[0]
        if op == "post":
            _, dst, kind, sizes, round_index, *rest = instr
            needs = rest[0] if rest else ()
            # No liveness check here: round/task doorbells ride a buffered
            # pipe, and the real backend's send to a worker that is mid-exit
            # succeeds and vanishes.  An undelivered doorbell surfaces at
            # quiescence as a lost wakeup (the classification that names the
            # root cause), not as an eager send failure.
            seq = self._take_seq(dst, round_index)
            ring_dst = dst
            stamp_dst = dst
            if round_index is not None and (dst, round_index) in self.faults.wrong_dst:
                stamp_dst = (dst + 1) % self.world
            ring = self.in_ring[ring_dst]
            ring.begin_round()
            entries: list[_EntryT] = []
            for nbytes in sizes:
                placed = ring.write(
                    seq, stamp_dst, nbytes, force=self.faults.force_place, writer_rank=dst
                )
                entries.append(("inline", nbytes) if placed is None else ("ring", placed[0]))
            data = (tuple(entries), needs) if kind == "reduce" else tuple(entries)
            self.door[dst].append((kind, seq, data))
            self.outstanding[dst].append((seq, kind))
            return f"parent posts {kind} seq {seq} to worker {dst} ({len(sizes)} record(s))"
        if op == "await":
            dst = instr[1]
            status, seq, entries = self.ack[dst].pop(0)
            if not self.outstanding[dst]:
                raise Violation(
                    _finding(
                        RULE_SEQ,
                        f"parent received ack seq {seq} from worker {dst} with no "
                        "outstanding round: duplicated or unsolicited ack",
                        rank=dst,
                        seq=seq,
                    )
                )
            expected, kind = self.outstanding[dst].pop(0)
            if seq != expected:
                raise Violation(
                    _finding(
                        RULE_SEQ,
                        f"worker {dst} acked seq {seq}, parent expected seq {expected} "
                        f"({kind}): ack/seq mismatch",
                        rank=dst,
                        seq=expected,
                    )
                )
            if entries is not None:
                out = self.out_ring[dst]
                for entry in entries:
                    if entry[0] == "ring":
                        out.read(entry[1], seq, PARENT, reader=dst)
            return f"parent barriers on worker {dst} ack seq {seq} ({kind})"
        if op == "stage":
            _, dst, kind, sizes, _batch_index, *rest = instr
            needs = rest[0] if rest else ()
            opened = self.open_batch.get(dst)
            if opened is None:
                # Opening a batch takes one seq for the whole program and
                # resets the ring budget once (shm._batch / begin_round).
                seq = self._take_seq(dst, None)
                self.in_ring[dst].begin_round()
                items: tuple = ()
            else:
                seq, items = opened
            ring = self.in_ring[dst]
            entries: list[_EntryT] = []
            for nbytes in sizes:
                placed = ring.write(
                    seq, dst, nbytes, force=self.faults.force_place, writer_rank=dst
                )
                entries.append(("inline", nbytes) if placed is None else ("ring", placed[0]))
            self.open_batch[dst] = (seq, items + ((kind, tuple(entries), needs),))
            return (
                f"parent stages {kind} seq {seq} into worker {dst}'s batch "
                f"({len(sizes)} record(s))"
            )
        if op == "flag":
            _, dst, batch_index = instr
            seq, items = self.open_batch.pop(dst)
            flag_seq = seq
            if (dst, batch_index) in self.faults.stale_flag:
                flag_seq = max(0, seq - 1)  # the flag word was never bumped
            self.door_flag[dst] = (flag_seq, items)
            self.outstanding[dst].append((seq, "batch"))
            self.flagged[dst] = len(items)
            self.flagged_reduces[dst] = sum(1 for item in items if item[0] == "reduce")
            stale = " with a stale seq" if flag_seq != seq else ""
            return (
                f"parent rings worker {dst}'s doorbell flag word for batch "
                f"seq {seq}{stale} ({len(items)} item(s))"
            )
        if op == "flagwait":
            dst = instr[1]
            seq, executed, entries, reduced = self.ack_flag[dst]
            self.ack_flag[dst] = None
            if not self.outstanding[dst]:
                raise Violation(
                    _finding(
                        RULE_SEQ,
                        f"parent observed ack flag seq {seq} from worker {dst} with "
                        "no outstanding batch: duplicated or unsolicited ack",
                        rank=dst,
                        seq=seq,
                    )
                )
            expected, kind = self.outstanding[dst].pop(0)
            if seq != expected:
                raise Violation(
                    _finding(
                        RULE_SEQ,
                        f"worker {dst}'s ack flag carries seq {seq}, parent expected "
                        f"seq {expected} ({kind}): ack/seq mismatch",
                        rank=dst,
                        seq=expected,
                    )
                )
            want = self.flagged.pop(dst, 0)
            if executed != want:
                raise Violation(
                    _finding(
                        RULE_PROGRAM,
                        f"worker {dst} set its ack flag for batch seq {seq} after "
                        f"executing {executed} of {want} staged program item(s): "
                        "ack-before-program-end",
                        rank=dst,
                        seq=seq,
                    )
                )
            want_reduced = self.flagged_reduces.pop(dst, 0)
            if reduced != want_reduced:
                raise Violation(
                    _finding(
                        RULE_POOLREF,
                        f"worker {dst} set its ack flag for batch seq {seq} after "
                        f"completing {reduced} of {want_reduced} in-place reduce "
                        "write(s): the parent would read pool slices peers never "
                        "wrote (ack-before-peer-write)",
                        rank=dst,
                        seq=seq,
                    )
                )
            out = self.out_ring[dst]
            for entry in entries:
                if entry[0] == "ring":
                    out.read(entry[1], seq, PARENT, reader=dst)
            return f"parent observes worker {dst}'s ack flag for batch seq {seq}"
        if op == "pool":
            _, dst, owner = instr
            self._check_worker_alive(dst, "pool doorbell")
            seg_id = self.pool_seg_ids.get(owner)
            if seg_id is None:
                # The owner's pool is allocated once; each worker then gets
                # its own mapping doorbell (the all-rank cross-mapping the
                # in-place reduce executors rely on).
                seg = _Segment(seg_id=len(self.segments), kind="pool", rank=owner)
                self.segments.append(seg)
                seg_id = seg.seg_id
                self.pool_seg_ids[owner] = seg_id
            seq = self._take_seq(dst, None)
            self.door[dst].append(("pool", seq, seg_id))
            self.outstanding[dst].append((seq, "pool"))
            return (
                f"parent maps rank {owner}'s pool segment {seg_id} into "
                f"worker {dst} (seq {seq})"
            )
        if op == "close":
            rank = instr[1]
            if self.workers[rank].alive or rank in self.faults.double_close:
                # The real backend checks is_alive before the graceful close;
                # posting to a dead worker is itself the double-close bug.
                self._check_worker_alive(rank, "close doorbell")
            seq = self._take_seq(rank, None)
            self.door[rank].append(("close", seq, None))
            self.outstanding[rank].append((seq, "close"))
            return f"parent posts close seq {seq} to worker {rank}"
        if op == "join":
            return f"parent joins worker {instr[1]}"
        if op == "unlink":
            rank = instr[1]
            if self.workers[rank].alive:
                raise Violation(
                    _finding(
                        RULE_LIFECYCLE,
                        f"parent unlinked worker {rank}'s segments while the worker "
                        "is still attached (unlink must happen after join)",
                        rank=rank,
                    )
                )
            for seg in self.segments:
                if seg.rank == rank:
                    seg.unlinked = True
            return f"parent unlinks worker {rank}'s segments"
        if op == "end":
            self.parent_done = True
            return "parent exits"
        raise AssertionError(f"unknown parent instruction {instr!r}")

    def _step_worker(self, rank: int) -> str:
        worker = self.workers[rank]
        if worker.phase == _RECV and not self.door[rank]:
            # Flag-word doorbell (batched steady state).  Enabledness already
            # required flag seq == expected, so no seq violation can fire
            # here; a stale flag simply never wakes the worker and is
            # classified at quiescence.
            seq, items = self.door_flag[rank]
            self.door_flag[rank] = None
            worker.expected += 1
            worker.cur_op, worker.cur_seq = "batch", seq
            worker.cur_data = items
            if rank in self.faults.ack_early:
                worker.executed = 0
                worker.reduced = 0
                worker.echo_entries = ()
                worker.phase = _ACK
                return (
                    f"worker {rank} consumes flag-word seq {seq} but jumps straight "
                    "to the ack (seeded: ack before program end)"
                )
            worker.phase = _READ
            return (
                f"worker {rank} observes doorbell flag seq {seq} "
                f"({len(items)} program item(s))"
            )
        if worker.phase == _RECV:
            op, seq, data = self.door[rank].pop(0)
            if seq != worker.expected:
                direction = "regressed" if seq < worker.expected else "skipped ahead"
                raise Violation(
                    _finding(
                        RULE_SEQ,
                        f"worker {rank} received doorbell seq {seq}, expected "
                        f"{worker.expected}: sequence {direction}",
                        rank=rank,
                        seq=seq,
                    )
                )
            worker.expected += 1
            worker.cur_op, worker.cur_seq = op, seq
            worker.cur_data = data if isinstance(data, tuple) else (data,)
            worker.phase = _READ if op in ("round", "task", "reduce") else _ACK
            return f"worker {rank} receives {op} doorbell seq {seq}"
        if worker.phase == _READ and worker.cur_op == "batch":
            ring = self.in_ring[rank]
            done: list[tuple[str, tuple[int, ...]]] = []
            for kind, item_entries, needs in worker.cur_data:
                if kind == "reduce":
                    self._check_pool_refs(rank, worker, needs, worker.cur_seq)
                sizes = []
                for entry in item_entries:
                    if entry[0] == "ring":
                        ring.read(entry[1], worker.cur_seq, rank, reader=rank)
                        record = next(r for r in ring.records if r.off == entry[1])
                        sizes.append(record.nbytes - STAMP_BYTES)
                    else:
                        sizes.append(entry[1])
                done.append((kind, tuple(sizes)))
            worker.cur_data = tuple(done)
            worker.phase = _ECHO
            return (
                f"worker {rank} reads its staged program for batch seq "
                f"{worker.cur_seq} ({len(done)} item(s)) from its inbound ring"
            )
        if worker.phase == _READ and worker.cur_op == "reduce":
            entries, needs = worker.cur_data
            self._check_pool_refs(rank, worker, needs, worker.cur_seq)
            ring = self.in_ring[rank]
            sizes = []
            for entry in entries:
                if entry[0] == "ring":
                    ring.read(entry[1], worker.cur_seq, rank, reader=rank)
                    record = next(r for r in ring.records if r.off == entry[1])
                    sizes.append(record.nbytes - STAMP_BYTES)
                else:
                    sizes.append(entry[1])
            worker.cur_data = tuple(sizes)
            worker.phase = _ECHO
            return (
                f"worker {rank} reads the reduce spec for seq {worker.cur_seq} "
                "and folds its chunk in place across the mapped pool segments"
            )
        if worker.phase == _READ:
            ring = self.in_ring[rank]
            sizes = []
            for entry in worker.cur_data:
                if entry[0] == "ring":
                    ring.read(entry[1], worker.cur_seq, rank, reader=rank)
                    record = next(r for r in ring.records if r.off == entry[1])
                    sizes.append(record.nbytes - STAMP_BYTES)
                else:
                    sizes.append(entry[1])
            worker.cur_data = tuple(sizes)
            worker.phase = _ECHO
            return (
                f"worker {rank} reads {len(sizes)} record(s) for seq {worker.cur_seq} "
                "from its inbound ring"
            )
        if worker.phase == _ECHO and worker.cur_op == "batch":
            out = self.out_ring[rank]
            out.begin_round()
            flat: list[_EntryT] = []
            for _kind, sizes in worker.cur_data:
                for nbytes in sizes:
                    placed = out.write(
                        worker.cur_seq, PARENT, nbytes, force=False, writer_rank=rank
                    )
                    flat.append(("inline", nbytes) if placed is None else ("ring", placed[0]))
            worker.echo_entries = tuple(flat)
            worker.executed = len(worker.cur_data)
            n_reduces = sum(1 for kind, _ in worker.cur_data if kind == "reduce")
            skipped = rank in self.faults.skip_reduce_write and n_reduces > 0
            worker.reduced = 0 if skipped else n_reduces
            worker.phase = _ACK
            note = " (seeded: peer-segment writes skipped)" if skipped else ""
            return (
                f"worker {rank} echoes batch seq {worker.cur_seq} "
                f"({worker.executed} item(s)) into its outbound ring{note}"
            )
        if worker.phase == _ECHO:
            out = self.out_ring[rank]
            out.begin_round()
            entries: list[_EntryT] = []
            for nbytes in worker.cur_data:
                placed = out.write(worker.cur_seq, PARENT, nbytes, force=False, writer_rank=rank)
                entries.append(("inline", nbytes) if placed is None else ("ring", placed[0]))
            worker.echo_entries = tuple(entries)
            worker.phase = _ACK
            return f"worker {rank} echoes seq {worker.cur_seq} into its outbound ring"
        if worker.phase == _ACK and worker.cur_op == "batch":
            seq, executed = worker.cur_seq, worker.executed
            self.ack_flag[rank] = (seq, executed, worker.echo_entries, worker.reduced)
            worker.echo_entries = ()
            worker.cur_data = ()
            worker.executed = 0
            worker.reduced = 0
            worker.phase = _RECV
            return (
                f"worker {rank} sets its ack flag word for batch seq {seq} "
                f"({executed} item(s) executed)"
            )
        if worker.phase == _ACK:
            op, seq = worker.cur_op, worker.cur_seq
            if op == "pool":
                seg = self.segments[worker.cur_data[0]]
                if seg.unlinked:
                    raise Violation(
                        _finding(
                            RULE_LIFECYCLE,
                            f"worker {rank} attached pool segment {seg.seg_id} after "
                            "the parent unlinked it (map-after-unlink)",
                            rank=rank,
                            seq=seq,
                        )
                    )
                worker.pool_segs = worker.pool_segs + (seg.seg_id,)
            payload = worker.echo_entries if op in ("round", "task", "reduce") else None
            dropped = (rank, seq) in self.faults.drop_ack
            if not dropped:
                self.ack[rank].append(("ok", seq, payload))
            worker.echo_entries = ()
            worker.cur_data = ()
            worker.phase = _RECV
            if op == "close":
                worker.alive = False
                return f"worker {rank} acks close seq {seq} and exits"
            verb = "drops the ack for" if dropped else "acks"
            return f"worker {rank} {verb} {op} seq {seq}"
        raise AssertionError(f"unknown worker phase {worker.phase!r}")

    # ------------------------------------------------------------------
    # Quiescence classification
    # ------------------------------------------------------------------
    def quiescence_finding(self) -> Finding | None:
        """Classify a state with no enabled transitions.

        ``None`` means clean termination; otherwise the single root-cause
        finding for the stuck or leaky state.
        """
        if not self.parent_done:
            return self._blocked_parent_finding()
        for rank, worker in sorted(self.workers.items()):
            if worker.alive:
                return _finding(
                    RULE_ORPHAN,
                    f"parent exited while worker {rank} is still alive and blocked "
                    "on its doorbell pipe: orphaned worker (no close was sent)",
                    rank=rank,
                )
        for rank in range(self.world):
            if self.door[rank]:
                op, seq, _ = self.door[rank][0]
                return _finding(
                    RULE_LOST_WAKEUP,
                    f"{op} doorbell seq {seq} for worker {rank} was never received "
                    "(the worker exited first): lost wakeup",
                    rank=rank,
                    seq=seq,
                )
        for rank in range(self.world):
            pending = [(seq, op) for seq, op in self.outstanding[rank] if op != "close"]
            if pending:
                seq, op = pending[0]
                return _finding(
                    RULE_BARRIER,
                    f"{op} seq {seq} posted to worker {rank} was never barriered: "
                    "the parent returned without draining the worker's ack",
                    rank=rank,
                    seq=seq,
                )
        for rank in range(self.world):
            # Close acks are legitimately unread (join is the close barrier).
            stray = [
                (seq, status)
                for status, seq, _ in self.ack[rank]
                if (seq, "close") not in self.outstanding[rank]
            ]
            if stray:
                seq, _status = stray[0]
                return _finding(
                    RULE_BARRIER,
                    f"worker {rank}'s ack seq {seq} was never consumed by the parent",
                    rank=rank,
                    seq=seq,
                )
        for seg in self.segments:
            if not seg.unlinked:
                return _finding(
                    RULE_LEAK,
                    f"shared-memory segment {seg.seg_id} ({seg.kind}, rank {seg.rank}) "
                    "was never unlinked: leaked segment",
                    rank=seg.rank,
                )
        return None

    def _blocked_parent_finding(self) -> Finding:
        instr = self.program[self.pc] if self.pc < len(self.program) else ("end",)
        if instr[0] == "await":
            dst = instr[1]
            worker = self.workers[dst]
            if not worker.alive:
                return _finding(
                    RULE_LOST_WAKEUP,
                    f"parent is blocked awaiting an ack from worker {dst}, but the "
                    "worker already exited: the ack will never arrive",
                    rank=dst,
                )
            # Worker alive and quiescent means it is blocked in recv with an
            # empty doorbell queue: a parent->worker->parent wait cycle.
            return _finding(
                RULE_DEADLOCK,
                f"wait cycle: parent is blocked on worker {dst}'s ack pipe while "
                f"worker {dst} is blocked on its doorbell pipe — the ack for the "
                "current round was never sent",
                rank=dst,
            )
        if instr[0] == "flagwait":
            dst = instr[1]
            worker = self.workers[dst]
            if not worker.alive:
                return _finding(
                    RULE_LOST_WAKEUP,
                    f"parent is blocked awaiting worker {dst}'s ack flag word, but "
                    "the worker already exited: the flag will never be set",
                    rank=dst,
                )
            flag = self.door_flag.get(dst)
            if flag is not None and flag[0] < worker.expected:
                return _finding(
                    RULE_LOST_WAKEUP,
                    f"worker {dst}'s doorbell flag word holds stale seq {flag[0]} "
                    f"while the spinning worker expects seq {worker.expected}: the "
                    "flag was rung without bumping its seq, so the wakeup is lost "
                    "and the parent waits forever on the ack flag",
                    rank=dst,
                    seq=flag[0],
                )
            return _finding(
                RULE_DEADLOCK,
                f"wait cycle: parent is blocked on worker {dst}'s ack flag word "
                f"while worker {dst} spins on its doorbell flag — the batch ack "
                "was never set",
                rank=dst,
            )
        if instr[0] == "join":
            rank = instr[1]
            return _finding(
                RULE_DEADLOCK,
                f"wait cycle: parent is joined on worker {rank} but the worker is "
                "blocked in its doorbell loop and will never exit (close was not "
                "delivered or not processed)",
                rank=rank,
            )
        return _finding(
            RULE_DEADLOCK,
            f"parent is stuck at instruction {instr!r} with no enabled transition",
        )


# ----------------------------------------------------------------------
# Workload → model construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Workload:
    """Shape of the protocol run the model executes.

    ``record_sizes[r]`` is the per-destination list of payload sizes for
    round ``r`` (every rank participates in every round, matching
    ``Transport.exchange``'s all-rank barrier).  ``oversize`` appends one
    record larger than the ring to exercise the inline-overflow fallback.

    ``batched`` switches rounds and tasks to the flag-word protocol: rounds
    are staged into per-destination programs of ``batch_rounds`` rounds each
    (``0`` = the whole workload in one batch), flagged once, and barriered
    on the ack flag word; ``pool``/``close`` stay on the pipe, as in the
    real backend.

    ``reduce`` appends one pool-ref reduce per rank after the pool mapping
    (implying ``pool``): each worker folds its chunk in place across every
    owner's mapped segment — staged/flagged in batched mode, posted over the
    pipe otherwise — exercising the descriptor-resolution and
    peer-write-before-ack invariants (:data:`RULE_POOLREF`).
    """

    world: int = 2
    rounds: int = 2
    record_sizes: tuple[int, ...] = (64, 24)
    ring_bytes: int = 256
    pool: bool = True
    task: bool = True
    oversize: bool = False
    batched: bool = False
    batch_rounds: int = 0
    reduce: bool = False


def build_model(workload: Workload, faults: Faults | None = None) -> ModelState:
    """Build the initial model state for ``workload`` with ``faults`` seeded."""
    faults = faults or Faults()
    world = workload.world
    program: list[_Instr] = []
    sizes = list(workload.record_sizes)
    if workload.oversize:
        sizes = sizes + [workload.ring_bytes + 32]
    use_pool = workload.pool or workload.reduce
    reduce_needs = tuple(range(world))

    def extend_pool() -> None:
        # allocate_pool maps each owner's segment into *every* worker,
        # serially (post + ack per worker), mirroring shm._map_pool's loop.
        for owner in range(world):
            for dst in range(world):
                if (dst, owner) in faults.poolref_unmapped:
                    continue
                program.append(("pool", dst, owner))
                program.append(("await", dst))

    if workload.batched:
        # Flag-word steady state: stage each group of rounds as one program
        # per destination, ring one flag, barrier one ack flag.  Pool stays
        # on the pipe; the task runs as its own trailing batch, matching
        # run_rank_tasks' stage-then-flush.
        per = workload.batch_rounds or max(workload.rounds, 1)
        batch_index = 0
        r = 0
        while r < workload.rounds:
            chunk = min(per, workload.rounds - r)
            for dst in range(world):
                for _ in range(chunk):
                    program.append(("stage", dst, "round", tuple(sizes), batch_index))
            for dst in range(world):
                program.append(("flag", dst, batch_index))
            for dst in range(world):
                program.append(("flagwait", dst))
            r += chunk
            batch_index += 1
        if use_pool:
            extend_pool()
        if workload.reduce:
            for dst in range(world):
                program.append(("stage", dst, "reduce", (32,), batch_index, reduce_needs))
            for dst in range(world):
                program.append(("flag", dst, batch_index))
            for dst in range(world):
                program.append(("flagwait", dst))
            batch_index += 1
        if workload.task:
            for rank in range(world):
                program.append(("stage", rank, "task", (32,), batch_index))
            for rank in range(world):
                program.append(("flag", rank, batch_index))
            for rank in range(world):
                program.append(("flagwait", rank))
    else:
        for r in range(workload.rounds):
            for dst in range(world):
                program.append(("post", dst, "round", tuple(sizes), r))
            if r in faults.skip_barrier:
                continue
            if faults.pipeline_rounds and r < workload.rounds - 1:
                continue  # post the next round before barriering this one
            for dst in range(world):
                program.append(("await", dst))
        if faults.pipeline_rounds:
            # Drain every ack that was pipelined past its round.
            for r in range(workload.rounds - 1 if workload.rounds else 0):
                if r in faults.skip_barrier:
                    continue
                for dst in range(world):
                    program.append(("await", dst))
        if use_pool:
            extend_pool()
        if workload.reduce:
            # Post-all-then-await-all, mirroring the pipe-mode
            # pool_ref_reduce: the reduces overlap across workers.
            for dst in range(world):
                program.append(("post", dst, "reduce", (32,), None, reduce_needs))
            for dst in range(world):
                program.append(("await", dst))
        if workload.task:
            for rank in range(world):
                program.append(("post", rank, "task", (32,), None))
            for rank in range(world):
                program.append(("await", rank))
    for rank in range(world):
        if rank in faults.orphan:
            continue
        program.append(("close", rank))
        if rank in faults.double_close:
            program.append(("close", rank))
        if rank in faults.post_after_close:
            program.append(("post", rank, "round", tuple(sizes), None))
    for rank in range(world):
        if rank in faults.orphan:
            continue
        if rank in faults.early_unlink:
            program.append(("unlink", rank))
            program.append(("join", rank))
        else:
            program.append(("join", rank))
            if rank not in faults.skip_unlink:
                program.append(("unlink", rank))
    program.append(("end",))

    state = ModelState(world=world, faults=faults, program=tuple(program))
    for rank in range(world):
        state.next_seq[rank] = 0
        state.outstanding[rank] = []
        state.door[rank] = []
        state.ack[rank] = []
        state.door_flag[rank] = None
        state.ack_flag[rank] = None
        state.in_ring[rank] = _Ring(capacity=workload.ring_bytes)
        state.out_ring[rank] = _Ring(capacity=workload.ring_bytes)
        state.workers[rank] = _Worker(rank=rank)
        state.segments.append(_Segment(seg_id=len(state.segments), kind="in", rank=rank))
        state.segments.append(_Segment(seg_id=len(state.segments), kind="out", rank=rank))
    return state
