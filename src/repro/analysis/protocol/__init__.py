"""repro.analysis.protocol — model checker + conformance sanitizer for
transport backends.

The shm backend (:mod:`repro.cluster.backends.shm`) implements a hand-rolled
multiprocess protocol; this package verifies it three ways:

* :mod:`~repro.analysis.protocol.model` — an executable state-machine model
  of the protocol (roles, channels, guarded transitions, seeded
  :class:`Faults`);
* :mod:`~repro.analysis.protocol.explorer` — bounded-exhaustive
  interleaving exploration with DPOR-style partial-order reduction and
  counterexample witnesses;
* :mod:`~repro.analysis.protocol.sanitizer` — replay of real cross-process
  event streams (``REPRO_PROTOCOL_SANITIZE=1``) with vector clocks extended
  across OS processes;
* :mod:`~repro.analysis.protocol.mutations` — the seeded-bug suite proving
  each protocol rule actually fires, with exact root-cause localization;
* :mod:`~repro.analysis.protocol.driver` — :func:`analyze_protocol`, the
  ``python -m repro analyze --protocol`` gate.
"""

from .driver import ProtocolReport, analyze_protocol  # noqa: F401
from .explorer import ExplorationResult, Explorer, explore  # noqa: F401
from .model import (  # noqa: F401
    ALL_RULES,
    Faults,
    ModelState,
    Workload,
    build_model,
)
from .mutations import (  # noqa: F401
    MUTATIONS,
    Mutation,
    MutationOutcome,
    MutationReport,
    run_mutation,
    run_mutations,
)
from .sanitizer import check_events, vc_leq  # noqa: F401

__all__ = [
    "ALL_RULES",
    "MUTATIONS",
    "ExplorationResult",
    "Explorer",
    "Faults",
    "ModelState",
    "Mutation",
    "MutationOutcome",
    "MutationReport",
    "ProtocolReport",
    "Workload",
    "analyze_protocol",
    "build_model",
    "check_events",
    "explore",
    "run_mutation",
    "run_mutations",
    "vc_leq",
]
