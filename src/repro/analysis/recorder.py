"""Trace recorder: instrumentation mode for the simulated communication stack.

A :class:`TraceRecorder` installs on a
:class:`~repro.cluster.transport.Transport` and passively logs every
communication event into the comm-op IR:

* :meth:`on_exchange` — called by the transport for every point-to-point
  message round; records a ``send`` op at the source rank and a ``recv`` op
  at the destination rank (with wire size, so compressed traffic is visible);
* :meth:`on_collective` — called by the primitives in
  :mod:`repro.core.primitives` at every invocation; records one op per group
  member carrying the payload size, codec, error-feedback flag and the
  member's peer set;
* :meth:`on_local` — called by the engine for local scheduling events
  (optimizer updates on buckets).

Recording is an explicit mode: nothing is logged until ``install`` (or the
``recording`` context manager) attaches the recorder, and the hot path pays
one attribute check per round when not recording.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator, Sequence

from ..cluster.transport import Message, Transport
from .ir import CommTrace


class TraceRecorder:
    """Accumulates a :class:`CommTrace` from live instrumentation callbacks."""

    def __init__(self, world_size: int) -> None:
        self.trace = CommTrace(world_size)
        self._step = -1
        self._round = 0
        self._transport: Transport | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self, transport: Transport) -> TraceRecorder:
        if transport.tracer is not None and transport.tracer is not self:
            raise RuntimeError("transport already has a tracer installed")
        transport.tracer = self
        self._transport = transport
        return self

    def uninstall(self) -> None:
        if self._transport is not None and self._transport.tracer is self:
            self._transport.tracer = None
        self._transport = None

    def begin_step(self, step: int) -> None:
        """Mark the start of training iteration ``step`` for subsequent ops."""
        self._step = step

    # ------------------------------------------------------------------
    # Instrumentation callbacks
    # ------------------------------------------------------------------
    def on_exchange(self, messages: Sequence[Message]) -> None:
        round_id = self._round
        self._round += 1
        for message in messages:
            match = message.match_id or ""
            self.trace.add(
                message.src,
                "send",
                step=self._step,
                round=round_id,
                nbytes=float(message.nbytes),
                peers=(message.dst,),
                match=match,
            )
            self.trace.add(
                message.dst,
                "recv",
                step=self._step,
                round=round_id,
                nbytes=float(message.nbytes),
                peers=(message.src,),
                match=match,
            )

    def on_collective(
        self,
        group,
        kind: str,
        elements: int,
        bucket: str = "",
        compressor: str = "",
        biased: bool = False,
        error_feedback: bool = False,
        peers_by_member: Sequence[Sequence[int]] | None = None,
    ) -> None:
        """Record one collective invocation as an op on every group member.

        ``peers_by_member[i]`` holds member ``i``'s neighbor *indices within
        the group* (gossip primitives); they are translated to global ranks.
        Without it, every member's peer set is the whole rest of the group.
        """
        ranks = tuple(group.ranks)
        for i, rank in enumerate(ranks):
            if peers_by_member is not None:
                peers = tuple(ranks[j] for j in peers_by_member[i])
            else:
                peers = tuple(r for r in ranks if r != rank)
            self.trace.add(
                rank,
                kind,
                step=self._step,
                bucket=bucket,
                elements=int(elements),
                compressor=compressor,
                biased=biased,
                error_feedback=error_feedback,
                peers=peers,
                group=ranks,
            )

    def on_local(self, rank: int, kind: str, bucket: str = "", elements: int = 0) -> None:
        self.trace.add(rank, kind, step=self._step, bucket=bucket, elements=int(elements))


@contextmanager
def recording(transport: Transport) -> Iterator[TraceRecorder]:
    """Context manager: record all traffic on ``transport`` while inside."""
    recorder = TraceRecorder(transport.spec.world_size).install(transport)
    try:
        yield recorder
    finally:
        recorder.uninstall()
