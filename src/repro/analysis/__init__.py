"""repro.analysis — static verifier for BAGUA execution plans and traces.

The execution optimizer (paper §3) rewrites communication schedules behind
the user's back; this subsystem catches the bugs such rewriting can
introduce — mismatched collectives across ranks, asymmetric gossip peers,
optimizer updates racing overlapped communication, aliasing bucket buffers,
and biased compressors running without error-feedback state — *before* a
run, from a recorded one-iteration dry run or a lowered plan.

Layers:

* :mod:`~repro.analysis.ir` — the comm-op IR (:class:`CommOp`,
  :class:`CommTrace`, bucket :class:`BucketExtent` layouts);
* :mod:`~repro.analysis.recorder` — :class:`TraceRecorder`, the
  instrumentation mode of the communication stack;
* :mod:`~repro.analysis.lowering` — :func:`lower_plan` /
  :func:`lower_schedule` / :func:`layout_from_buckets`, the static
  producers;
* :mod:`~repro.analysis.checkers` — the five heuristic rules plus the four
  happens-before rules;
* :mod:`~repro.analysis.hb` — the happens-before engine: vector clocks over
  (rank, thread, event) triples, race/deadlock/lost-update/staleness
  detection with printable witnesses;
* :mod:`~repro.analysis.report` — :class:`Finding` and report rendering;
* :mod:`~repro.analysis.driver` — :func:`analyze_algorithm` /
  :func:`analyze_all`, the ``python -m repro analyze`` entry points.
"""

from .checkers import (  # noqa: F401
    ALL_CHECKERS,
    HB_CHECKERS,
    BufferAliasingChecker,
    Checker,
    EFInvariantChecker,
    HBDeadlockChecker,
    HBLostUpdateChecker,
    HBRaceChecker,
    HBStalenessChecker,
    OverlapRaceChecker,
    PeerMatchingChecker,
    RankSymmetryChecker,
    run_checkers,
)
from .driver import analyze_algorithm, analyze_all  # noqa: F401
from .hb import HBEvent, HBGraph, build_hb, check_hb  # noqa: F401
from .ir import (  # noqa: F401
    AnalysisSubject,
    BucketExtent,
    CommOp,
    CommTrace,
    ParamView,
)
from .lowering import (  # noqa: F401
    layout_from_buckets,
    layout_from_plan,
    layout_from_schedule,
    lower_plan,
    lower_schedule,
)
from .recorder import TraceRecorder, recording  # noqa: F401
from .report import AnalysisReport, Finding, SweepReport  # noqa: F401

__all__ = [
    "ALL_CHECKERS",
    "AnalysisReport",
    "AnalysisSubject",
    "BucketExtent",
    "BufferAliasingChecker",
    "Checker",
    "CommOp",
    "CommTrace",
    "EFInvariantChecker",
    "Finding",
    "HB_CHECKERS",
    "HBDeadlockChecker",
    "HBEvent",
    "HBGraph",
    "HBLostUpdateChecker",
    "HBRaceChecker",
    "HBStalenessChecker",
    "OverlapRaceChecker",
    "ParamView",
    "PeerMatchingChecker",
    "RankSymmetryChecker",
    "SweepReport",
    "TraceRecorder",
    "analyze_algorithm",
    "analyze_all",
    "build_hb",
    "check_hb",
    "layout_from_buckets",
    "layout_from_plan",
    "layout_from_schedule",
    "lower_plan",
    "lower_schedule",
    "recording",
    "run_checkers",
]
