"""repro.analysis — static verifier for BAGUA execution plans and traces.

The execution optimizer (paper §3) rewrites communication schedules behind
the user's back; this subsystem catches the bugs such rewriting can
introduce — mismatched collectives across ranks, asymmetric gossip peers,
optimizer updates racing overlapped communication, aliasing bucket buffers,
and biased compressors running without error-feedback state — *before* a
run, from a recorded one-iteration dry run or a lowered plan.

Layers:

* :mod:`~repro.analysis.ir` — the comm-op IR (:class:`CommOp`,
  :class:`CommTrace`, bucket :class:`BucketExtent` layouts);
* :mod:`~repro.analysis.recorder` — :class:`TraceRecorder`, the
  instrumentation mode of the communication stack;
* :mod:`~repro.analysis.lowering` — :func:`lower_plan` /
  :func:`lower_schedule` / :func:`layout_from_buckets`, the static
  producers;
* :mod:`~repro.analysis.checkers` — the five heuristic rules plus the four
  happens-before rules;
* :mod:`~repro.analysis.hb` — the happens-before engine: vector clocks over
  (rank, thread, event) triples, race/deadlock/lost-update/staleness
  detection with printable witnesses;
* :mod:`~repro.analysis.report` — :class:`Finding` and report rendering;
* :mod:`~repro.analysis.symbolic` — :class:`PlanPoint` / :func:`lower_point`
  / :func:`check_plan_static`: plan *descriptions* lower straight into the
  IR with no transport or dry run, plus the static rules (gossip weight
  stochasticity, hierarchy divisibility, compressor compatibility, bucket
  feasibility) provable from the description alone;
* :mod:`~repro.analysis.planspace` — :func:`enumerate_points` /
  :func:`sweep_planspace` / :func:`prune_points`, the plan-space walker
  that prunes the auto-tuner's search space (``repro analyze --plans``);
* :mod:`~repro.analysis.protocol` — the transport-protocol model checker:
  an executable state machine of the shm backend's multiprocess protocol,
  an exhaustive interleaving explorer with DPOR-style partial-order
  reduction, the cross-process conformance sanitizer
  (``REPRO_PROTOCOL_SANITIZE=1``) and its mutation-testing harness
  (``repro analyze --protocol``);
* :mod:`~repro.analysis.driver` — :func:`analyze_algorithm` /
  :func:`analyze_all`, the ``python -m repro analyze`` entry points.
"""

from .checkers import (  # noqa: F401
    ALL_CHECKERS,
    HB_CHECKERS,
    BufferAliasingChecker,
    Checker,
    EFInvariantChecker,
    HBDeadlockChecker,
    HBLostUpdateChecker,
    HBRaceChecker,
    HBStalenessChecker,
    OverlapRaceChecker,
    PeerMatchingChecker,
    RankSymmetryChecker,
    run_checkers,
)
from .driver import analyze_algorithm, analyze_all  # noqa: F401
from .hb import HBEvent, HBGraph, build_hb, check_hb  # noqa: F401
from .ir import (  # noqa: F401
    AnalysisSubject,
    BucketExtent,
    CommOp,
    CommTrace,
    ParamView,
)
from .lowering import (  # noqa: F401
    CommPattern,
    emit_iteration,
    layout_from_buckets,
    layout_from_plan,
    layout_from_schedule,
    lower_plan,
    lower_schedule,
)
from .planspace import (  # noqa: F401
    PlanSpaceReport,
    PlanVerdict,
    enumerate_points,
    prune_points,
    sweep_planspace,
    verify_point,
)
from .protocol import (  # noqa: F401
    Faults,
    ProtocolReport,
    Workload,
    analyze_protocol,
    check_events,
    explore,
)
from .recorder import TraceRecorder, recording  # noqa: F401
from .report import AnalysisReport, Finding, SweepReport  # noqa: F401
from .symbolic import (  # noqa: F401
    CommModel,
    PlanPoint,
    check_plan_static,
    comm_model_of,
    gossip_peer_sets,
    gossip_weight_matrix,
    lower_point,
    probe_profile,
    symbolic_schedule,
)

__all__ = [
    "ALL_CHECKERS",
    "AnalysisReport",
    "AnalysisSubject",
    "BucketExtent",
    "BufferAliasingChecker",
    "Checker",
    "CommModel",
    "CommOp",
    "CommPattern",
    "CommTrace",
    "EFInvariantChecker",
    "Faults",
    "Finding",
    "HB_CHECKERS",
    "HBDeadlockChecker",
    "HBEvent",
    "HBGraph",
    "HBLostUpdateChecker",
    "HBRaceChecker",
    "HBStalenessChecker",
    "OverlapRaceChecker",
    "ParamView",
    "PeerMatchingChecker",
    "PlanPoint",
    "PlanSpaceReport",
    "PlanVerdict",
    "ProtocolReport",
    "RankSymmetryChecker",
    "SweepReport",
    "TraceRecorder",
    "Workload",
    "analyze_algorithm",
    "analyze_all",
    "analyze_protocol",
    "check_events",
    "explore",
    "build_hb",
    "check_hb",
    "check_plan_static",
    "comm_model_of",
    "emit_iteration",
    "enumerate_points",
    "gossip_peer_sets",
    "gossip_weight_matrix",
    "layout_from_buckets",
    "layout_from_plan",
    "layout_from_schedule",
    "lower_plan",
    "lower_point",
    "lower_schedule",
    "probe_profile",
    "prune_points",
    "recording",
    "run_checkers",
    "sweep_planspace",
    "symbolic_schedule",
    "verify_point",
]
