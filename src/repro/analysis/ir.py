"""Comm-op IR: the static-analysis view of a BAGUA execution.

Every analyzable artifact — a recorded dry run, a lowered
:class:`~repro.core.optimizer_framework.ExecutionPlan`, or a hand-built
counterexample in a test — is normalized into the same two structures:

* a :class:`CommTrace` of per-rank :class:`CommOp` sequences.  One op is one
  event in a rank's program order: a collective invocation, a point-to-point
  send/recv, or a local scheduling event (communication issue/await,
  optimizer update, error-feedback residual write);
* a tuple of :class:`BucketExtent` records describing the address layout of
  the fused buckets and the parameter views inside them.

The checkers in :mod:`repro.analysis.checkers` consume only this IR, so the
same rules apply to live traces and to plans that were never executed —
exactly how the DAG model of S-SGD (Shi et al., 2018) treats communication
schedules as statically analyzable dependency graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterable

#: Op kinds with collective scope (all group members participate).  The
#: ``reduce``/``broadcast`` kinds are the intra-node phases of a lowered
#: hierarchical schedule (H); the inter-node phase keeps the allreduce kinds.
COLLECTIVE_KINDS = frozenset(
    {
        "allreduce",
        "compressed_allreduce",
        "gossip",
        "compressed_gossip",
        "barrier",
        "reduce",
        "broadcast",
    }
)
#: Op kinds with point-to-point scope.
P2P_KINDS = frozenset({"send", "recv"})
#: Local scheduling kinds (no communication; used by the overlap analysis).
SCHEDULE_KINDS = frozenset({"issue", "await", "opt_step", "ef_write"})
#: Gossip kinds (peer-wise synchronization instead of a group barrier).
GOSSIP_KINDS = frozenset({"gossip", "compressed_gossip"})


@dataclass(frozen=True)
class CommOp:
    """One event in a single rank's communication/scheduling program.

    Instances are immutable value objects; hot producers (the lowerings and
    the recorder, which emit tens of thousands of ops per analysis sweep)
    build them through :meth:`CommTrace.add`, which bypasses the generated
    ``__init__`` — see ``_OP_DEFAULTS`` below.

    ``seq`` is the op's position in the rank's program order; ``group`` is the
    tuple of global ranks participating in a collective (empty for p2p and
    local ops).  ``peers`` is the rank's own neighbor set for gossip ops, or
    the single remote endpoint for send/recv.

    The happens-before engine (:mod:`repro.analysis.hb`) reads four more
    fields.  ``thread`` names the executing stream within the rank (lowered
    overlapped schedules run collectives on a ``"comm"`` thread concurrent
    with ``"main"``); ``gate`` names the intra-rank dependency the op waits
    on (one of the ``GATE_*`` constants of :mod:`repro.core.schedule`, empty
    for plain program order); ``match`` is a stable id pairing a ``send``
    with its ``recv``; ``start``/``stop`` are the element interval the op
    touches in its rank's address space (-1 when unknown — the engine then
    falls back to the bucket's extent in the subject layout).
    """

    rank: int
    seq: int
    kind: str
    step: int = -1
    round: int = -1
    bucket: str = ""
    elements: int = 0
    nbytes: float = 0.0
    compressor: str = ""
    biased: bool = False
    error_feedback: bool = False
    peers: tuple[int, ...] = ()
    group: tuple[int, ...] = ()
    thread: str = "main"
    gate: str = ""
    match: str = ""
    start: int = -1
    stop: int = -1

    @property
    def scope(self) -> str:
        if self.kind in P2P_KINDS:
            return "p2p"
        if self.kind in SCHEDULE_KINDS:
            return "schedule"
        return "collective"

    def signature(self) -> tuple:
        """What must match across ranks for the schedule to be symmetric.

        Peer sets are deliberately excluded: decentralized ranks legally talk
        to different neighbors, but kind, payload size and codec must agree.
        """
        return (self.kind, self.bucket, self.elements, self.compressor, self.error_feedback)

    def describe(self) -> str:
        parts = [self.kind]
        if self.bucket:
            parts.append(self.bucket)
        if self.elements:
            parts.append(f"{self.elements}el")
        if self.compressor:
            parts.append(self.compressor)
        if self.peers:
            parts.append(f"peers={list(self.peers)}")
        return ":".join(str(p) for p in parts)


#: Field-name -> default of :class:`CommOp`, for the fast construction path
#: in :meth:`CommTrace.add`.  The generated dataclass ``__init__`` costs one
#: ``object.__setattr__`` per field (the class is frozen); a plain
#: ``__dict__.update`` builds an identical instance ~8x faster, which is
#: what keeps the symbolic plan sweep and the ``--hb`` variant sweep cheap
#: (they emit one op stream per rank x variant x world size).
_OP_DEFAULTS: dict[str, object] = {
    f.name: f.default for f in CommOp.__dataclass_fields__.values()
}
_OP_FIELD_NAMES = frozenset(_OP_DEFAULTS)


class CommTrace:
    """Per-rank op sequences for one analyzed execution (or plan)."""

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self._ops: dict[int, list[CommOp]] = {r: [] for r in range(world_size)}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, rank: int, kind: str, **fields) -> CommOp:
        """Append an op to ``rank``'s program; ``seq`` is assigned here."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of {self.world_size}")
        if not fields.keys() <= _OP_FIELD_NAMES:
            unknown = sorted(fields.keys() - _OP_FIELD_NAMES)
            raise TypeError(f"unknown CommOp field(s): {unknown}")
        ops = self._ops[rank]
        op = CommOp.__new__(CommOp)
        attrs = op.__dict__
        attrs.update(_OP_DEFAULTS)
        attrs.update(fields)
        attrs["rank"] = rank
        attrs["seq"] = len(ops)
        attrs["kind"] = kind
        ops.append(op)
        return op

    def add_prepared(self, rank: int, fields: dict) -> CommOp:
        """Package-internal fast append for hot producers (the lowerings).

        ``fields`` maps validated :class:`CommOp` field names — including
        ``kind`` but never ``rank``/``seq`` — and is not mutated, so
        producers may share one template dict across ranks.  Callers are
        trusted on field names and rank bounds; use :meth:`add` elsewhere.
        """
        ops = self._ops[rank]
        op = CommOp.__new__(CommOp)
        attrs = op.__dict__
        attrs.update(_OP_DEFAULTS)
        attrs.update(fields)
        attrs["rank"] = rank
        attrs["seq"] = len(ops)
        ops.append(op)
        return op

    def extend(self, ops: Iterable[CommOp]) -> None:
        """Append pre-built ops, renumbering ``seq`` per rank."""
        for op in ops:
            self._ops[op.rank].append(replace(op, seq=len(self._ops[op.rank])))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def ranks(self) -> list[int]:
        return list(range(self.world_size))

    def ops_of(self, rank: int) -> list[CommOp]:
        return list(self._ops[rank])

    def all_ops(self) -> list[CommOp]:
        return [op for rank in self.ranks for op in self._ops[rank]]

    def collective_ops(self, rank: int) -> list[CommOp]:
        return [op for op in self._ops[rank] if op.scope == "collective"]

    def p2p_ops(self, rank: int) -> list[CommOp]:
        return [op for op in self._ops[rank] if op.scope == "p2p"]

    def schedule_ops(self, rank: int) -> list[CommOp]:
        return [op for op in self._ops[rank] if op.scope == "schedule"]

    def threads_of(self, rank: int) -> list[str]:
        """Thread names seen on ``rank``, in order of first appearance."""
        seen: list[str] = []
        for op in self._ops[rank]:
            if op.thread not in seen:
                seen.append(op.thread)
        return seen

    def ops_of_thread(self, rank: int, thread: str) -> list[CommOp]:
        """``rank``'s program order restricted to one thread."""
        return [op for op in self._ops[rank] if op.thread == thread]

    @property
    def num_ops(self) -> int:
        return sum(len(ops) for ops in self._ops.values())

    def __repr__(self) -> str:
        return f"CommTrace(world_size={self.world_size}, ops={self.num_ops})"


# ----------------------------------------------------------------------
# Bucket address layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParamView:
    """One parameter's slice of a bucket's (real or planned) address space."""

    name: str
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class BucketExtent:
    """A bucket's address range plus the parameter views it must contain.

    Addresses are element offsets in a shared space: real byte/element
    addresses for live flattened buckets, planned cumulative offsets for
    lowered plans.  Two buckets whose extents intersect alias memory; a view
    outside its bucket's extent reads or writes another bucket's data.
    """

    name: str
    start: int
    stop: int
    views: tuple[ParamView, ...] = ()

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass
class AnalysisSubject:
    """Everything the checker suite needs about one analyzed execution."""

    world_size: int
    trace: CommTrace | None = None
    layout: tuple[BucketExtent, ...] = ()
    #: declared peer topology ("ring") when the algorithm commits to one;
    #: peer-matching then verifies gossip neighbors against it.
    expected_topology: str | None = None
    #: free-form description of where this subject came from (for reports).
    source: str = ""
    notes: dict[str, object] = field(default_factory=dict)
