"""The checker suite: five static rules over the comm-op IR.

Every checker consumes an :class:`~repro.analysis.ir.AnalysisSubject` and
returns :class:`~repro.analysis.report.Finding` objects.  The rules encode
the failure modes that BAGUA-style schedule rewriting (overlap / fusion /
hierarchy, paper §3.4) can introduce silently:

* ``rank-symmetry`` — within each communication group, every member issues
  the same collective sequence with matching sizes/codecs; a divergence is a
  deadlock (one rank waits in a collective the others never enter) or a
  silent size mismatch;
* ``peer-matching`` — decentralized gossip neighbor sets are symmetric per
  round (i lists j iff j lists i), consistent with a declared ring topology,
  and every point-to-point send has a matching receive;
* ``overlap-race`` — in an O-optimized schedule no optimizer update or
  error-feedback write touches a bucket whose communication was issued but
  not yet awaited, and nothing issued is left un-awaited;
* ``buffer-aliasing`` — fused bucket extents never overlap and every
  parameter view stays inside its bucket's extent;
* ``ef-invariant`` — a biased compressor is never used in a collective
  without error-feedback state (§2.2's two-sided error compensation is what
  the convergence proofs assume).
"""

from __future__ import annotations

from collections.abc import Sequence

from .ir import GOSSIP_KINDS, AnalysisSubject, CommOp
from .report import Finding


class Checker:
    """Base class: one rule over one analysis subject."""

    rule: str = "base"

    def check(self, subject: AnalysisSubject) -> list[Finding]:
        raise NotImplementedError

    def finding(self, message: str, severity: str = "error", **loc) -> Finding:
        return Finding(rule=self.rule, severity=severity, message=message, **loc)


# ----------------------------------------------------------------------
# rank-symmetry
# ----------------------------------------------------------------------
class RankSymmetryChecker(Checker):
    """Every member of a group must run the same collective sequence."""

    rule = "rank-symmetry"

    def check(self, subject: AnalysisSubject) -> list[Finding]:
        trace = subject.trace
        if trace is None:
            return []
        findings: list[Finding] = []
        # Ops are compared within each communication group: hierarchical
        # schedules legally run extra collectives on the leader subgroup, so
        # ranks are only held to the groups they are members of.
        by_group: dict[tuple[int, ...], dict[int, list[CommOp]]] = {}
        for rank in trace.ranks:
            for op in trace.collective_ops(rank):
                if not op.group:
                    continue
                by_group.setdefault(op.group, {}).setdefault(rank, []).append(op)

        for group, per_rank in sorted(by_group.items()):
            members = list(group)
            reference_rank = members[0]
            reference = per_rank.get(reference_rank, [])
            for rank in members[1:]:
                ops = per_rank.get(rank, [])
                findings.extend(self._compare(group, reference_rank, reference, rank, ops))
        return findings

    def _compare(
        self,
        group: tuple[int, ...],
        ref_rank: int,
        reference: list[CommOp],
        rank: int,
        ops: list[CommOp],
    ) -> list[Finding]:
        for i in range(min(len(reference), len(ops))):
            if reference[i].signature() != ops[i].signature():
                return [
                    self.finding(
                        f"collective sequence diverges in group {list(group)}: rank "
                        f"{ref_rank} op #{i} is {reference[i].describe()} but rank "
                        f"{rank} issues {ops[i].describe()} — ranks would deadlock "
                        "or reduce mismatched payloads",
                        rank=rank,
                        seq=ops[i].seq,
                        step=ops[i].step,
                    )
                ]
        if len(reference) != len(ops):
            shorter, longer = (rank, ref_rank) if len(ops) < len(reference) else (ref_rank, rank)
            missing = (reference if len(ops) < len(reference) else ops)[min(len(reference), len(ops))]
            return [
                self.finding(
                    f"rank {shorter} issues {min(len(reference), len(ops))} collective(s) in "
                    f"group {list(group)} but rank {longer} issues "
                    f"{max(len(reference), len(ops))}; first unmatched op is "
                    f"{missing.describe()} — rank {longer} would block forever",
                    rank=shorter,
                    seq=missing.seq,
                    step=missing.step,
                )
            ]
        return []


# ----------------------------------------------------------------------
# peer-matching
# ----------------------------------------------------------------------
class PeerMatchingChecker(Checker):
    """Gossip peer sets are symmetric; sends and receives pair up."""

    rule = "peer-matching"

    def check(self, subject: AnalysisSubject) -> list[Finding]:
        trace = subject.trace
        if trace is None:
            return []
        findings = self._check_gossip(subject)
        findings.extend(self._check_p2p(subject))
        return findings

    def _check_gossip(self, subject: AnalysisSubject) -> list[Finding]:
        trace = subject.trace
        findings: list[Finding] = []
        # k-th gossip op of each member of a group forms round k.
        by_group: dict[tuple[int, ...], dict[int, list[CommOp]]] = {}
        for rank in trace.ranks:
            for op in trace.collective_ops(rank):
                if op.kind in GOSSIP_KINDS and op.group:
                    by_group.setdefault(op.group, {}).setdefault(rank, []).append(op)

        for group, per_rank in sorted(by_group.items()):
            rounds = min((len(ops) for ops in per_rank.values()), default=0)
            if len(per_rank) < len(group):
                rounds = 0  # missing ranks entirely — rank-symmetry reports it
            for k in range(rounds):
                peers_of = {rank: set(per_rank[rank][k].peers) for rank in group}
                for rank in group:
                    op = per_rank[rank][k]
                    for peer in sorted(peers_of[rank]):
                        if peer not in peers_of:
                            findings.append(
                                self.finding(
                                    f"gossip round {k}: rank {rank} lists peer {peer} "
                                    f"outside group {list(group)}",
                                    rank=rank,
                                    seq=op.seq,
                                    step=op.step,
                                )
                            )
                        elif rank not in peers_of[peer]:
                            findings.append(
                                self.finding(
                                    f"gossip round {k}: rank {rank} exchanges with "
                                    f"{peer} but rank {peer}'s peer set is "
                                    f"{sorted(peers_of[peer])} — rank {rank} would "
                                    "wait on a recv that is never posted",
                                    rank=rank,
                                    seq=op.seq,
                                    step=op.step,
                                )
                            )
                if subject.expected_topology == "ring":
                    findings.extend(self._check_ring(group, per_rank, k))
        return findings

    def _check_ring(
        self,
        group: tuple[int, ...],
        per_rank: dict[int, list[CommOp]],
        k: int,
    ) -> list[Finding]:
        findings: list[Finding] = []
        n = len(group)
        for i, rank in enumerate(group):
            op = per_rank[rank][k]
            expected = set() if n == 1 else {group[(i - 1) % n], group[(i + 1) % n]}
            if set(op.peers) != expected:
                findings.append(
                    self.finding(
                        f"ring topology declared but gossip round {k} pairs rank "
                        f"{rank} with {sorted(op.peers)} instead of ring neighbors "
                        f"{sorted(expected)}",
                        rank=rank,
                        seq=op.seq,
                        step=op.step,
                    )
                )
        return findings

    def _check_p2p(self, subject: AnalysisSubject) -> list[Finding]:
        trace = subject.trace
        findings: list[Finding] = []
        # Pair (src, dst, nbytes) sends against receives within each round.
        rounds: dict[int, dict[str, list[CommOp]]] = {}
        for rank in trace.ranks:
            for op in trace.p2p_ops(rank):
                rounds.setdefault(op.round, {"send": [], "recv": []})[op.kind].append(op)
        for round_id in sorted(rounds):
            sends = rounds[round_id]["send"]
            recvs = rounds[round_id]["recv"]
            unmatched = list(recvs)
            for send in sends:
                dst = send.peers[0] if send.peers else None
                match = next(
                    (
                        r
                        for r in unmatched
                        if r.rank == dst and r.peers == (send.rank,) and r.nbytes == send.nbytes
                    ),
                    None,
                )
                if match is None:
                    findings.append(
                        self.finding(
                            f"round {round_id}: send from rank {send.rank} to {dst} "
                            f"({send.nbytes:.0f} B) has no matching recv",
                            rank=send.rank,
                            seq=send.seq,
                            step=send.step,
                        )
                    )
                else:
                    unmatched.remove(match)
            for recv in unmatched:
                src = recv.peers[0] if recv.peers else None
                findings.append(
                    self.finding(
                        f"round {round_id}: rank {recv.rank} expects {recv.nbytes:.0f} B "
                        f"from rank {src} but no such send exists — the recv blocks "
                        "forever",
                        rank=recv.rank,
                        seq=recv.seq,
                        step=recv.step,
                    )
                )
        return findings


# ----------------------------------------------------------------------
# overlap-race
# ----------------------------------------------------------------------
class OverlapRaceChecker(Checker):
    """No local write to a bucket while its communication is in flight."""

    rule = "overlap-race"

    WRITE_KINDS = frozenset({"opt_step", "ef_write"})

    def check(self, subject: AnalysisSubject) -> list[Finding]:
        trace = subject.trace
        if trace is None:
            return []
        findings: list[Finding] = []
        for rank in trace.ranks:
            outstanding: dict[str, CommOp] = {}
            for op in trace.ops_of(rank):
                if op.kind == "issue":
                    outstanding[op.bucket] = op
                elif op.kind == "await":
                    outstanding.pop(op.bucket, None)
                elif op.kind in self.WRITE_KINDS:
                    racing = (
                        sorted(outstanding) if not op.bucket else
                        ([op.bucket] if op.bucket in outstanding else [])
                    )
                    for bucket in racing:
                        findings.append(
                            self.finding(
                                f"{op.kind} on {bucket} while its communication "
                                f"(issued at op {outstanding[bucket].seq}) has not "
                                "been awaited — the reduction would read or clobber "
                                "concurrently-written memory",
                                rank=rank,
                                seq=op.seq,
                                bucket=bucket,
                                step=op.step,
                            )
                        )
            for bucket, issue in sorted(outstanding.items()):
                findings.append(
                    self.finding(
                        f"communication of {bucket} issued at op {issue.seq} is never "
                        "awaited — its result is never observed and the next "
                        "iteration races it",
                        rank=rank,
                        seq=issue.seq,
                        bucket=bucket,
                        step=issue.step,
                    )
                )
        return findings


# ----------------------------------------------------------------------
# buffer-aliasing
# ----------------------------------------------------------------------
class BufferAliasingChecker(Checker):
    """Bucket extents are disjoint; every param view stays inside its bucket."""

    rule = "buffer-aliasing"

    def check(self, subject: AnalysisSubject) -> list[Finding]:
        findings: list[Finding] = []
        extents = sorted(subject.layout, key=lambda e: (e.start, e.stop))
        for a, b in zip(extents, extents[1:]):
            if b.start < a.stop:
                findings.append(
                    self.finding(
                        f"bucket {a.name} [{a.start}, {a.stop}) overlaps bucket "
                        f"{b.name} [{b.start}, {b.stop}) — a reduction into one "
                        "silently corrupts the other",
                        bucket=a.name,
                    )
                )
        for extent in subject.layout:
            views = sorted(extent.views, key=lambda v: (v.start, v.stop))
            for view in views:
                if view.stop < view.start:
                    findings.append(
                        self.finding(
                            f"param view {view.name} has negative extent "
                            f"[{view.start}, {view.stop})",
                            bucket=extent.name,
                        )
                    )
                elif view.start < extent.start or view.stop > extent.stop:
                    findings.append(
                        self.finding(
                            f"param view {view.name} [{view.start}, {view.stop}) "
                            f"escapes bucket {extent.name} [{extent.start}, "
                            f"{extent.stop}) — the flat view would touch foreign "
                            "memory",
                            bucket=extent.name,
                        )
                    )
            for va, vb in zip(views, views[1:]):
                if vb.start < va.stop:
                    findings.append(
                        self.finding(
                            f"param views {va.name} and {vb.name} overlap inside "
                            f"bucket {extent.name}",
                            bucket=extent.name,
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# ef-invariant
# ----------------------------------------------------------------------
class EFInvariantChecker(Checker):
    """Biased compressors require error-feedback residual state (§2.2)."""

    rule = "ef-invariant"

    def check(self, subject: AnalysisSubject) -> list[Finding]:
        trace = subject.trace
        if trace is None:
            return []
        findings: list[Finding] = []
        for rank in trace.ranks:
            for op in trace.collective_ops(rank):
                if op.compressor and op.biased and not op.error_feedback:
                    findings.append(
                        self.finding(
                            f"biased compressor {op.compressor!r} used in {op.kind} "
                            "without error-feedback residual state — compression "
                            "error accumulates and the convergence guarantees of "
                            "error-compensated C_LP_S no longer hold",
                            rank=rank,
                            seq=op.seq,
                            bucket=op.bucket or None,
                            step=op.step,
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# Happens-before rules (vector clocks; see repro.analysis.hb)
# ----------------------------------------------------------------------
class HBChecker(Checker):
    """Base for the vector-clock rules: builds/reuses the subject's HB graph.

    Unlike the heuristic rules above, these consume the cross-rank partial
    order of :mod:`repro.analysis.hb` — the graph is built once per subject
    (cached in ``subject.notes``) and shared by all four.
    """

    def check(self, subject: AnalysisSubject) -> list[Finding]:
        from . import hb

        graph = hb.build_hb(subject)
        return [f for f in self._check_graph(graph) if f.rule == self.rule]

    def _check_graph(self, graph) -> list[Finding]:
        raise NotImplementedError


class HBRaceChecker(HBChecker):
    """Overlapping-interval accesses with ≥1 write and no HB order."""

    rule = "hb-race"

    def _check_graph(self, graph) -> list[Finding]:
        from .hb import check_races

        return check_races(graph)


class HBDeadlockChecker(HBChecker):
    """Wait-for cycles and unsatisfiable waits across ranks."""

    rule = "hb-deadlock"

    def _check_graph(self, graph) -> list[Finding]:
        from .hb import check_deadlocks

        return check_deadlocks(graph)


class HBLostUpdateChecker(HBChecker):
    """Error-feedback residual writes unordered with another access."""

    rule = "hb-lost-update"

    def _check_graph(self, graph) -> list[Finding]:
        from .hb import check_lost_updates

        return check_lost_updates(graph)


class HBStalenessChecker(HBChecker):
    """Async updates consuming gradients older than the declared bound."""

    rule = "hb-staleness"

    def _check_graph(self, graph) -> list[Finding]:
        from .hb import check_staleness

        return check_staleness(graph)


#: The default suite, in reporting order.
ALL_CHECKERS: tuple[Checker, ...] = (
    RankSymmetryChecker(),
    PeerMatchingChecker(),
    OverlapRaceChecker(),
    BufferAliasingChecker(),
    EFInvariantChecker(),
)

#: The happens-before suite (``repro analyze --hb``).  Kept separate from
#: :data:`ALL_CHECKERS` so heuristic-rule counterexamples keep firing exactly
#: one rule; the driver opts in with ``hb=True``.
HB_CHECKERS: tuple[Checker, ...] = (
    HBDeadlockChecker(),
    HBRaceChecker(),
    HBLostUpdateChecker(),
    HBStalenessChecker(),
)


def run_checkers(
    subject: AnalysisSubject,
    checkers: Sequence[Checker] | None = None,
) -> list[Finding]:
    """Run ``checkers`` (default: the full suite) over one subject."""
    findings: list[Finding] = []
    for checker in checkers if checkers is not None else ALL_CHECKERS:
        findings.extend(checker.check(subject))
    return findings
