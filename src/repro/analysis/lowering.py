"""Lowering execution plans, schedules and live buckets into the comm-op IR.

Three producers feed the checker suite without (or alongside) a dry run:

* :func:`lower_plan` turns an :class:`ExecutionPlan` into the SPMD schedule
  every rank would execute — communication issues at each bucket's gradient
  -ready point (when overlap is on), awaits, the collective itself, and the
  optimizer updates that must come after.  This is the static path: a plan
  can be verified before anything runs;
* :func:`lower_schedule` does the same for a
  :class:`~repro.core.schedule.BucketSchedule` — the IR the
  :class:`~repro.core.schedule.ScheduledExecutor` actually runs — walking
  its gated event stream, so per-bucket vs barrier update policies lower to
  different (and separately checkable) op orders;
* :func:`layout_from_plan` / :func:`layout_from_schedule` /
  :func:`layout_from_buckets` produce the bucket address layout, planned
  (cumulative offsets) or real (byte addresses of the live flattened
  buffers), for the aliasing analysis.

Lowered ops carry the metadata the happens-before engine
(:mod:`repro.analysis.hb`) consumes: a ``thread`` id (overlapped schedules
run collectives on a ``"comm"`` stream concurrent with ``"main"``), a
``gate`` naming the intra-rank dependency (the ``GATE_*`` constants of
:mod:`repro.core.schedule` — no stringly-typed literals here), and the
``start``/``stop`` element interval of the touched bucket.  With a node
structure (``nodes=``), a hierarchical schedule lowers to its three real
phases — intra-node ``reduce``, inter-node (compressed) ``allreduce`` on
the leader subgroup, intra-node ``broadcast`` — so cross-phase ordering is
verified, not assumed.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..compression.base import Compressor
from ..core.bucket import TensorBucket
from ..core.optimizer_framework import ExecutionPlan
from ..core.schedule import (
    GATE_BACKWARD_END,
    GATE_BARRIER,
    GATE_COMM_DONE,
    GATE_GRAD_READY,
    UPDATE_BARRIER,
    BucketSchedule,
)
from .ir import AnalysisSubject, BucketExtent, CommTrace, ParamView

#: Thread names of a lowered rank program: ``main`` models the training
#: loop (backward, awaits, optimizer), ``comm`` the concurrent reduction
#: stream an overlapped schedule launches collectives on.
MAIN_THREAD = "main"
COMM_THREAD = "comm"


def lower_plan(
    plan: ExecutionPlan,
    world_size: int,
    compressor: Compressor | None = None,
    error_feedback: bool = False,
    nodes: Sequence[Sequence[int]] | None = None,
) -> AnalysisSubject:
    """Lower ``plan`` into the per-rank schedule trace + planned layout.

    The schedule is identical on every rank (the plan is SPMD by
    construction); the value of lowering is that checkers then prove
    properties of the *schedule shape* — every optimizer update on a bucket
    is preceded by the await of that bucket's communication, sizes agree,
    and the planned extents do not alias.

    Internally this delegates to :func:`lower_schedule` on the
    :class:`BucketSchedule` the plan implies, with the plan's historical
    barrier update placement (all updates trail the communication stream).
    """
    schedule = BucketSchedule.from_plan(plan, update_mode=UPDATE_BARRIER)
    subject = lower_schedule(
        schedule, world_size, compressor=compressor,
        error_feedback=error_feedback, nodes=nodes,
    )
    subject.layout = layout_from_plan(plan)
    subject.source = f"plan({plan.config.describe()})"
    return subject


def lower_schedule(
    schedule: BucketSchedule,
    world_size: int,
    compressor: Compressor | None = None,
    error_feedback: bool = False,
    nodes: Sequence[Sequence[int]] | None = None,
) -> AnalysisSubject:
    """Lower a :class:`BucketSchedule` into the per-rank schedule trace.

    This is the executor-facing twin of :func:`lower_plan`: instead of
    re-deriving the op order from the plan's switches, it walks the
    schedule's own gated event stream — so what the checkers prove is the
    *exact* order the :class:`~repro.core.schedule.ScheduledExecutor` runs,
    including the per-bucket vs barrier update placement.

    Under overlap, collectives are emitted on the ``comm`` thread gated on
    their bucket's issue (``grad_ready``) while issues, awaits and updates
    stay on ``main`` — the two-stream structure the happens-before engine
    needs to prove the overlap race-free.  ``nodes`` (an iterable of
    per-node global-rank groups, e.g. from
    :meth:`~repro.cluster.topology.ClusterSpec`) unlocks the hierarchical
    three-phase lowering when ``schedule.hierarchical`` is set; without it
    the comm lowers as one flat-group collective.
    """
    trace = CommTrace(world_size)
    by_index = {b.index: b for b in schedule.buckets}
    codec = compressor.name if compressor is not None else ""
    biased = bool(getattr(compressor, "biased", False)) if compressor is not None else False
    inter_kind = "compressed_allreduce" if compressor is not None else "allreduce"
    flat_group = tuple(range(world_size))
    events = schedule.events()
    layout = layout_from_schedule(schedule)
    extent_of = {extent.name: (extent.start, extent.stop) for extent in layout}

    node_groups: list[tuple[int, ...]] = (
        [tuple(sorted(node)) for node in nodes] if nodes else []
    )
    hierarchical = bool(schedule.hierarchical) and len(node_groups) > 1

    def node_of(rank: int) -> tuple[int, ...]:
        for node in node_groups:
            if rank in node:
                return node
        raise ValueError(f"rank {rank} is in no node of {node_groups}")

    leaders = tuple(node[0] for node in node_groups) if hierarchical else ()

    comm_thread = COMM_THREAD if schedule.overlap_backward else MAIN_THREAD
    comm_gate = GATE_GRAD_READY if schedule.overlap_backward else GATE_BACKWARD_END

    def emit_comm_phases(rank: int, bucket) -> None:
        """The collective phase(s) of one bucket on one rank's comm thread."""
        start, stop = extent_of[bucket.name]
        common = dict(
            bucket=bucket.name, elements=bucket.elements,
            thread=comm_thread, start=start, stop=stop,
        )
        if not hierarchical:
            trace.add(
                rank, inter_kind, gate=comm_gate,
                compressor=codec, biased=biased, error_feedback=error_feedback,
                peers=tuple(r for r in flat_group if r != rank), group=flat_group,
                **common,
            )
            return
        node = node_of(rank)
        gate = comm_gate
        if len(node) > 1:
            # Phase 1: reduce gradients onto the node leader.
            trace.add(
                rank, "reduce", gate=gate,
                peers=tuple(r for r in node if r != rank), group=node,
                **common,
            )
            gate = ""  # later phases follow in comm-thread program order
        if rank in leaders and len(leaders) > 1:
            # Phase 2: the (optionally compressed) inter-node exchange.
            trace.add(
                rank, inter_kind, gate=gate,
                compressor=codec, biased=biased, error_feedback=error_feedback,
                peers=tuple(r for r in leaders if r != rank), group=leaders,
                **common,
            )
            gate = ""
        if len(node) > 1:
            # Phase 3: broadcast the reduced bucket back within the node.
            trace.add(
                rank, "broadcast", gate=gate,
                peers=tuple(r for r in node if r != rank), group=node,
                **common,
            )

    for rank in range(world_size):
        # Under overlap, every comm issues at its grad-ready gate — i.e.
        # concurrently with the rest of backward — before anything awaits.
        if schedule.overlap_backward:
            for event in events:
                if event.kind == "comm":
                    bucket = by_index[event.bucket]
                    start, stop = extent_of[bucket.name]
                    trace.add(
                        rank, "issue", bucket=bucket.name, elements=bucket.elements,
                        thread=MAIN_THREAD, start=start, stop=stop,
                    )
        for event in events:
            bucket = by_index[event.bucket]
            start, stop = extent_of[bucket.name]
            if event.kind == "comm":
                if not schedule.overlap_backward:
                    trace.add(
                        rank, "issue", bucket=bucket.name, elements=bucket.elements,
                        thread=MAIN_THREAD, start=start, stop=stop,
                    )
                emit_comm_phases(rank, bucket)
                trace.add(
                    rank, "await", bucket=bucket.name, elements=bucket.elements,
                    thread=MAIN_THREAD, gate=GATE_COMM_DONE, start=start, stop=stop,
                )
            elif event.kind == "update":
                trace.add(
                    rank, "opt_step", bucket=bucket.name, elements=bucket.elements,
                    thread=MAIN_THREAD,
                    gate=GATE_COMM_DONE if schedule.per_bucket_updates else GATE_BARRIER,
                    start=start, stop=stop,
                )
            # "post" events carry no schedule hazard of their own: the
            # decompression is part of the awaited communication.

    return AnalysisSubject(
        world_size=world_size,
        trace=trace,
        layout=layout,
        source=f"schedule lowering ({schedule.describe()})",
    )


def layout_from_schedule(schedule: BucketSchedule) -> tuple[BucketExtent, ...]:
    """Planned layout implied by a schedule's bucket views (packed extents)."""
    extents: list[BucketExtent] = []
    base = 0
    for bucket in schedule.buckets:
        views = []
        offset = base
        for name, elements in bucket.views:
            views.append(ParamView(name=name, start=offset, stop=offset + elements))
            offset += elements
        extents.append(
            BucketExtent(
                name=bucket.name,
                start=base,
                stop=base + bucket.elements,
                views=tuple(views),
            )
        )
        base += bucket.elements
    return tuple(extents)


def layout_from_plan(plan: ExecutionPlan) -> tuple[BucketExtent, ...]:
    """Planned bucket layout: buckets packed back-to-back in one address space."""
    extents: list[BucketExtent] = []
    base = 0
    for bucket in plan.buckets:
        views = []
        offset = base
        for record in bucket.records:
            views.append(ParamView(name=record.name, start=offset, stop=offset + record.elements))
            offset += record.elements
        extents.append(
            BucketExtent(
                name=f"bucket{bucket.index}",
                start=base,
                stop=base + bucket.elements,
                views=tuple(views),
            )
        )
        base += bucket.elements
    return tuple(extents)


def layout_from_buckets(buckets: Sequence[TensorBucket]) -> tuple[BucketExtent, ...]:
    """Real layout of live buckets.

    Flattened buckets use actual byte addresses — a parameter whose storage
    was not re-pointed into the fused buffer, or two buffers that genuinely
    share memory, show up as real aliasing violations.  Non-flattened buckets
    have no shared buffer; they get synthetic back-to-back extents so the
    structural checks (views inside extent, no cross-bucket overlap) still
    apply.
    """
    flattened = [b for b in buckets if b.buffer is not None]
    if len(flattened) == len(buckets):
        extents = []
        for bucket in buckets:
            buffer = bucket.buffer
            base = buffer.__array_interface__["data"][0]
            views = []
            for i, (param, _lo, _hi) in enumerate(bucket.param_slices()):
                addr = param.data.__array_interface__["data"][0]
                views.append(
                    ParamView(
                        name=f"{bucket.name}[{i}]",
                        start=addr,
                        stop=addr + param.data.nbytes,
                    )
                )
            extents.append(
                BucketExtent(
                    name=bucket.name,
                    start=base,
                    stop=base + buffer.nbytes,
                    views=tuple(views),
                )
            )
        return tuple(extents)

    # Unflattened (or mixed): synthetic contiguous address space.
    extents = []
    base = 0
    for bucket in buckets:
        views = []
        for i, (_param, lo, hi) in enumerate(bucket.param_slices()):
            views.append(ParamView(name=f"{bucket.name}[{i}]", start=base + lo, stop=base + hi))
        extents.append(
            BucketExtent(
                name=bucket.name,
                start=base,
                stop=base + bucket.total_elements,
                views=tuple(views),
            )
        )
        base += bucket.total_elements
    return tuple(extents)
