"""Lowering execution plans, schedules and live buckets into the comm-op IR.

Three producers feed the checker suite without (or alongside) a dry run:

* :func:`lower_plan` turns an :class:`ExecutionPlan` into the SPMD schedule
  every rank would execute — communication issues at each bucket's gradient
  -ready point (when overlap is on), awaits, the collective itself, and the
  optimizer updates that must come after.  This is the static path: a plan
  can be verified before anything runs;
* :func:`lower_schedule` does the same for a
  :class:`~repro.core.schedule.BucketSchedule` — the IR the
  :class:`~repro.core.schedule.ScheduledExecutor` actually runs — walking
  its gated event stream, so per-bucket vs barrier update policies lower to
  different (and separately checkable) op orders;
* :func:`layout_from_plan` / :func:`layout_from_schedule` /
  :func:`layout_from_buckets` produce the bucket address layout, planned
  (cumulative offsets) or real (byte addresses of the live flattened
  buffers), for the aliasing analysis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..compression.base import Compressor
from ..core.bucket import TensorBucket
from ..core.optimizer_framework import ExecutionPlan
from ..core.schedule import BucketSchedule
from .ir import AnalysisSubject, BucketExtent, CommTrace, ParamView


def lower_plan(
    plan: ExecutionPlan,
    world_size: int,
    compressor: Optional[Compressor] = None,
    error_feedback: bool = False,
) -> AnalysisSubject:
    """Lower ``plan`` into the per-rank schedule trace + planned layout.

    The schedule is identical on every rank (the plan is SPMD by
    construction); the value of lowering is that checkers then prove
    properties of the *schedule shape* — every optimizer update on a bucket
    is preceded by the await of that bucket's communication, sizes agree,
    and the planned extents do not alias.
    """
    trace = CommTrace(world_size)
    units = plan.communication_units()
    codec = compressor.name if compressor is not None else ""
    biased = bool(getattr(compressor, "biased", False)) if compressor is not None else False
    kind = "compressed_allreduce" if compressor is not None else "allreduce"
    group = tuple(range(world_size))

    for rank in range(world_size):
        peers = tuple(r for r in group if r != rank)
        if plan.config.overlap:
            # Issue each bucket's communication at its gradient-ready point,
            # concurrent with the rest of backward; await everything at the
            # end, then update.
            for unit in units:
                trace.add(rank, "issue", bucket=f"bucket{unit.index}", elements=unit.elements)
            for unit in units:
                trace.add(rank, "await", bucket=f"bucket{unit.index}", elements=unit.elements)
                trace.add(
                    rank,
                    kind,
                    bucket=f"bucket{unit.index}",
                    elements=unit.elements,
                    compressor=codec,
                    biased=biased,
                    error_feedback=error_feedback,
                    peers=peers,
                    group=group,
                )
        else:
            # No overlap: communication blocks, issue/await adjacent.
            for unit in units:
                trace.add(rank, "issue", bucket=f"bucket{unit.index}", elements=unit.elements)
                trace.add(rank, "await", bucket=f"bucket{unit.index}", elements=unit.elements)
                trace.add(
                    rank,
                    kind,
                    bucket=f"bucket{unit.index}",
                    elements=unit.elements,
                    compressor=codec,
                    biased=biased,
                    error_feedback=error_feedback,
                    peers=peers,
                    group=group,
                )
        for unit in units:
            trace.add(rank, "opt_step", bucket=f"bucket{unit.index}", elements=unit.elements)

    return AnalysisSubject(
        world_size=world_size,
        trace=trace,
        layout=layout_from_plan(plan),
        source=f"plan({plan.config.describe()})",
    )


def lower_schedule(
    schedule: BucketSchedule,
    world_size: int,
    compressor: Optional[Compressor] = None,
    error_feedback: bool = False,
) -> AnalysisSubject:
    """Lower a :class:`BucketSchedule` into the per-rank schedule trace.

    This is the executor-facing twin of :func:`lower_plan`: instead of
    re-deriving the op order from the plan's switches, it walks the
    schedule's own gated event stream — so what the checkers prove is the
    *exact* order the :class:`~repro.core.schedule.ScheduledExecutor` runs,
    including the per-bucket vs barrier update placement.
    """
    trace = CommTrace(world_size)
    by_index = {b.index: b for b in schedule.buckets}
    codec = compressor.name if compressor is not None else ""
    biased = bool(getattr(compressor, "biased", False)) if compressor is not None else False
    kind = "compressed_allreduce" if compressor is not None else "allreduce"
    group = tuple(range(world_size))
    events = schedule.events()

    for rank in range(world_size):
        peers = tuple(r for r in group if r != rank)
        # Under overlap, every comm issues at its grad-ready gate — i.e.
        # concurrently with the rest of backward — before anything awaits.
        if schedule.overlap_backward:
            for event in events:
                if event.kind == "comm":
                    bucket = by_index[event.bucket]
                    trace.add(rank, "issue", bucket=bucket.name, elements=bucket.elements)
        for event in events:
            bucket = by_index[event.bucket]
            if event.kind == "comm":
                if not schedule.overlap_backward:
                    trace.add(rank, "issue", bucket=bucket.name, elements=bucket.elements)
                trace.add(rank, "await", bucket=bucket.name, elements=bucket.elements)
                trace.add(
                    rank,
                    kind,
                    bucket=bucket.name,
                    elements=bucket.elements,
                    compressor=codec,
                    biased=biased,
                    error_feedback=error_feedback,
                    peers=peers,
                    group=group,
                )
            elif event.kind == "update":
                trace.add(rank, "opt_step", bucket=bucket.name, elements=bucket.elements)
            # "post" events carry no schedule hazard of their own: the
            # decompression is part of the awaited communication.

    return AnalysisSubject(
        world_size=world_size,
        trace=trace,
        layout=layout_from_schedule(schedule),
        source=f"schedule lowering ({schedule.describe()})",
    )


def layout_from_schedule(schedule: BucketSchedule) -> Tuple[BucketExtent, ...]:
    """Planned layout implied by a schedule's bucket views (packed extents)."""
    extents: List[BucketExtent] = []
    base = 0
    for bucket in schedule.buckets:
        views = []
        offset = base
        for name, elements in bucket.views:
            views.append(ParamView(name=name, start=offset, stop=offset + elements))
            offset += elements
        extents.append(
            BucketExtent(
                name=bucket.name,
                start=base,
                stop=base + bucket.elements,
                views=tuple(views),
            )
        )
        base += bucket.elements
    return tuple(extents)


def layout_from_plan(plan: ExecutionPlan) -> Tuple[BucketExtent, ...]:
    """Planned bucket layout: buckets packed back-to-back in one address space."""
    extents: List[BucketExtent] = []
    base = 0
    for bucket in plan.buckets:
        views = []
        offset = base
        for record in bucket.records:
            views.append(ParamView(name=record.name, start=offset, stop=offset + record.elements))
            offset += record.elements
        extents.append(
            BucketExtent(
                name=f"bucket{bucket.index}",
                start=base,
                stop=base + bucket.elements,
                views=tuple(views),
            )
        )
        base += bucket.elements
    return tuple(extents)


def layout_from_buckets(buckets: Sequence[TensorBucket]) -> Tuple[BucketExtent, ...]:
    """Real layout of live buckets.

    Flattened buckets use actual byte addresses — a parameter whose storage
    was not re-pointed into the fused buffer, or two buffers that genuinely
    share memory, show up as real aliasing violations.  Non-flattened buckets
    have no shared buffer; they get synthetic back-to-back extents so the
    structural checks (views inside extent, no cross-bucket overlap) still
    apply.
    """
    flattened = [b for b in buckets if b.buffer is not None]
    if len(flattened) == len(buckets):
        extents = []
        for bucket in buckets:
            buffer = bucket.buffer
            base = buffer.__array_interface__["data"][0]
            views = []
            for i, (param, lo, hi) in enumerate(bucket.param_slices()):
                addr = param.data.__array_interface__["data"][0]
                views.append(
                    ParamView(
                        name=f"{bucket.name}[{i}]",
                        start=addr,
                        stop=addr + param.data.nbytes,
                    )
                )
            extents.append(
                BucketExtent(
                    name=bucket.name,
                    start=base,
                    stop=base + buffer.nbytes,
                    views=tuple(views),
                )
            )
        return tuple(extents)

    # Unflattened (or mixed): synthetic contiguous address space.
    extents = []
    base = 0
    for bucket in buckets:
        views = []
        for i, (_param, lo, hi) in enumerate(bucket.param_slices()):
            views.append(ParamView(name=f"{bucket.name}[{i}]", start=base + lo, stop=base + hi))
        extents.append(
            BucketExtent(
                name=bucket.name,
                start=base,
                stop=base + bucket.total_elements,
                views=tuple(views),
            )
        )
        base += bucket.total_elements
    return tuple(extents)
