"""Lowering execution plans, schedules and live buckets into the comm-op IR.

Three producers feed the checker suite without (or alongside) a dry run:

* :func:`lower_plan` turns an :class:`ExecutionPlan` into the SPMD schedule
  every rank would execute — communication issues at each bucket's gradient
  -ready point (when overlap is on), awaits, the collective itself, and the
  optimizer updates that must come after.  This is the static path: a plan
  can be verified before anything runs;
* :func:`lower_schedule` does the same for a
  :class:`~repro.core.schedule.BucketSchedule` — the IR the
  :class:`~repro.core.schedule.ScheduledExecutor` actually runs — walking
  its gated event stream, so per-bucket vs barrier update policies lower to
  different (and separately checkable) op orders;
* :func:`layout_from_plan` / :func:`layout_from_schedule` /
  :func:`layout_from_buckets` produce the bucket address layout, planned
  (cumulative offsets) or real (byte addresses of the live flattened
  buffers), for the aliasing analysis.

The per-rank event enumeration itself lives in :func:`emit_iteration`, which
is parameterized by a :class:`CommPattern` — the algorithm-level shape of
each bucket's collective (kind, codec, error feedback, gossip peer sets).
``lower_schedule`` drives it with the centralized pattern its arguments
imply; :mod:`repro.analysis.symbolic` drives the very same emitter from a
plan *description* (no engine, no transport), so the symbolic path is
event-identical to the executor-facing lowering by construction.

Lowered ops carry the metadata the happens-before engine
(:mod:`repro.analysis.hb`) consumes: a ``thread`` id (overlapped schedules
run collectives on a ``"comm"`` stream concurrent with ``"main"``), a
``gate`` naming the intra-rank dependency (the ``GATE_*`` constants of
:mod:`repro.core.schedule` — no stringly-typed literals here), and the
``start``/``stop`` element interval of the touched bucket.  With a node
structure (``nodes=``), a hierarchical schedule lowers to its three real
phases — intra-node ``reduce``, inter-node (compressed) ``allreduce`` or
gossip on the leader subgroup, intra-node ``broadcast`` — the phase
structure shared with :func:`repro.comm.hierarchical.hierarchical_phases`,
so cross-phase ordering is verified, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..comm.hierarchical import hierarchical_phases
from ..compression.base import Compressor
from ..core.bucket import TensorBucket
from ..core.optimizer_framework import ExecutionPlan
from ..core.schedule import (
    GATE_BACKWARD_END,
    GATE_BARRIER,
    GATE_COMM_DONE,
    GATE_GRAD_READY,
    UPDATE_BARRIER,
    BucketSchedule,
)
from .ir import GOSSIP_KINDS, AnalysisSubject, BucketExtent, CommTrace, ParamView

#: Thread names of a lowered rank program: ``main`` models the training
#: loop (backward, awaits, optimizer), ``comm`` the concurrent reduction
#: stream an overlapped schedule launches collectives on.
MAIN_THREAD = "main"
COMM_THREAD = "comm"


@dataclass(frozen=True)
class CommPattern:
    """The algorithm-level shape of one iteration's bucket collectives.

    ``kind`` is the flat (or, under H, inter-node) collective kind; gossip
    kinds additionally carry ``peer_sets`` — global neighbor sets indexed by
    global rank (for hierarchical gossip only the leader ranks' entries are
    meaningful, since only leaders exchange with peers).  ``silent`` models
    iterations with no collective at all (a LocalSGD step between syncs):
    updates still happen, in plain program order, but nothing is issued,
    communicated or awaited.
    """

    kind: str = "allreduce"
    compressor: str = ""
    biased: bool = False
    error_feedback: bool = False
    peer_sets: tuple[tuple[int, ...], ...] | None = None
    silent: bool = False

    def __post_init__(self) -> None:
        if self.kind in GOSSIP_KINDS and self.peer_sets is None and not self.silent:
            raise ValueError(f"gossip pattern {self.kind!r} needs peer_sets")


def emit_iteration(
    trace: CommTrace,
    schedule: BucketSchedule,
    pattern: CommPattern,
    nodes: Sequence[Sequence[int]] | None = None,
    step: int = -1,
) -> None:
    """Append one iteration's per-rank op stream to ``trace``.

    This is the single event enumerator behind both lowering front-ends:
    :func:`lower_schedule` (executor-facing) and the symbolic plan lowering
    (:mod:`repro.analysis.symbolic`).  Multi-step callers invoke it once per
    iteration with increasing ``step``; per-rank ``seq`` numbering continues
    across calls, so the result is each rank's full program order.
    """
    world_size = trace.world_size
    by_index = {b.index: b for b in schedule.buckets}
    flat_group = tuple(range(world_size))
    events = schedule.events()
    layout = layout_from_schedule(schedule)
    extent_of = {extent.name: (extent.start, extent.stop) for extent in layout}

    node_groups: list[tuple[int, ...]] = (
        [tuple(sorted(node)) for node in nodes] if nodes else []
    )
    hierarchical = bool(schedule.hierarchical) and len(node_groups) > 1
    leaders = tuple(node[0] for node in node_groups) if hierarchical else ()

    overlap = schedule.overlap_backward
    silent = pattern.silent
    comm_thread = COMM_THREAD if overlap else MAIN_THREAD
    comm_gate = GATE_GRAD_READY if overlap else GATE_BACKWARD_END
    gossip = pattern.kind in GOSSIP_KINDS

    codec = {
        "compressor": pattern.compressor,
        "biased": pattern.biased,
        "error_feedback": pattern.error_feedback,
    }

    # Per-rank peer sets of the flat (non-hierarchical) collective: the
    # rank's gossip neighbors, or everyone else in the group.
    if gossip:
        flat_peers = [
            tuple(pattern.peer_sets[r]) if pattern.peer_sets else ()
            for r in range(world_size)
        ]
    else:
        flat_peers = [flat_group[:r] + flat_group[r + 1:] for r in range(world_size)]

    # Per-rank hierarchical phase descriptors — everything about a phase op
    # except the bucket payload, which the event loop merges in.  Intra-node
    # reduce / broadcast stay full-precision (H only compresses the
    # inter-node tier, paper §3.4); later phases follow the first in
    # comm-thread program order, so only the first carries the comm gate.
    phase_dicts: list[list[dict]] = []
    if hierarchical:
        node_by_rank: dict[int, tuple[int, ...]] = {
            rank: node for node in node_groups for rank in node
        }
        for rank in range(world_size):
            if rank not in node_by_rank:
                raise ValueError(f"rank {rank} is in no node of {node_groups}")
            dicts: list[dict] = []
            gate = comm_gate
            for phase, group in hierarchical_phases(node_by_rank[rank], leaders, rank):
                if phase == "inter":
                    peers = (
                        flat_peers[rank] if gossip
                        else tuple(r for r in group if r != rank)
                    )
                    dicts.append(
                        {"kind": pattern.kind, "gate": gate, "group": group,
                         "peers": peers, **codec}
                    )
                else:
                    dicts.append(
                        {"kind": phase, "gate": gate, "group": group,
                         "peers": tuple(r for r in group if r != rank)}
                    )
                gate = ""
            phase_dicts.append(dicts)

    # One template dict per event, shared across ranks (add_prepared never
    # mutates them); only the comm op itself is rank-dependent (peers, and
    # under H the phase structure), so it gets a copy per rank.
    per_bucket_gate = GATE_COMM_DONE if schedule.per_bucket_updates else GATE_BARRIER
    prepared: list[tuple] = []
    for event in events:
        bucket = by_index[event.bucket]
        start, stop = extent_of[bucket.name]
        payload = {
            "bucket": bucket.name, "elements": bucket.elements,
            "step": step, "start": start, "stop": stop,
        }
        if event.kind == "comm":
            issue_t = {"kind": "issue", "thread": MAIN_THREAD, **payload}
            await_t = {
                "kind": "await", "thread": MAIN_THREAD,
                "gate": GATE_COMM_DONE, **payload,
            }
            if hierarchical:
                comm_t = {"thread": comm_thread, **payload}
            else:
                comm_t = {
                    "kind": pattern.kind, "thread": comm_thread,
                    "gate": comm_gate, "group": flat_group, **codec, **payload,
                }
            prepared.append(("comm", issue_t, comm_t, await_t))
        elif event.kind == "update":
            # On a silent (local-only) iteration the update depends on
            # nothing but program order — there is no comm to gate on.
            gate = "" if silent else per_bucket_gate
            prepared.append(
                ("update",
                 {"kind": "opt_step", "thread": MAIN_THREAD, "gate": gate,
                  **payload})
            )
        # "post" events carry no schedule hazard of their own: the
        # decompression is part of the awaited communication.

    add_prepared = trace.add_prepared
    for rank in range(world_size):
        # Under overlap, every comm issues at its grad-ready gate — i.e.
        # concurrently with the rest of backward — before anything awaits.
        if overlap and not silent:
            for entry in prepared:
                if entry[0] == "comm":
                    add_prepared(rank, entry[1])
        for entry in prepared:
            if entry[0] == "update":
                add_prepared(rank, entry[1])
                continue
            if silent:
                continue
            _, issue_t, comm_t, await_t = entry
            if not overlap:
                add_prepared(rank, issue_t)
            if hierarchical:
                for phase_t in phase_dicts[rank]:
                    merged = comm_t.copy()
                    merged.update(phase_t)
                    add_prepared(rank, merged)
            else:
                merged = comm_t.copy()
                merged["peers"] = flat_peers[rank]
                add_prepared(rank, merged)
            add_prepared(rank, await_t)


def lower_plan(
    plan: ExecutionPlan,
    world_size: int,
    compressor: Compressor | None = None,
    error_feedback: bool = False,
    nodes: Sequence[Sequence[int]] | None = None,
) -> AnalysisSubject:
    """Lower ``plan`` into the per-rank schedule trace + planned layout.

    The schedule is identical on every rank (the plan is SPMD by
    construction); the value of lowering is that checkers then prove
    properties of the *schedule shape* — every optimizer update on a bucket
    is preceded by the await of that bucket's communication, sizes agree,
    and the planned extents do not alias.

    Internally this delegates to :func:`lower_schedule` on the
    :class:`BucketSchedule` the plan implies, with the plan's historical
    barrier update placement (all updates trail the communication stream).
    """
    schedule = BucketSchedule.from_plan(plan, update_mode=UPDATE_BARRIER)
    subject = lower_schedule(
        schedule, world_size, compressor=compressor,
        error_feedback=error_feedback, nodes=nodes,
    )
    subject.layout = layout_from_plan(plan)
    subject.source = f"plan({plan.config.describe()})"
    return subject


def lower_schedule(
    schedule: BucketSchedule,
    world_size: int,
    compressor: Compressor | None = None,
    error_feedback: bool = False,
    nodes: Sequence[Sequence[int]] | None = None,
) -> AnalysisSubject:
    """Lower a :class:`BucketSchedule` into the per-rank schedule trace.

    This is the executor-facing twin of :func:`lower_plan`: instead of
    re-deriving the op order from the plan's switches, it walks the
    schedule's own gated event stream — so what the checkers prove is the
    *exact* order the :class:`~repro.core.schedule.ScheduledExecutor` runs,
    including the per-bucket vs barrier update placement.

    Under overlap, collectives are emitted on the ``comm`` thread gated on
    their bucket's issue (``grad_ready``) while issues, awaits and updates
    stay on ``main`` — the two-stream structure the happens-before engine
    needs to prove the overlap race-free.  ``nodes`` (an iterable of
    per-node global-rank groups, e.g. from
    :meth:`~repro.cluster.topology.ClusterSpec.node_groups`) unlocks the
    hierarchical three-phase lowering when ``schedule.hierarchical`` is set;
    without it the comm lowers as one flat-group collective.
    """
    pattern = CommPattern(
        kind="compressed_allreduce" if compressor is not None else "allreduce",
        compressor=compressor.name if compressor is not None else "",
        biased=bool(getattr(compressor, "biased", False)) if compressor is not None else False,
        error_feedback=error_feedback,
    )
    trace = CommTrace(world_size)
    emit_iteration(trace, schedule, pattern, nodes=nodes)
    return AnalysisSubject(
        world_size=world_size,
        trace=trace,
        layout=layout_from_schedule(schedule),
        source=f"schedule lowering ({schedule.describe()})",
    )


def layout_from_schedule(schedule: BucketSchedule) -> tuple[BucketExtent, ...]:
    """Planned layout implied by a schedule's bucket views (packed extents)."""
    extents: list[BucketExtent] = []
    base = 0
    for bucket in schedule.buckets:
        views = []
        offset = base
        for name, elements in bucket.views:
            views.append(ParamView(name=name, start=offset, stop=offset + elements))
            offset += elements
        extents.append(
            BucketExtent(
                name=bucket.name,
                start=base,
                stop=base + bucket.elements,
                views=tuple(views),
            )
        )
        base += bucket.elements
    return tuple(extents)


def layout_from_plan(plan: ExecutionPlan) -> tuple[BucketExtent, ...]:
    """Planned bucket layout: buckets packed back-to-back in one address space."""
    extents: list[BucketExtent] = []
    base = 0
    for bucket in plan.buckets:
        views = []
        offset = base
        for record in bucket.records:
            views.append(ParamView(name=record.name, start=offset, stop=offset + record.elements))
            offset += record.elements
        extents.append(
            BucketExtent(
                name=f"bucket{bucket.index}",
                start=base,
                stop=base + bucket.elements,
                views=tuple(views),
            )
        )
        base += bucket.elements
    return tuple(extents)


def layout_from_buckets(buckets: Sequence[TensorBucket]) -> tuple[BucketExtent, ...]:
    """Real layout of live buckets.

    Flattened buckets use actual byte addresses — a parameter whose storage
    was not re-pointed into the fused buffer, or two buffers that genuinely
    share memory, show up as real aliasing violations.  Non-flattened buckets
    have no shared buffer; they get synthetic back-to-back extents so the
    structural checks (views inside extent, no cross-bucket overlap) still
    apply.
    """
    flattened = [b for b in buckets if b.buffer is not None]
    if len(flattened) == len(buckets):
        extents = []
        for bucket in buckets:
            buffer = bucket.buffer
            base = buffer.__array_interface__["data"][0]
            views = []
            for i, (param, _lo, _hi) in enumerate(bucket.param_slices()):
                addr = param.data.__array_interface__["data"][0]
                views.append(
                    ParamView(
                        name=f"{bucket.name}[{i}]",
                        start=addr,
                        stop=addr + param.data.nbytes,
                    )
                )
            extents.append(
                BucketExtent(
                    name=bucket.name,
                    start=base,
                    stop=base + buffer.nbytes,
                    views=tuple(views),
                )
            )
        return tuple(extents)

    # Unflattened (or mixed): synthetic contiguous address space.
    extents = []
    base = 0
    for bucket in buckets:
        views = []
        for i, (_param, lo, hi) in enumerate(bucket.param_slices()):
            views.append(ParamView(name=f"{bucket.name}[{i}]", start=base + lo, stop=base + hi))
        extents.append(
            BucketExtent(
                name=bucket.name,
                start=base,
                stop=base + bucket.total_elements,
                views=tuple(views),
            )
        )
        base += bucket.total_elements
    return tuple(extents)
