"""Symbolic plan lowering: a plan *description* becomes checkable IR.

The existing lowerings (:mod:`repro.analysis.lowering`) start from artifacts
the engine built while running — an :class:`~repro.core.optimizer_framework.
ExecutionPlan` or a :class:`~repro.core.schedule.BucketSchedule` exists only
after a transport, workers and a profiling iteration.  This module removes
that requirement: a :class:`PlanPoint` names everything the lowering needs —
algorithm, world shape, the O/F/H switches, bucket cap, codec, gossip
topology — and :func:`lower_point` turns it into the same comm-op IR and
happens-before event stream *without constructing a transport or executing a
step*.  The bucketing runs through the real
:class:`~repro.core.optimizer_framework.ExecutionOptimizer` and the events
through the same :func:`~repro.analysis.lowering.emit_iteration` the
executor-facing lowering uses, so symbolic IR is event-identical to what a
dry run would have been lowered to (the oracle tests assert this per
algorithm × O/F/H variant × world size).

On top of the lowering sit the *static rules* — properties provable from the
plan description alone, before any IR exists:

* ``plan-hierarchy-split`` — H needs ``workers_per_node`` to divide the
  world evenly (:func:`repro.comm.group.node_major_partition`);
* ``plan-compressor-compat`` — a biased codec without error feedback breaks
  the error-compensated convergence guarantees (§2.2), and the relaxation
  triple must be a supported row of Table 1
  (:data:`repro.algorithms.registry.SUPPORT_MATRIX`);
* ``plan-gossip-closure`` — gossip peer sets must be mutual (i lists j iff
  j lists i) and stay inside the gossip group;
* ``plan-gossip-stochasticity`` — the averaging weight matrix the peer sets
  imply must be doubly stochastic, or decentralized SGD loses its fixed
  point (:func:`gossip_weight_matrix`);
* ``plan-bucket-feasibility`` — a non-positive bucket cap is meaningless,
  and a cap that fuses the whole model into one bucket leaves overlap (O)
  nothing to hide behind.

:mod:`repro.analysis.planspace` enumerates points across these knobs and
uses both layers to prune the auto-tuner's search space.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..algorithms.registry import ALGORITHM_REGISTRY, SUPPORT_MATRIX
from ..baselines import BASELINE_REGISTRY
from ..comm.group import node_major_partition
from ..compression import COMPRESSOR_REGISTRY, make_compressor
from ..core.optimizer_framework import BaguaConfig, ExecutionOptimizer
from ..core.primitives import PeerSelector, RandomPeers, RingPeers
from ..core.profiler import ExecutionProfile, TensorRecord
from ..core.schedule import UPDATE_PER_BUCKET, BucketSchedule
from .ir import GOSSIP_KINDS, AnalysisSubject, CommTrace
from .lowering import CommPattern, emit_iteration, layout_from_schedule
from .report import Finding

#: Bucket cap used for symbolic probe plans — the same cap the analyzer
#: driver uses for its dry runs, so both paths bucket identically.
PROBE_BUCKET_BYTES = 256.0

#: The probe model's gradient-ready inventory: ``(name, elements)`` in the
#: order backward produces gradients for the driver's ``_ProbeMLP``
#: (``Linear(8, 12)`` then ``Linear(12, 4)``; bias gradients finalize before
#: their layer's weight).  This is the static twin of what
#: :class:`~repro.core.profiler.GradientReadyProfiler` records during the
#: profiling iteration — the oracle tests cross-check the two.
PROBE_READY_INVENTORY: tuple[tuple[str, int], ...] = (
    ("fc2.bias", 4),
    ("fc2.weight", 48),
    ("fc1.bias", 12),
    ("fc1.weight", 96),
)


def probe_profile() -> ExecutionProfile:
    """The driver probe model's execution profile, built without running it."""
    return ExecutionProfile(
        records=[
            TensorRecord(name=name, elements=elements, ready_index=i)
            for i, (name, elements) in enumerate(PROBE_READY_INVENTORY)
        ]
    )


# ----------------------------------------------------------------------
# Per-algorithm communication models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommModel:
    """The static shape of one algorithm's per-bucket communication.

    ``kind`` is the comm-op kind each bucket's collective lowers to (the
    inter-node kind under H).  ``compressor``/``biased``/``error_feedback``
    describe the codec exactly as the recorder tags live ops.  ``topology``
    selects the gossip peer structure; ``frequency`` > 1 means the algorithm
    only communicates every ``frequency``-th step (LocalSGD-style — the
    steps between lower as silent iterations); ``warmup_steps`` > 0 means
    the first steps run full-precision allreduce before the compressed path
    (1-bit Adam's warmup).  ``asynchronous`` records the synchronization
    relaxation for the Table 1 compatibility rule — the *bucket schedule* of
    an async algorithm is modeled by its synchronous shape (the lowering has
    no cross-step pipelining; staleness is checked by ``hb-staleness``
    against the algorithm's declared bound, not by this model).
    """

    kind: str = "allreduce"
    compressor: str = ""
    biased: bool = False
    error_feedback: bool = False
    topology: str = ""
    frequency: int = 1
    warmup_steps: int = 0
    asynchronous: bool = False


#: Registry name -> static communication model.  Defaults mirror each
#: algorithm's constructor defaults (e.g. LocalSGD ``frequency=4``); a
#: :class:`PlanPoint` can override the codec, topology and EF knobs.
COMM_MODELS: dict[str, CommModel] = {
    "allreduce": CommModel(kind="allreduce"),
    "qsgd": CommModel(kind="compressed_allreduce", compressor="qsgd8"),
    "1bit-adam": CommModel(
        kind="compressed_allreduce", compressor="1bit", biased=True,
        error_feedback=True, warmup_steps=20,
    ),
    "decentralized": CommModel(kind="gossip", topology="random"),
    "decentralized-8bit": CommModel(
        kind="compressed_gossip", compressor="qsgd8", topology="ring",
    ),
    "async": CommModel(kind="allreduce", asynchronous=True),
    "local-sgd": CommModel(kind="allreduce", frequency=4),
    "async-qsgd": CommModel(
        kind="compressed_allreduce", compressor="qsgd8", asynchronous=True,
    ),
    "async-decentralized": CommModel(
        kind="gossip", topology="random", asynchronous=True,
    ),
    "qsparse-local-sgd": CommModel(
        kind="compressed_allreduce", compressor="topk0.05", biased=True,
        error_feedback=True, frequency=2,
    ),
    # Baselines: synchronous full-precision allreduce with a barrier update.
    "vanilla": CommModel(kind="allreduce"),
    "pytorch-ddp": CommModel(kind="allreduce"),
    "horovod": CommModel(kind="allreduce"),
    "byteps": CommModel(kind="allreduce"),
}


def comm_model_of(name: str) -> CommModel:
    if name not in COMM_MODELS:
        known = sorted(set(ALGORITHM_REGISTRY) | set(BASELINE_REGISTRY))
        raise KeyError(f"no communication model for {name!r}; known: {known}")
    return COMM_MODELS[name]


_ALGORITHM_DEFAULTS_CACHE: dict[str, object] = {}


def _algorithm_defaults(name: str):
    """A default-constructed algorithm instance, for declared attributes.

    Constructing an :class:`~repro.core.engine.Algorithm` touches no
    transport and allocates no buckets — it only fixes declarations like
    ``update_mode`` and ``staleness_bound``, which is exactly what the
    symbolic path needs.
    """
    if name not in _ALGORITHM_DEFAULTS_CACHE:
        if name in ALGORITHM_REGISTRY:
            _ALGORITHM_DEFAULTS_CACHE[name] = ALGORITHM_REGISTRY[name]()
        elif name in BASELINE_REGISTRY:
            _ALGORITHM_DEFAULTS_CACHE[name] = BASELINE_REGISTRY[name]()
        else:
            raise KeyError(f"unknown algorithm {name!r}")
    return _ALGORITHM_DEFAULTS_CACHE[name]


def update_mode_of(name: str) -> str:
    return _algorithm_defaults(name).update_mode


def staleness_bound_of(name: str) -> int | None:
    return _algorithm_defaults(name).staleness_bound


# ----------------------------------------------------------------------
# Plan points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanPoint:
    """One point of the plan space: everything the symbolic lowering needs.

    ``None`` knobs fall back to the algorithm's natural choice (its own
    codec, topology, EF discipline and update mode), so the default point
    for a registry name describes the plan the engine would actually build.
    Explicit ``peer_sets`` (global-rank neighbor tuples, one per rank)
    override the topology-derived gossip structure — the hook the negative
    fixtures use to inject broken peer graphs.
    """

    algorithm: str
    world_size: int = 4
    workers_per_node: int = 2
    overlap: bool = True
    flatten: bool = True
    hierarchical: bool = False
    per_bucket_updates: bool | None = None
    bucket_bytes: float = PROBE_BUCKET_BYTES
    compressor: str | None = None
    error_feedback: bool | None = None
    topology: str | None = None
    peer_sets: tuple[tuple[int, ...], ...] | None = None
    seed: int = 0
    steps: int = 1
    frequency: int | None = None
    warmup_steps: int | None = None

    def describe(self) -> str:
        parts = [
            f"{self.algorithm}@{self.world_size // self.workers_per_node}"
            f"x{self.workers_per_node}"
            if self.world_size % self.workers_per_node == 0
            else f"{self.algorithm}@{self.world_size}w/{self.workers_per_node}",
            f"O={int(self.overlap)}",
            f"F={int(self.flatten)}",
            f"H={int(self.hierarchical)}",
        ]
        if self.per_bucket_updates is not None:
            parts.append(
                f"updates={'per-bucket' if self.per_bucket_updates else 'barrier'}"
            )
        if self.bucket_bytes != PROBE_BUCKET_BYTES:
            parts.append(f"bucket={self.bucket_bytes:g}B")
        if self.compressor is not None:
            parts.append(f"codec={self.compressor}")
        if self.error_feedback is not None:
            parts.append(f"ef={int(self.error_feedback)}")
        if self.topology is not None:
            parts.append(f"topology={self.topology}")
        if self.steps != 1:
            parts.append(f"steps={self.steps}")
        if self.frequency is not None:
            parts.append(f"freq={self.frequency}")
        if self.warmup_steps is not None:
            parts.append(f"warmup={self.warmup_steps}")
        return ",".join(parts)


def _resolved_codec(
    point: PlanPoint, model: CommModel
) -> tuple[str, bool, bool] | None:
    """``(name, biased, error_feedback)`` of the effective codec, or None."""
    if point.compressor is not None:
        codec = make_compressor(point.compressor)
        name, biased = codec.name, bool(codec.biased)
    elif model.compressor:
        name, biased = model.compressor, model.biased
    else:
        return None
    ef = model.error_feedback if point.error_feedback is None else point.error_feedback
    return name, biased, ef


def _effective_kind(point: PlanPoint, model: CommModel) -> str:
    """The comm kind after codec overrides (compressing a full-precision
    algorithm moves it to the compressed variant of the same primitive)."""
    decentralized = model.kind in GOSSIP_KINDS
    compressed = _resolved_codec(point, model) is not None
    if decentralized:
        return "compressed_gossip" if compressed else "gossip"
    return "compressed_allreduce" if compressed else "allreduce"


def _effective_topology(point: PlanPoint, model: CommModel) -> str:
    return point.topology or model.topology or "random"


def _peer_selector(topology: str, seed: int) -> PeerSelector:
    if topology == "ring":
        return RingPeers()
    if topology == "random":
        return RandomPeers(seed=seed)
    raise ValueError(f"unknown gossip topology {topology!r}; use 'ring' or 'random'")


def gossip_members(point: PlanPoint) -> tuple[int, ...]:
    """The ranks that actually gossip: leaders under H, everyone otherwise."""
    if point.hierarchical and point.world_size % point.workers_per_node == 0:
        nodes = node_major_partition(point.world_size, point.workers_per_node)
        if len(nodes) > 1:
            return tuple(node[0] for node in nodes)
    return tuple(range(point.world_size))


def gossip_peer_sets(
    point: PlanPoint, model: CommModel, step: int = 0
) -> tuple[tuple[int, ...], ...]:
    """Global-rank neighbor sets for one gossip round, one entry per rank.

    Non-participating ranks (non-leaders under H) get empty sets.  Explicit
    ``point.peer_sets`` short-circuit the topology.
    """
    if point.peer_sets is not None:
        if len(point.peer_sets) != point.world_size:
            raise ValueError(
                f"peer_sets has {len(point.peer_sets)} entries for world size "
                f"{point.world_size}"
            )
        return tuple(tuple(peers) for peers in point.peer_sets)
    members = gossip_members(point)
    selector = _peer_selector(_effective_topology(point, model), point.seed)
    local = selector.neighbors(len(members), step)
    sets: list[tuple[int, ...]] = [()] * point.world_size
    for i, rank in enumerate(members):
        sets[rank] = tuple(members[j] for j in local[i])
    return tuple(sets)


def gossip_weight_matrix(
    peer_sets: tuple[tuple[int, ...], ...], members: tuple[int, ...]
) -> list[list[float]]:
    """The averaging matrix W the peer sets imply, indexed by ``members``.

    Peer averaging sets ``x_i' = mean({x_i} ∪ {x_j : j ∈ N(i)})``, i.e.
    ``W[i][j] = 1 / (1 + |N(i)|)`` for ``j ∈ {i} ∪ N(i)`` — rows sum to 1
    by construction.  Decentralized SGD additionally needs the *columns* to
    sum to 1 (doubly stochastic W keeps the uniform average a fixed point,
    paper §2.2); :func:`check_plan_static` verifies that.
    """
    index = {rank: i for i, rank in enumerate(members)}
    n = len(members)
    matrix = [[0.0] * n for _ in range(n)]
    for rank in members:
        i = index[rank]
        in_group = [p for p in peer_sets[rank] if p in index and p != rank]
        weight = 1.0 / (1.0 + len(in_group))
        matrix[i][i] = weight
        for peer in in_group:
            matrix[i][index[peer]] = weight
    return matrix


# ----------------------------------------------------------------------
# Symbolic lowering
# ----------------------------------------------------------------------
def symbolic_schedule(
    point: PlanPoint, profile: ExecutionProfile | None = None
) -> BucketSchedule:
    """The :class:`BucketSchedule` the engine would build for ``point``.

    Runs the real :class:`ExecutionOptimizer` over the profile (the probe
    inventory by default) — so flattening, bucket caps and ready-order
    sorting are the production code paths, not a reimplementation — and
    resolves the update policy from the algorithm's declared
    ``update_mode`` unless the point overrides it.
    """
    profile = profile or probe_profile()
    config = BaguaConfig(
        overlap=point.overlap,
        flatten=point.flatten,
        hierarchical=point.hierarchical,
        bucket_bytes=point.bucket_bytes,
    )
    plan = ExecutionOptimizer(config).plan(profile)
    per_bucket = point.per_bucket_updates
    if per_bucket is None:
        per_bucket = update_mode_of(point.algorithm) == UPDATE_PER_BUCKET
    return BucketSchedule.from_plan(plan, per_bucket_updates=per_bucket)


def _pattern_for_step(point: PlanPoint, model: CommModel, step: int) -> CommPattern:
    """The :class:`CommPattern` of one iteration of ``point``."""
    frequency = model.frequency if point.frequency is None else point.frequency
    warmup = model.warmup_steps if point.warmup_steps is None else point.warmup_steps
    if frequency > 1 and (step + 1) % frequency != 0:
        # LocalSGD-style skip step: purely local updates, nothing on the wire.
        return CommPattern(kind="allreduce", silent=True)
    if warmup > 0 and 0 <= step < warmup:
        # 1-bit Adam's warmup runs full-precision allreduce.
        return CommPattern(kind="allreduce")
    codec = _resolved_codec(point, model)
    kind = _effective_kind(point, model)
    peer_sets = None
    if kind in GOSSIP_KINDS:
        peer_sets = gossip_peer_sets(point, model, step=max(step, 0))
    if codec is None:
        return CommPattern(kind=kind, peer_sets=peer_sets)
    name, biased, error_feedback = codec
    return CommPattern(
        kind=kind, compressor=name, biased=biased,
        error_feedback=error_feedback, peer_sets=peer_sets,
    )


def lower_point(
    point: PlanPoint, profile: ExecutionProfile | None = None
) -> AnalysisSubject:
    """Lower a plan description into the comm-op IR — no transport, no run.

    Single-step points lower with the conventional ``step = -1`` tag (the
    exact stream :func:`~repro.analysis.lowering.lower_schedule` produces);
    multi-step points tag real step indices so frequency/warmup phase
    structure and cross-step happens-before edges are visible.
    """
    model = comm_model_of(point.algorithm)
    schedule = symbolic_schedule(point, profile)
    nodes = None
    if point.world_size % point.workers_per_node == 0:
        nodes = node_major_partition(point.world_size, point.workers_per_node)
    elif point.hierarchical:
        raise ValueError(
            f"cannot lower hierarchical plan {point.describe()}: "
            f"workers_per_node={point.workers_per_node} does not divide "
            f"world_size={point.world_size} (plan-hierarchy-split)"
        )
    trace = CommTrace(point.world_size)
    for step in range(point.steps):
        pattern = _pattern_for_step(point, model, step)
        emit_iteration(
            trace, schedule, pattern, nodes=nodes,
            step=-1 if point.steps == 1 else step,
        )
    expected_topology = None
    if model.kind in GOSSIP_KINDS and point.peer_sets is None:
        if _effective_topology(point, model) == "ring":
            expected_topology = "ring"
    subject = AnalysisSubject(
        world_size=point.world_size,
        trace=trace,
        layout=layout_from_schedule(schedule),
        expected_topology=expected_topology,
        source=f"symbolic lowering ({point.describe()}; {schedule.describe()})",
    )
    bound = staleness_bound_of(point.algorithm)
    if bound is not None:
        subject.notes["staleness_bound"] = bound
    return subject


def sweep_variants(
    point: PlanPoint, profile: ExecutionProfile | None = None
) -> list[AnalysisSubject]:
    """The symbolic twin of the driver's ``--hb`` variant sweep.

    Mirrors :func:`repro.analysis.driver.analyze_algorithm` exactly: the
    bucket structure is planned once (F on, probe cap) and the sixteen
    O/F/H × update-mode rewrites are ``dataclasses.replace`` on the frozen
    schedule — flipping F does *not* re-plan buckets, because the driver's
    sweep checks rewrites of one committed plan, not sixteen plans.
    """
    base = symbolic_schedule(
        dataclasses.replace(point, overlap=True, flatten=True, hierarchical=False),
        profile,
    )
    nodes = node_major_partition(point.world_size, point.workers_per_node)
    from .lowering import lower_schedule

    subjects = []
    for overlap in (False, True):
        for flatten in (False, True):
            for hierarchical in (False, True):
                for per_bucket in (False, True):
                    variant = dataclasses.replace(
                        base,
                        overlap_backward=overlap,
                        flatten=flatten,
                        hierarchical=hierarchical,
                        per_bucket_updates=per_bucket,
                    )
                    subjects.append(
                        lower_schedule(variant, point.world_size, nodes=nodes)
                    )
    return subjects


# ----------------------------------------------------------------------
# Static rules: provable from the description alone
# ----------------------------------------------------------------------
def _finding(rule: str, message: str, point: PlanPoint, severity: str = "error",
             **loc) -> Finding:
    return Finding(
        rule=rule, severity=severity, message=message,
        plan=point.describe(), **loc,
    )


def _check_hierarchy_split(point: PlanPoint) -> list[Finding]:
    if not point.hierarchical:
        return []
    if point.world_size % point.workers_per_node == 0:
        return []
    return [
        _finding(
            "plan-hierarchy-split",
            f"hierarchical (H) plan needs workers_per_node to divide the "
            f"world evenly, but {point.workers_per_node} does not divide "
            f"{point.world_size} — the trailing node would be under-sized "
            f"and its leader would join inter-node collectives the other "
            f"leaders shape differently",
            point,
        )
    ]


def _check_compressor_compat(point: PlanPoint, model: CommModel) -> list[Finding]:
    findings: list[Finding] = []
    if point.compressor is not None and point.compressor not in COMPRESSOR_REGISTRY:
        findings.append(
            _finding(
                "plan-compressor-compat",
                f"unknown compressor {point.compressor!r}; registered codecs: "
                f"{sorted(COMPRESSOR_REGISTRY)}",
                point,
            )
        )
        return findings
    codec = _resolved_codec(point, model)
    if codec is not None:
        name, biased, error_feedback = codec
        if biased and not error_feedback:
            findings.append(
                _finding(
                    "plan-compressor-compat",
                    f"biased compressor {name!r} without error feedback — "
                    f"compression error accumulates step over step and the "
                    f"error-compensated convergence guarantees (§2.2) no "
                    f"longer hold",
                    point,
                )
            )
    sync = "async" if model.asynchronous else "sync"
    precision = "full" if codec is None else "low"
    centralization = (
        "decentralized" if model.kind in GOSSIP_KINDS else "centralized"
    )
    row = next(
        (
            p for p in SUPPORT_MATRIX
            if (p.synchronization, p.precision, p.centralization)
            == (sync, precision, centralization)
        ),
        None,
    )
    if row is not None and not row.bagua:
        findings.append(
            _finding(
                "plan-compressor-compat",
                f"relaxation combination ({sync}, {precision}, "
                f"{centralization}) is an unsupported row of Table 1 — no "
                f"BAGUA algorithm instantiates it",
                point,
            )
        )
    return findings


def _check_bucket_feasibility(
    point: PlanPoint, profile: ExecutionProfile
) -> list[Finding]:
    if point.bucket_bytes <= 0:
        return [
            _finding(
                "plan-bucket-feasibility",
                f"bucket cap must be positive, got {point.bucket_bytes:g} B",
                point,
            )
        ]
    if not point.flatten or not point.overlap or len(profile.records) < 2:
        return []
    if profile.total_bytes_fp32 <= point.bucket_bytes:
        return [
            _finding(
                "plan-bucket-feasibility",
                f"bucket cap {point.bucket_bytes:g} B fuses the whole model "
                f"({profile.total_bytes_fp32:g} B) into one bucket: overlap "
                f"(O) has nothing to hide communication behind and "
                f"per-bucket updates degenerate to a barrier",
                point,
                severity="warning",
            )
        ]
    return []


def _check_gossip_closure(
    point: PlanPoint,
    peer_sets: tuple[tuple[int, ...], ...],
    members: tuple[int, ...],
    step: int | None,
) -> list[Finding]:
    findings: list[Finding] = []
    member_set = set(members)
    for rank in members:
        for peer in peer_sets[rank]:
            if peer == rank:
                findings.append(
                    _finding(
                        "plan-gossip-closure",
                        f"rank {rank} lists itself as a gossip peer",
                        point, rank=rank, step=step,
                    )
                )
            elif peer not in member_set:
                findings.append(
                    _finding(
                        "plan-gossip-closure",
                        f"rank {rank} lists peer {peer}, which is outside the "
                        f"gossip group {sorted(member_set)}",
                        point, rank=rank, step=step,
                    )
                )
            elif rank not in peer_sets[peer]:
                findings.append(
                    _finding(
                        "plan-gossip-closure",
                        f"peer sets are not mutual: rank {rank} exchanges "
                        f"with {peer} but rank {peer}'s peer set is "
                        f"{sorted(peer_sets[peer])} — rank {rank} would wait "
                        f"on a message never sent",
                        point, rank=rank, step=step,
                    )
                )
    return findings


def _check_gossip_stochasticity(
    point: PlanPoint,
    peer_sets: tuple[tuple[int, ...], ...],
    members: tuple[int, ...],
    step: int | None,
) -> list[Finding]:
    matrix = gossip_weight_matrix(peer_sets, members)
    n = len(members)
    worst_rank, worst_sum = None, 1.0
    for j in range(n):
        column = sum(matrix[i][j] for i in range(n))
        if abs(column - 1.0) > abs(worst_sum - 1.0) + 1e-12:
            worst_rank, worst_sum = members[j], column
    if worst_rank is None or abs(worst_sum - 1.0) <= 1e-9:
        return []
    return [
        _finding(
            "plan-gossip-stochasticity",
            f"gossip weight matrix is not doubly stochastic: the column of "
            f"rank {worst_rank} sums to {worst_sum:.4f} ≠ 1 (peers are "
            f"mutual but degrees are uneven), so repeated averaging drifts "
            f"mass and the uniform consensus is no longer a fixed point",
            point, rank=worst_rank, step=step,
        )
    ]


def check_plan_static(
    point: PlanPoint, profile: ExecutionProfile | None = None
) -> list[Finding]:
    """Run every static rule over one plan description.

    These rules need no IR: they inspect the point itself.  Gossip structure
    is checked per communicating step (random pairings differ by step);
    stochasticity is only meaningful once closure holds, so it is gated on a
    clean closure pass — each broken plan yields its one root-cause finding
    rather than a cascade.
    """
    model = comm_model_of(point.algorithm)
    profile = profile or probe_profile()
    findings = _check_hierarchy_split(point)
    findings.extend(_check_compressor_compat(point, model))
    findings.extend(_check_bucket_feasibility(point, profile))
    if model.kind in GOSSIP_KINDS:
        if point.hierarchical and point.world_size % point.workers_per_node != 0:
            return findings  # the split error already explains this plan
        members = gossip_members(point)
        steps = (
            [None]
            if point.peer_sets is not None or point.steps <= 1
            else list(range(point.steps))
        )
        for step in steps:
            peer_sets = gossip_peer_sets(point, model, step=step or 0)
            closure = _check_gossip_closure(point, peer_sets, members, step)
            findings.extend(closure)
            if not closure:
                findings.extend(
                    _check_gossip_stochasticity(point, peer_sets, members, step)
                )
    return findings
