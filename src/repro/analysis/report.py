"""Findings and reports: the analyzer's structured output.

A :class:`Finding` is one rule violation pinned to (rule, severity, rank,
op index, bucket).  :class:`AnalysisReport` aggregates findings for one
algorithm; :class:`SweepReport` aggregates reports across the registry for
``python -m repro analyze --all``.  Both render as text or plain dicts (for
``--json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One rule violation (or advisory) discovered by a checker.

    ``witness`` is an optional printable proof — for the happens-before
    rules it is the pair of unordered events plus a minimal HB path (or the
    wait-for cycle), rendered by ``repro analyze --explain``.
    """

    rule: str
    severity: str
    message: str
    rank: int | None = None
    seq: int | None = None
    bucket: str | None = None
    step: int | None = None
    plan: str | None = None
    witness: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def with_witness(self, witness: tuple[str, ...]) -> Finding:
        """Copy of this finding carrying ``witness`` as its printable proof."""
        return replace(self, witness=tuple(witness))

    def location(self) -> str:
        parts = []
        if self.plan:
            parts.append(f"plan {self.plan}")
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        if self.seq is not None:
            parts.append(f"op {self.seq}")
        if self.bucket:
            parts.append(self.bucket)
        if self.step is not None and self.step >= 0:
            parts.append(f"step {self.step}")
        return ", ".join(parts)

    def render(self) -> str:
        where = self.location()
        suffix = f" [{where}]" if where else ""
        return f"{self.severity.upper()} {self.rule}: {self.message}{suffix}"

    def explain(self) -> str:
        """The finding plus its happens-before witness, if it carries one."""
        lines = [self.render()]
        lines.extend(f"  {line}" for line in self.witness)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "rank": self.rank,
            "seq": self.seq,
            "bucket": self.bucket,
            "step": self.step,
            "plan": self.plan,
            "witness": list(self.witness),
        }


@dataclass
class AnalysisReport:
    """All findings for one algorithm on one cluster shape."""

    algorithm: str
    world: str
    checkers: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    num_ops: int = 0
    sources: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def rules_fired(self) -> list[str]:
        return sorted({f.rule for f in self.findings})

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"{status} {self.algorithm} on {self.world}: "
            f"{self.num_ops} ops, {len(self.checkers)} checkers, "
            f"{len(self.findings)} finding(s)"
        ]
        for source in self.sources:
            lines.append(f"  analyzed: {source}")
        for index, finding in enumerate(self.findings):
            lines.append(f"  [{index}] {finding.render()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "world": self.world,
            "ok": self.ok,
            "num_ops": self.num_ops,
            "checkers": list(self.checkers),
            "sources": list(self.sources),
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass
class SweepReport:
    """One :class:`AnalysisReport` per registered algorithm."""

    reports: list[AnalysisReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    def all_findings(self) -> list[Finding]:
        """Every finding of the sweep, in report order (for ``--explain``)."""
        return [f for report in self.reports for f in report.findings]

    def render(self) -> str:
        width = max((len(r.algorithm) for r in self.reports), default=10)
        lines = [f"{'algorithm'.ljust(width)}  status  ops    findings"]
        for report in self.reports:
            status = "PASS" if report.ok else "FAIL"
            lines.append(
                f"{report.algorithm.ljust(width)}  {status:6s}  {report.num_ops:<5d}  "
                f"{len(report.findings)}"
            )
        failing = [r for r in self.reports if not r.ok]
        for report in failing:
            lines.append("")
            lines.append(report.render())
        total = sum(len(r.findings) for r in self.reports)
        lines.append("")
        lines.append(
            f"{len(self.reports)} algorithm(s), {total} finding(s), "
            f"{len(failing)} failing"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"ok": self.ok, "reports": [r.to_dict() for r in self.reports]}
