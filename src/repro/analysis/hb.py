"""Happens-before engine: vector clocks over (rank, thread, event) triples.

The per-rank heuristics in :mod:`repro.analysis.checkers` verify properties
of one rank's op list at a time.  This module builds the *cross-rank partial
order* the paper's correctness argument actually rests on (the rewritten
schedule must preserve the dependency structure of the original DAG — Shi et
al.'s DAG model of synchronous SGD) and assigns every event a vector clock,
from three edge sources:

* **program order** — consecutive ops of one ``(rank, thread)`` stream;
* **communication matching** — a collective is an all-to-all synchronization
  of its group (hierarchical intra-node/inter-node/broadcast phases each
  synchronize their own subgroup); a ``send`` happens-before its matched
  ``recv``; a gossip exchange synchronizes each *mutual* peer pair only;
* **gate edges** — the ``GATE_*`` constants of :mod:`repro.core.schedule`
  carried by lowered events: a comm gated on ``grad_ready`` orders after its
  bucket's issue, ``backward_end`` after every issue, ``comm_done`` after
  the bucket's collective phases, ``barrier`` after every collective.

Construction is operational: an abstract scheduler executes the per-thread
streams, completing a collective only when every participant reached it and
a recv only when its send ran.  If the scheduler wedges, the stuck state is
a *provable deadlock* — either a cycle in the cross-rank wait-for graph
(mismatched collective orders) or an unsatisfiable wait (asymmetric gossip
peers, a recv whose send never exists).  On top of the clocks, four rules:

* ``hb-race`` — two same-rank events touching overlapping byte intervals,
  at least one a write, with no happens-before order;
* ``hb-deadlock`` — the stuck states above, with the wait cycle as witness;
* ``hb-lost-update`` — an error-feedback residual write unordered with
  another access to the same residual;
* ``hb-staleness`` — an update consuming a gradient whose compute event is
  more steps away (along happens-before) than the algorithm's declared
  staleness bound.

Every finding carries a printable witness (``repro analyze --explain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..core.schedule import (
    GATE_BACKWARD_END,
    GATE_BARRIER,
    GATE_COMM_DONE,
    GATE_GRAD_READY,
)
from .ir import GOSSIP_KINDS, AnalysisSubject, CommOp
from .report import Finding

#: Memory spaces an event footprint can live in.  Gradients, parameters and
#: error-feedback residuals are distinct allocations even when they describe
#: the same bucket interval.
SPACE_GRAD = "grad"
SPACE_PARAM = "param"
SPACE_EF = "ef"

_SUBJECT_CACHE_KEY = "_hb_graph"


@dataclass(frozen=True)
class Footprint:
    """One contiguous interval an event reads and/or writes."""

    space: str
    start: int
    stop: int
    reads: bool
    writes: bool

    def overlaps(self, other: Footprint) -> bool:
        return (
            self.space == other.space
            and self.start < other.stop
            and other.start < self.stop
        )


@dataclass
class HBEvent:
    """One executed (rank, thread, event) triple with its vector clock."""

    uid: int
    op: CommOp
    tid: int  # index into HBGraph.threads
    clock: tuple[int, ...] = ()
    #: direct happens-before predecessors (uids), for witness paths
    preds: tuple[int, ...] = ()
    footprints: tuple[Footprint, ...] = ()

    def describe(self) -> str:
        op = self.op
        parts = [f"rank {op.rank}", f"thread {op.thread!r}", f"op#{op.seq}", op.kind]
        if op.bucket:
            parts.append(op.bucket)
        if op.step >= 0:
            parts.append(f"step {op.step}")
        return " ".join(parts)


@dataclass
class Deadlock:
    """One provable deadlock: a wait cycle or an unsatisfiable wait."""

    message: str
    #: uids of the blocked events, in cycle order for wait cycles
    events: list[int] = field(default_factory=list)
    #: human-readable wait-for chain, one line per hop
    witness: list[str] = field(default_factory=list)
    rank: int | None = None
    seq: int | None = None
    bucket: str | None = None
    step: int | None = None


def _footprints(op: CommOp, extent_of: dict[str, tuple[int, int]]) -> tuple[Footprint, ...]:
    """The memory intervals ``op`` touches, by kind.

    Lowered events carry explicit ``start``/``stop`` element intervals;
    otherwise the bucket's extent in the subject layout is used, and a
    bucket with no known extent gets a synthetic one (distinct per name), so
    same-bucket conflicts are still caught on hand-built traces.
    """
    if not op.bucket and op.kind != "ef_write":
        return ()
    if op.start >= 0 and op.stop >= 0 and op.stop > op.start:
        lo, hi = op.start, op.stop
    elif op.bucket in extent_of:
        lo, hi = extent_of[op.bucket]
    else:
        lo, hi = 0, max(int(op.elements), 1)
    space_key = "" if op.start >= 0 or op.bucket in extent_of else f"@{op.bucket}"

    prints: list[Footprint] = []

    def touch(space: str, reads: bool, writes: bool) -> None:
        prints.append(Footprint(space + space_key, lo, hi, reads, writes))

    if op.kind in ("allreduce", "compressed_allreduce", "reduce", "broadcast"):
        # Reductions read and overwrite the bucket's gradient in place.
        touch(SPACE_GRAD, reads=True, writes=True)
        if op.error_feedback:
            touch(SPACE_EF, reads=True, writes=True)
    elif op.kind in GOSSIP_KINDS:
        # Gossip averages model weights in place.
        touch(SPACE_PARAM, reads=True, writes=True)
        if op.error_feedback:
            touch(SPACE_EF, reads=True, writes=True)
    elif op.kind == "opt_step":
        touch(SPACE_GRAD, reads=True, writes=False)
        touch(SPACE_PARAM, reads=True, writes=True)
    elif op.kind == "ef_write":
        touch(SPACE_EF, reads=False, writes=True)
    elif op.kind == "issue":
        # The issue marks backward's last write of this bucket's gradient:
        # anything unordered with it races the backward pass itself.
        touch(SPACE_GRAD, reads=False, writes=True)
    return tuple(prints)


class HBGraph:
    """The happens-before partial order of one :class:`AnalysisSubject`."""

    def __init__(self, subject: AnalysisSubject) -> None:
        self.subject = subject
        self.threads: list[tuple[int, str]] = []
        self.events: list[HBEvent] = []
        self.deadlocks: list[Deadlock] = []
        self._by_rank: dict[int, list[HBEvent]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def deadlocked(self) -> bool:
        return bool(self.deadlocks)

    def happens_before(self, a: HBEvent, b: HBEvent) -> bool:
        """True iff ``a`` happens-before ``b`` (strict, via vector clocks)."""
        if a.uid == b.uid or not a.clock or not b.clock:
            return False
        return a.clock[a.tid] <= b.clock[a.tid] and a.clock != b.clock

    def ordered(self, a: HBEvent, b: HBEvent) -> bool:
        return self.happens_before(a, b) or self.happens_before(b, a)

    def path(self, src: HBEvent, dst: HBEvent) -> list[HBEvent] | None:
        """A shortest happens-before path ``src -> ... -> dst``, or ``None``."""
        if src.uid == dst.uid:
            return [src]
        if not self.happens_before(src, dst):
            return None
        # BFS backwards over direct-predecessor edges.
        from collections import deque

        parent: dict[int, int] = {}
        queue = deque([dst.uid])
        seen = {dst.uid}
        while queue:
            uid = queue.popleft()
            for pred in self.events[uid].preds:
                if pred in seen:
                    continue
                parent[pred] = uid
                if pred == src.uid:
                    chain = [src.uid]
                    while chain[-1] != dst.uid:
                        chain.append(parent[chain[-1]])
                    return [self.events[u] for u in chain]
                seen.add(pred)
                queue.append(pred)
        return None

    def common_ancestor(self, a: HBEvent, b: HBEvent) -> HBEvent | None:
        """The latest event that happens-before both ``a`` and ``b``."""
        best: HBEvent | None = None
        for event in self.events:
            if self.happens_before(event, a) and self.happens_before(event, b):
                if best is None or self.happens_before(best, event):
                    best = event
        return best

    # ------------------------------------------------------------------
    # Construction (operational scheduler)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        trace = self.subject.trace
        if trace is None:
            return

        extent_of = {
            extent.name: (extent.start, extent.stop) for extent in self.subject.layout
        }

        # Event table and per-(rank, thread) streams in program order.
        tid_of: dict[tuple[int, str], int] = {}
        streams: list[list[int]] = []
        for rank in trace.ranks:
            for op in trace.ops_of(rank):
                key = (rank, op.thread)
                if key not in tid_of:
                    tid_of[key] = len(self.threads)
                    self.threads.append(key)
                    streams.append([])
                uid = len(self.events)
                event = HBEvent(
                    uid=uid,
                    op=op,
                    tid=tid_of[key],
                    footprints=_footprints(op, extent_of),
                )
                self.events.append(event)
                streams[tid_of[key]].append(uid)
                self._by_rank.setdefault(rank, []).append(event)

        gate_preds = self._resolve_gates()
        matches = self._match_sync_ops()

        n_threads = len(self.threads)
        clocks: dict[int, list[int]] = {}
        executed: set[int] = set()
        heads = [0] * n_threads

        def head(tid: int) -> int | None:
            return streams[tid][heads[tid]] if heads[tid] < len(streams[tid]) else None

        def local_ready(uid: int) -> bool:
            """At stream head with every gate predecessor executed."""
            event = self.events[uid]
            if head(event.tid) != uid:
                return False
            return all(p in executed for p in gate_preds.get(uid, ()))

        def join(uids: Sequence[int]) -> list[int]:
            clock = [0] * n_threads
            for uid in uids:
                for i, value in enumerate(clocks[uid]):
                    if value > clock[i]:
                        clock[i] = value
            return clock

        def execute(members: Sequence[int]) -> None:
            """Run ``members`` as one synchronization; assign their clocks."""
            pre: list[int] = []
            for uid in members:
                event = self.events[uid]
                stream = streams[event.tid]
                pos = stream.index(uid)
                if pos > 0:
                    pre.append(stream[pos - 1])
                pre.extend(gate_preds.get(uid, ()))
            base = join(pre)
            for uid in members:
                event = self.events[uid]
                clock = list(base)
                clock[event.tid] = max(
                    clock[event.tid],
                    max((clocks[p][event.tid] for p in pre), default=0),
                ) + 1
                clocks[uid] = clock
                event.clock = tuple(clock)
                event.preds = tuple(sorted(set(pre)))
                executed.add(uid)
                heads[event.tid] += 1

        def execute_recv(uid: int, send_uid: int) -> None:
            event = self.events[uid]
            stream = streams[event.tid]
            pos = stream.index(uid)
            pre = [stream[pos - 1]] if pos > 0 else []
            pre.extend(gate_preds.get(uid, ()))
            pre.append(send_uid)  # the send itself happens-before the recv
            clock = join(pre)
            clock[event.tid] += 1
            clocks[uid] = clock
            event.clock = tuple(clock)
            event.preds = tuple(sorted(set(pre)))
            executed.add(uid)
            heads[event.tid] += 1

        send_of = matches.send_of
        set_of = matches.set_of
        members_of = matches.members_of

        progress = True
        while progress:
            progress = False
            for tid in range(n_threads):
                uid = head(tid)
                if uid is None or not local_ready(uid):
                    continue
                event = self.events[uid]
                op = event.op
                if op.scope == "collective" and op.kind not in GOSSIP_KINDS:
                    members = members_of.get(set_of.get(uid), [uid])
                    present = {self.events[m].op.rank for m in members}
                    if op.group and not set(op.group) <= present:
                        continue  # a group member never issues this collective
                    if all(local_ready(m) for m in members):
                        execute(members)
                        progress = True
                elif op.kind in GOSSIP_KINDS:
                    cluster = self._gossip_cluster(uid, matches, local_ready)
                    if cluster is not None:
                        execute(cluster)
                        progress = True
                elif op.kind == "recv":
                    send_uid = send_of.get(uid)
                    if send_uid is not None and send_uid in executed:
                        execute_recv(uid, send_uid)
                        progress = True
                else:  # send and local schedule events run eagerly
                    execute([uid])
                    progress = True

        blocked = [
            streams[tid][heads[tid]]
            for tid in range(n_threads)
            if heads[tid] < len(streams[tid])
        ]
        if blocked:
            self._diagnose_deadlock(blocked, gate_preds, matches, executed, streams, heads)

    def _gossip_cluster(self, uid, matches, local_ready) -> list[int] | None:
        """The mutual-peer closure of ``uid``'s gossip op, if all are ready.

        Returns ``None`` while any member still has to arrive; an op whose
        peer never reciprocates simply never becomes executable and is later
        diagnosed as a deadlock.
        """
        cluster: set[int] = set()
        frontier = [uid]
        while frontier:
            current = frontier.pop()
            if current in cluster:
                continue
            cluster.add(current)
            for peer_uid, mutual in matches.gossip_peers.get(current, []):
                if peer_uid is None or not mutual:
                    return None  # waits on a peer that never reciprocates
                if peer_uid not in cluster:
                    frontier.append(peer_uid)
        if all(local_ready(m) for m in cluster):
            return sorted(cluster)
        return None

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    class _Matches:
        def __init__(self) -> None:
            #: collective uid -> matched-set key
            self.set_of: dict[int, tuple] = {}
            #: matched-set key -> member uids
            self.members_of: dict[tuple, list[int]] = {}
            #: recv uid -> send uid (or absent when no send matches)
            self.send_of: dict[int, int] = {}
            #: gossip uid -> [(peer uid or None, mutual?)] per listed peer
            self.gossip_peers: dict[int, list[tuple[int | None, bool]]] = {}

    def _match_sync_ops(self) -> _Matches:
        matches = self._Matches()
        # Collectives (incl. gossip) match by (group, signature, occurrence):
        # the k-th time a rank enters this group with this payload shape
        # pairs with the k-th entry of every other member.  Matching by
        # signature (not plain position) is what turns a reordered pair of
        # collectives into a wait cycle instead of a payload-mismatch diff.
        counters: dict[tuple[int, tuple], int] = {}
        for event in self.events:
            op = event.op
            if op.scope != "collective" or not op.group:
                continue
            key = (op.group, op.kind, op.signature())
            occurrence = counters.get((op.rank, key), 0)
            counters[(op.rank, key)] = occurrence + 1
            set_key = (key, occurrence)
            matches.set_of[event.uid] = set_key
            matches.members_of.setdefault(set_key, []).append(event.uid)

        # Gossip peer resolution: within a matched set, rank i's listed peer
        # j resolves to j's member event; mutual iff j lists i back.
        for members in matches.members_of.values():
            first = self.events[members[0]].op
            if first.kind not in GOSSIP_KINDS:
                continue
            by_rank = {self.events[uid].op.rank: uid for uid in members}
            for uid in members:
                op = self.events[uid].op
                resolved: list[tuple[int | None, bool]] = []
                for peer in op.peers:
                    peer_uid = by_rank.get(peer)
                    mutual = (
                        peer_uid is not None
                        and op.rank in self.events[peer_uid].op.peers
                    )
                    resolved.append((peer_uid, mutual))
                matches.gossip_peers[uid] = resolved

        # P2P: pair by explicit match id first, then greedily by
        # (round, src, dst, nbytes) — the recorder's legacy format.
        sends_by_id: dict[str, int] = {}
        recvs: list[HBEvent] = []
        unpaired_sends: dict[tuple, list[int]] = {}
        for event in self.events:
            op = event.op
            if op.kind == "send":
                if op.match:
                    sends_by_id[op.match] = event.uid
                else:
                    dst = op.peers[0] if op.peers else None
                    unpaired_sends.setdefault(
                        (op.round, op.rank, dst, op.nbytes), []
                    ).append(event.uid)
            elif op.kind == "recv":
                recvs.append(event)
        for event in recvs:
            op = event.op
            if op.match and op.match in sends_by_id:
                matches.send_of[event.uid] = sends_by_id[op.match]
                continue
            src = op.peers[0] if op.peers else None
            pool = unpaired_sends.get((op.round, src, op.rank, op.nbytes))
            if pool:
                matches.send_of[event.uid] = pool.pop(0)
        return matches

    # ------------------------------------------------------------------
    # Gate edges
    # ------------------------------------------------------------------
    def _resolve_gates(self) -> dict[int, list[int]]:
        """Map each gated event to the uids its gate waits on (per rank)."""
        gate_preds: dict[int, list[int]] = {}
        for events in self._by_rank.values():
            issues: dict[str, list[int]] = {}
            all_issues: list[int] = []
            comms: dict[str, list[int]] = {}
            all_comms: list[int] = []
            for event in events:
                op = event.op
                if op.kind == "issue":
                    issues.setdefault(op.bucket, []).append(event.uid)
                    all_issues.append(event.uid)
                elif op.scope == "collective":
                    comms.setdefault(op.bucket, []).append(event.uid)
                    all_comms.append(event.uid)
                if not op.gate:
                    continue
                if op.gate == GATE_GRAD_READY:
                    pool = issues.get(op.bucket, [])
                    gate_preds[event.uid] = [pool[-1]] if pool else []
                elif op.gate == GATE_BACKWARD_END:
                    gate_preds[event.uid] = list(all_issues)
                elif op.gate == GATE_COMM_DONE:
                    gate_preds[event.uid] = list(comms.get(op.bucket, []))
                elif op.gate == GATE_BARRIER:
                    gate_preds[event.uid] = list(all_comms)
        return gate_preds

    # ------------------------------------------------------------------
    # Deadlock diagnosis
    # ------------------------------------------------------------------
    def _diagnose_deadlock(
        self, blocked, gate_preds, matches, executed, streams, heads
    ) -> None:
        blocked_set = set(blocked)
        waits: dict[int, list[tuple[int | None, str]]] = {}

        def head_of_thread(tid: int) -> int | None:
            return streams[tid][heads[tid]] if heads[tid] < len(streams[tid]) else None

        for uid in blocked:
            event = self.events[uid]
            op = event.op
            reasons: list[tuple[int | None, str]] = []
            for pred in gate_preds.get(uid, ()):
                if pred not in executed:
                    reasons.append(
                        (pred, f"gate {op.gate!r} waits on {self.events[pred].describe()}")
                    )
            if op.scope == "collective" and op.kind not in GOSSIP_KINDS and op.group:
                members = matches.members_of.get(matches.set_of.get(uid), [uid])
                present = {self.events[m].op.rank for m in members}
                for peer in op.group:
                    if peer == op.rank:
                        continue
                    if peer not in present:
                        reasons.append(
                            (
                                None,
                                f"rank {peer} never issues a matching "
                                f"{op.describe()} — rank {op.rank} blocks forever",
                            )
                        )
                for member in members:
                    if member != uid and member not in executed:
                        peer_rank = self.events[member].op.rank
                        peer_tid = self.events[member].tid
                        stuck_on = head_of_thread(peer_tid)
                        if stuck_on is not None and stuck_on != member:
                            reasons.append(
                                (
                                    stuck_on,
                                    f"waits for rank {peer_rank} to reach "
                                    f"{self.events[member].describe()}, but rank "
                                    f"{peer_rank} is at {self.events[stuck_on].describe()}",
                                )
                            )
            elif op.kind in GOSSIP_KINDS:
                for peer_uid, mutual in matches.gossip_peers.get(uid, []):
                    if peer_uid is None:
                        reasons.append(
                            (
                                None,
                                f"waits on a peer that never reaches this gossip "
                                f"round — {op.describe()}",
                            )
                        )
                    elif not mutual:
                        peer_op = self.events[peer_uid].op
                        reasons.append(
                            (
                                None,
                                f"rank {op.rank} exchanges with rank {peer_op.rank} "
                                f"but rank {peer_op.rank}'s peer set "
                                f"{sorted(peer_op.peers)} does not list rank "
                                f"{op.rank} — the recv is never posted",
                            )
                        )
                    elif peer_uid not in executed:
                        reasons.append(
                            (
                                peer_uid,
                                f"waits for {self.events[peer_uid].describe()}",
                            )
                        )
            elif op.kind == "recv":
                send_uid = matches.send_of.get(uid)
                if send_uid is None:
                    reasons.append(
                        (
                            None,
                            f"recv of {op.nbytes:.0f} B from rank "
                            f"{op.peers[0] if op.peers else '?'} has no matching "
                            "send — it blocks forever",
                        )
                    )
                elif send_uid not in executed:
                    reasons.append(
                        (send_uid, f"waits for {self.events[send_uid].describe()}")
                    )
            waits[uid] = reasons

        # A wait target that is not itself blocked resolves to the event its
        # thread is actually stuck on (the head of that thread).
        def resolve(target: int | None) -> int | None:
            if target is None:
                return None
            if target in blocked_set:
                return target
            stuck = head_of_thread(self.events[target].tid)
            return stuck if stuck in blocked_set else None

        # 1) Unsatisfiable waits are root causes on their own.
        reported: set[int] = set()
        for uid in blocked:
            for target, text in waits.get(uid, []):
                if target is None:
                    event = self.events[uid]
                    self.deadlocks.append(
                        Deadlock(
                            message=f"{event.describe()}: {text}",
                            events=[uid],
                            witness=[f"{event.describe()} is blocked: {text}"],
                            rank=event.op.rank,
                            seq=event.op.seq,
                            bucket=event.op.bucket or None,
                            step=event.op.step if event.op.step >= 0 else None,
                        )
                    )
                    reported.add(uid)

        # 2) Cycles in the wait-for graph among the remaining blocked events.
        graph: dict[int, list[tuple[int, str]]] = {}
        for uid in blocked:
            edges = []
            for target, text in waits.get(uid, []):
                resolved = resolve(target)
                if resolved is not None:
                    edges.append((resolved, text))
            graph[uid] = edges

        cycle = self._find_cycle(graph)
        if cycle is not None and not any(uid in reported for uid in cycle):
            witness = []
            for i, uid in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                text = next((t for v, t in graph[uid] if v == nxt), "waits for")
                witness.append(f"{self.events[uid].describe()} -> {text}")
            first = self.events[cycle[0]]
            ranks = sorted({self.events[uid].op.rank for uid in cycle})
            self.deadlocks.append(
                Deadlock(
                    message=(
                        f"wait cycle across ranks {ranks}: "
                        + " ; ".join(self.events[uid].op.describe() for uid in cycle)
                    ),
                    events=list(cycle),
                    witness=witness,
                    rank=first.op.rank,
                    seq=first.op.seq,
                    bucket=first.op.bucket or None,
                    step=first.op.step if first.op.step >= 0 else None,
                )
            )
        elif cycle is None and not reported:
            # Blocked without a local root cause: report the first stuck event.
            event = self.events[blocked[0]]
            reasons = "; ".join(t for _v, t in waits.get(event.uid, [])) or "unknown wait"
            self.deadlocks.append(
                Deadlock(
                    message=f"{event.describe()} never becomes runnable: {reasons}",
                    events=[event.uid],
                    witness=[f"{event.describe()} is blocked: {reasons}"],
                    rank=event.op.rank,
                    seq=event.op.seq,
                    bucket=event.op.bucket or None,
                )
            )

    @staticmethod
    def _find_cycle(graph: dict[int, list[tuple[int, str]]]) -> list[int] | None:
        """First cycle in the wait-for graph (DFS with an explicit stack)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {uid: WHITE for uid in graph}
        for root in graph:
            if color[root] != WHITE:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            trail: list[int] = []
            while stack:
                uid, edge_idx = stack.pop()
                if edge_idx == 0:
                    color[uid] = GRAY
                    trail.append(uid)
                edges = graph.get(uid, [])
                advanced = False
                for i in range(edge_idx, len(edges)):
                    target = edges[i][0]
                    if target not in color:
                        continue
                    if color[target] == GRAY:
                        at = trail.index(target)
                        return trail[at:]
                    if color[target] == WHITE:
                        stack.append((uid, i + 1))
                        stack.append((target, 0))
                        advanced = True
                        break
                if not advanced:
                    color[uid] = BLACK
                    trail.pop()
        return None


# ----------------------------------------------------------------------
# Entry point + the four rules
# ----------------------------------------------------------------------
def build_hb(subject: AnalysisSubject) -> HBGraph:
    """Build (and cache on the subject) the happens-before graph."""
    cached = subject.notes.get(_SUBJECT_CACHE_KEY)
    if isinstance(cached, HBGraph) and cached.subject is subject:
        return cached
    graph = HBGraph(subject)
    subject.notes[_SUBJECT_CACHE_KEY] = graph
    return graph


def _pair_witness(graph: HBGraph, a: HBEvent, b: HBEvent) -> tuple[str, ...]:
    lines = [
        f"unordered pair on rank {a.op.rank}:",
        f"  A: {a.describe()}",
        f"  B: {b.describe()}",
        "  no happens-before path A -> B or B -> A",
    ]
    ancestor = graph.common_ancestor(a, b)
    if ancestor is not None:
        lines.append(f"  last common predecessor: {ancestor.describe()}")
    return tuple(lines)


def check_races(graph: HBGraph) -> list[Finding]:
    """hb-race: same-rank interval conflicts with no happens-before order."""
    if graph.deadlocked:
        return []  # clocks past the wedge are meaningless
    findings: list[Finding] = []
    for events in graph._by_rank.values():
        touching = [e for e in events if e.footprints and e.clock]
        for i, a in enumerate(touching):
            for b in touching[i + 1:]:
                if a.tid == b.tid or graph.ordered(a, b):
                    continue
                for fa in a.footprints:
                    if fa.space.startswith(SPACE_EF):
                        continue  # residual conflicts are hb-lost-update's
                    for fb in b.footprints:
                        if fb.space.startswith(SPACE_EF):
                            continue
                        if fa.overlaps(fb) and (fa.writes or fb.writes):
                            findings.append(
                                Finding(
                                    rule="hb-race",
                                    severity="error",
                                    message=(
                                        f"{a.op.describe()} and {b.op.describe()} "
                                        f"touch overlapping {fa.space} bytes "
                                        f"[{max(fa.start, fb.start)}, "
                                        f"{min(fa.stop, fb.stop)}) on rank "
                                        f"{a.op.rank} with no happens-before "
                                        "order — one concurrently clobbers what "
                                        "the other reads or writes"
                                    ),
                                    rank=a.op.rank,
                                    seq=a.op.seq,
                                    bucket=a.op.bucket or b.op.bucket or None,
                                    step=a.op.step if a.op.step >= 0 else None,
                                    witness=_pair_witness(graph, a, b),
                                )
                            )
                            break
                    else:
                        continue
                    break
    return findings


def check_deadlocks(graph: HBGraph) -> list[Finding]:
    """hb-deadlock: wait cycles and unsatisfiable waits."""
    findings: list[Finding] = []
    for deadlock in graph.deadlocks:
        findings.append(
            Finding(
                rule="hb-deadlock",
                severity="error",
                message=deadlock.message,
                rank=deadlock.rank,
                seq=deadlock.seq,
                bucket=deadlock.bucket,
                step=deadlock.step,
                witness=tuple(deadlock.witness),
            )
        )
    return findings


def check_lost_updates(graph: HBGraph) -> list[Finding]:
    """hb-lost-update: unordered accesses to error-feedback residuals."""
    if graph.deadlocked:
        return []
    findings: list[Finding] = []
    for events in graph._by_rank.values():
        touching = [
            e
            for e in events
            if e.clock and any(f.space.startswith(SPACE_EF) for f in e.footprints)
        ]
        for i, a in enumerate(touching):
            for b in touching[i + 1:]:
                if a.tid == b.tid or graph.ordered(a, b):
                    continue
                for fa in a.footprints:
                    if not fa.space.startswith(SPACE_EF):
                        continue
                    for fb in b.footprints:
                        if fb.space != fa.space or not fa.overlaps(fb):
                            continue
                        if fa.writes or fb.writes:
                            writer, other = (a, b) if fa.writes else (b, a)
                            findings.append(
                                Finding(
                                    rule="hb-lost-update",
                                    severity="error",
                                    message=(
                                        f"error-feedback residual write "
                                        f"{writer.op.describe()} is unordered "
                                        f"with {other.op.describe()} on rank "
                                        f"{writer.op.rank} — the compensation "
                                        "state one of them observes is lost"
                                    ),
                                    rank=writer.op.rank,
                                    seq=writer.op.seq,
                                    bucket=writer.op.bucket or other.op.bucket or None,
                                    step=writer.op.step if writer.op.step >= 0 else None,
                                    witness=_pair_witness(graph, a, b),
                                )
                            )
                            break
                    else:
                        continue
                    break
    return findings


def check_staleness(graph: HBGraph) -> list[Finding]:
    """hb-staleness: updates consuming gradients older than the bound."""
    if graph.deadlocked:
        return []
    bound = graph.subject.notes.get("staleness_bound")
    if bound is None:
        return []
    bound = int(bound)
    findings: list[Finding] = []
    for events in graph._by_rank.values():
        grads = [e for e in events if e.op.kind == "issue" and e.op.step >= 0 and e.clock]
        updates = [
            e for e in events if e.op.kind == "opt_step" and e.op.step >= 0 and e.clock
        ]
        for update in updates:
            producers = [
                g
                for g in grads
                if g.op.bucket == update.op.bucket and graph.happens_before(g, update)
            ]
            if not producers:
                continue
            freshest = max(producers, key=lambda g: g.op.step)
            staleness = update.op.step - freshest.op.step
            if staleness <= bound:
                continue
            chain = graph.path(freshest, update) or [freshest, update]
            witness = [
                f"update at step {update.op.step} consumes the gradient computed "
                f"at step {freshest.op.step} (staleness {staleness} > bound {bound}):"
            ]
            witness.extend(f"  -> {e.describe()}" for e in chain)
            findings.append(
                Finding(
                    rule="hb-staleness",
                    severity="error",
                    message=(
                        f"{update.op.describe()} consumes a gradient {staleness} "
                        f"step(s) old (freshest happens-before producer is "
                        f"step {freshest.op.step}); the algorithm declares a "
                        f"staleness bound of {bound}"
                    ),
                    rank=update.op.rank,
                    seq=update.op.seq,
                    bucket=update.op.bucket or None,
                    step=update.op.step,
                    witness=tuple(witness),
                )
            )
    return findings


def check_hb(subject: AnalysisSubject) -> list[Finding]:
    """Run all four happens-before rules over one subject."""
    graph = build_hb(subject)
    findings = check_deadlocks(graph)
    findings.extend(check_races(graph))
    findings.extend(check_lost_updates(graph))
    findings.extend(check_staleness(graph))
    return findings
