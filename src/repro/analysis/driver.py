"""Analyzer driver: dry-run an algorithm, lower its plan, run all checkers.

``analyze_algorithm`` is the front door: it builds a small simulated cluster
(default 2 nodes x 2 GPUs), trains a tiny probe model for a handful of steps
with a :class:`~repro.analysis.recorder.TraceRecorder` attached, and feeds
the checker suite three subjects:

* the **recorded trace** plus the live flattened-bucket layout (real byte
  addresses) — what the algorithm actually did;
* the **lowered execution plan** (schedule + planned extents) — what the
  execution optimizer committed to, checkable without running anything;
* the **lowered bucket schedule** — the gated event stream the
  :class:`~repro.core.schedule.ScheduledExecutor` drives, so the op order
  being verified is the one the executor actually runs.

``analyze_all`` sweeps every algorithm in :mod:`repro.algorithms.registry`,
which is the pre-PR correctness gate wired into ``python -m repro analyze``.

With ``hb=True`` (the ``--hb`` flag) the happens-before suite runs on every
subject, and the lowered :class:`~repro.core.schedule.BucketSchedule` is
additionally swept over every O/F/H × update-mode combination — a cheap
static enumeration (``dataclasses.replace`` on the frozen schedule) proving
each rewrite the execution optimizer could emit race- and deadlock-free,
and the sweep widens to the baseline registry.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..algorithms.registry import ALGORITHM_REGISTRY, make_algorithm
from ..baselines import BASELINE_REGISTRY
from ..cluster.topology import ClusterSpec
from ..cluster.transport import Transport
from ..cluster.worker import make_workers
from ..core.engine import Algorithm, BaguaEngine
from ..core.optimizer_framework import BaguaConfig
from ..tensor import functional as F
from ..tensor.layers import Linear
from ..tensor.module import Module
from ..tensor.optim import SGD
from ..tensor.tensor import Tensor
from .checkers import HB_CHECKERS, BufferAliasingChecker, run_checkers
from .ir import AnalysisSubject
from .lowering import layout_from_buckets, lower_plan, lower_schedule
from .recorder import TraceRecorder
from .report import AnalysisReport, SweepReport

#: Constructor overrides so a short dry run reaches each algorithm's
#: interesting communication path (e.g. 1-bit Adam's compressed stage starts
#: after warmup; LocalSGD only communicates every ``frequency`` steps).
ANALYSIS_OVERRIDES: dict[str, dict] = {
    "1bit-adam": {"warmup_steps": 2},
    "local-sgd": {"frequency": 2},
    "qsparse-local-sgd": {"frequency": 2},
}

#: Probe-model bucket cap: small enough that the tiny model still splits into
#: multiple fused buckets, so bucketing/overlap logic is actually exercised.
PROBE_BUCKET_BYTES = 256.0


class _ProbeMLP(Module):
    """Tiny two-layer MLP — four parameters, two buckets under the probe cap."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc1 = Linear(8, 12, rng=rng)
        self.fc2 = Linear(12, 4, rng=rng)

    def forward(self, x):
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.fc2(F.relu(self.fc1(x)))


def _probe_loss(model: Module, batch) -> object:
    inputs, labels = batch
    return F.cross_entropy(model(inputs), labels)


def _probe_batches(world_size: int, steps: int, seed: int) -> list[list]:
    rng = np.random.default_rng(np.random.SeedSequence([seed, 7]))
    per_step = []
    for _ in range(steps):
        batches = []
        for _rank in range(world_size):
            inputs = rng.normal(size=(4, 8))
            labels = rng.integers(0, 4, size=4)
            batches.append((inputs, labels))
        per_step.append(batches)
    return per_step


def _node_groups(spec: ClusterSpec) -> list[list[int]]:
    """Global ranks grouped per node, for the hierarchical lowering."""
    return spec.node_groups()


def analyze_algorithm(
    name: str,
    num_nodes: int = 2,
    gpus_per_node: int = 2,
    steps: int = 5,
    seed: int = 0,
    config: BaguaConfig | None = None,
    algorithm: Algorithm | None = None,
    hb: bool = False,
) -> AnalysisReport:
    """Run the full checker suite for one algorithm; returns its report.

    ``hb=True`` adds the happens-before rules to every subject and sweeps
    the lowered schedule across all O/F/H × update-mode variants.
    """
    if algorithm is None:
        if name in ALGORITHM_REGISTRY:
            algorithm = make_algorithm(name, **ANALYSIS_OVERRIDES.get(name, {}))
        elif name in BASELINE_REGISTRY:
            algorithm = BASELINE_REGISTRY[name]()
        else:
            algorithm = make_algorithm(name)  # raises with the known-name list
    config = config or BaguaConfig(bucket_bytes=PROBE_BUCKET_BYTES)
    spec = ClusterSpec(num_nodes=num_nodes, workers_per_node=gpus_per_node)
    transport = Transport(spec)
    workers = make_workers(spec, transport, seed=seed)
    models = [_ProbeMLP(np.random.default_rng(seed)) for _ in workers]
    optimizers = [SGD(m.parameters(), lr=0.05, momentum=0.9) for m in models]
    engine = BaguaEngine(models, optimizers, algorithm, workers, config=config)

    recorder = TraceRecorder(spec.world_size).install(transport)
    try:
        for step, batches in enumerate(_probe_batches(spec.world_size, steps, seed)):
            recorder.begin_step(step)
            engine.step(batches, _probe_loss)
    finally:
        recorder.uninstall()

    expected_topology = getattr(algorithm, "topology", None)
    if expected_topology != "ring":
        expected_topology = None

    checker_names = ["rank-symmetry", "peer-matching", "overlap-race",
                     "buffer-aliasing", "ef-invariant"]
    if hb:
        checker_names += ["hb-deadlock", "hb-race", "hb-lost-update", "hb-staleness"]
    report = AnalysisReport(
        algorithm=name,
        world=f"{num_nodes}x{gpus_per_node}",
        checkers=checker_names,
    )
    nodes = _node_groups(spec)

    def check_subject(subject: AnalysisSubject) -> None:
        if algorithm.staleness_bound is not None:
            subject.notes.setdefault("staleness_bound", algorithm.staleness_bound)
        report.findings.extend(run_checkers(subject))
        if hb:
            report.findings.extend(run_checkers(subject, HB_CHECKERS))
        report.sources.append(subject.source)
        report.num_ops += subject.trace.num_ops if subject.trace is not None else 0

    # Subject 1: what actually ran — trace + rank 0's real bucket layout.
    dynamic = AnalysisSubject(
        world_size=spec.world_size,
        trace=recorder.trace,
        layout=layout_from_buckets(engine.workers[0].buckets),
        expected_topology=expected_topology,
        source=f"dry-run trace ({steps} steps, {recorder.trace.num_ops} ops)",
    )
    check_subject(dynamic)

    # Remaining ranks' live layouts (each replica flattens its own buffers).
    aliasing = BufferAliasingChecker()
    for worker in engine.workers[1:]:
        replica = AnalysisSubject(
            world_size=spec.world_size,
            layout=layout_from_buckets(worker.buckets),
            source=f"rank {worker.rank} bucket layout",
        )
        report.findings.extend(aliasing.check(replica))

    # Subject 2: the plan, checked statically without running.
    if engine.plan is not None:
        planned = lower_plan(engine.plan, spec.world_size, nodes=nodes)
        planned.source = (
            f"plan lowering ({engine.plan.config.describe()}, "
            f"{engine.plan.num_buckets} buckets)"
        )
        check_subject(planned)

    # Subject 3: the executor's schedule — the gated event stream it runs.
    if engine.schedule is not None:
        scheduled = lower_schedule(engine.schedule, spec.world_size, nodes=nodes)
        check_subject(scheduled)

        # Under --hb, statically sweep every O/F/H × update-mode variant of
        # the schedule: each rewrite the execution optimizer could emit must
        # be provably race- and deadlock-free, not just the one that ran.
        if hb:
            for overlap in (False, True):
                for flatten in (False, True):
                    for hierarchical in (False, True):
                        for per_bucket in (False, True):
                            variant = dataclasses.replace(
                                engine.schedule,
                                overlap_backward=overlap,
                                flatten=flatten,
                                hierarchical=hierarchical,
                                per_bucket_updates=per_bucket,
                            )
                            subject = lower_schedule(
                                variant, spec.world_size, nodes=nodes
                            )
                            check_subject(subject)

    return report


def analyze_all(
    num_nodes: int = 2,
    gpus_per_node: int = 2,
    steps: int = 5,
    seed: int = 0,
    hb: bool = False,
) -> SweepReport:
    """Analyze every registered algorithm; the test-suite/CI sweep.

    With ``hb=True`` the sweep also covers the baseline registry (they are
    :class:`~repro.core.engine.Algorithm` subclasses too) and every report
    includes the happens-before pass.
    """
    sweep = SweepReport()
    names = sorted(ALGORITHM_REGISTRY)
    if hb:
        names += sorted(BASELINE_REGISTRY)
    for name in names:
        sweep.reports.append(
            analyze_algorithm(
                name,
                num_nodes=num_nodes,
                gpus_per_node=gpus_per_node,
                steps=steps,
                seed=seed,
                hb=hb,
            )
        )
    return sweep
