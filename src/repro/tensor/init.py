"""Weight initializers.

Deterministic given an explicit ``numpy.random.Generator`` so that every
worker in the simulated cluster can start from the identical model replica —
a precondition of data-parallel training that all algorithms here rely on.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def normal(shape: tuple, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[1], shape[0]
    # Convolution kernels: [out_channels, in_channels, kh, kw].
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
