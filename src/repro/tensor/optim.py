"""Optimizers operating on lists of parameters (or flattened bucket views).

The BAGUA engine flattens bucketed parameters into one contiguous array and
runs the optimizer over that flat view (paper §3.4, "Tensor Bucketing and
Memory Flattening"); to allow that, every optimizer here keeps its state
per-parameter as plain numpy arrays keyed by position, and exposes
``step_on_arrays`` so the same update rule can run on flat buffers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        arrays = [p.data for p in self.params]
        grads = [p.grad if p.grad is not None else np.zeros_like(p.data) for p in self.params]
        self.step_on_arrays(arrays, grads)

    def step_on_arrays(self, arrays: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        """Apply the update rule in place on raw arrays (flat-view friendly)."""
        raise NotImplementedError

    def state_dict(self) -> Dict:
        return {}

    def load_state_dict(self, state: Dict) -> None:
        pass


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step_on_arrays(self, arrays: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(self._velocity) != len(arrays):
            self._velocity = [None] * len(arrays)
        for i, (x, g) in enumerate(zip(arrays, grads)):
            if self.weight_decay:
                g = g + self.weight_decay * x
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(x)
                v = self._velocity[i]
                v *= self.momentum
                v += g
                g = g + self.momentum * v if self.nesterov else v
            x -= self.lr * g

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "velocity": [None if v is None else v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: Dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self._velocity = [None if v is None else v.copy() for v in state["velocity"]]


class Adam(Optimizer):
    """Adam (Kingma & Ba).  1-bit Adam freezes this state after warmup."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)
        # When frozen (1-bit Adam compression stage), the second moment stops
        # updating and acts as a fixed diagonal preconditioner.
        self.variance_frozen = False

    def freeze_variance(self) -> None:
        self.variance_frozen = True

    def step_on_arrays(self, arrays: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(self._m) != len(arrays):
            self._m = [None] * len(arrays)
            self._v = [None] * len(arrays)
        self.t += 1
        bc1 = 1.0 - self.beta1 ** self.t
        bc2 = 1.0 - self.beta2 ** self.t
        for i, (x, g) in enumerate(zip(arrays, grads)):
            if self.weight_decay:
                g = g + self.weight_decay * x
            if self._m[i] is None:
                self._m[i] = np.zeros_like(x)
                self._v[i] = np.zeros_like(x)
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            if not self.variance_frozen:
                v *= self.beta2
                v += (1.0 - self.beta2) * g * g
            m_hat = m / bc1
            v_hat = v / bc2
            x -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "t": self.t,
            "m": [None if m is None else m.copy() for m in self._m],
            "v": [None if v is None else v.copy() for v in self._v],
            "variance_frozen": self.variance_frozen,
        }

    def load_state_dict(self, state: Dict) -> None:
        self.lr = state["lr"]
        self.t = state["t"]
        self._m = [None if m is None else m.copy() for m in state["m"]]
        self._v = [None if v is None else v.copy() for v in state["v"]]
        self.variance_frozen = state["variance_frozen"]


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def step_on_arrays(self, arrays: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if self.weight_decay:
            for x in arrays:
                x -= self.lr * self.weight_decay * x
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step_on_arrays(arrays, grads)
        finally:
            self.weight_decay = decay
