"""Optimizers operating on lists of parameters (or flattened bucket views).

The BAGUA engine flattens bucketed parameters into one contiguous array and
runs the optimizer over that flat view (paper §3.4, "Tensor Bucketing and
Memory Flattening"); to allow that, every optimizer here keeps its state
per-parameter as plain numpy arrays keyed by position, and exposes
``step_on_arrays`` so the same update rule can run on flat buffers.

Per-bucket parameter updates (the scheduled executor steps bucket k the
moment its reduction lands, not all buckets at a barrier) need state keyed by
*slot*: ``step_on_slots`` updates a chosen subset of slots, and one call over
all slots is bit-identical to per-slot calls in the same order.  Adam keeps a
per-slot step count for its bias correction so both call patterns agree.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        arrays = [p.data for p in self.params]
        grads = [p.grad if p.grad is not None else np.zeros_like(p.data) for p in self.params]
        self.step_on_arrays(arrays, grads)

    def step_on_arrays(self, arrays: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        """Apply the update rule in place on raw arrays (flat-view friendly)."""
        self.step_on_slots(range(len(arrays)), arrays, grads)

    def step_on_slots(
        self,
        slots: Sequence[int],
        arrays: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> None:
        """Apply the update rule to the given state slots only.

        ``slots[i]`` names the persistent state cell used for ``arrays[i]``;
        the engine passes the bucket index, so stepping bucket k alone (the
        per-bucket update path) touches exactly the state a full-barrier step
        would have used for that bucket.
        """
        raise NotImplementedError

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step_on_slots(
        self,
        slots: Sequence[int],
        arrays: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> None:
        for slot, x, g in zip(slots, arrays, grads):
            if self.weight_decay:
                g = g + self.weight_decay * x
            if self.momentum:
                if len(self._velocity) <= slot:
                    self._velocity.extend([None] * (slot + 1 - len(self._velocity)))
                if self._velocity[slot] is None or self._velocity[slot].shape != x.shape:
                    self._velocity[slot] = np.zeros_like(x)
                v = self._velocity[slot]
                v *= self.momentum
                v += g
                g = g + self.momentum * v if self.nesterov else v
            x -= self.lr * g

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "velocity": [None if v is None else v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self._velocity = [None if v is None else v.copy() for v in state["velocity"]]


class Adam(Optimizer):
    """Adam (Kingma & Ba).  1-bit Adam freezes this state after warmup."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)
        # Per-slot step counts: with per-bucket updates each slot is stepped
        # independently, and the bias correction must track that slot's own
        # age for per-bucket and barrier stepping to agree bit for bit.
        self._t: list[int] = [0] * len(self.params)
        # When frozen (1-bit Adam compression stage), the second moment stops
        # updating and acts as a fixed diagonal preconditioner.
        self.variance_frozen = False

    def freeze_variance(self) -> None:
        self.variance_frozen = True

    def step_on_slots(
        self,
        slots: Sequence[int],
        arrays: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> None:
        for slot, x, g in zip(slots, arrays, grads):
            if self.weight_decay:
                g = g + self.weight_decay * x
            if len(self._m) <= slot:
                grow = slot + 1 - len(self._m)
                self._m.extend([None] * grow)
                self._v.extend([None] * grow)
                self._t.extend([0] * grow)
            if self._m[slot] is None or self._m[slot].shape != x.shape:
                self._m[slot] = np.zeros_like(x)
                self._v[slot] = np.zeros_like(x)
                self._t[slot] = 0
            self._t[slot] += 1
            bc1 = 1.0 - self.beta1 ** self._t[slot]
            bc2 = 1.0 - self.beta2 ** self._t[slot]
            m, v = self._m[slot], self._v[slot]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            if not self.variance_frozen:
                v *= self.beta2
                v += (1.0 - self.beta2) * g * g
            m_hat = m / bc1
            v_hat = v / bc2
            x -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self.t = max(self._t, default=0)

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "t": self.t,
            "m": [None if m is None else m.copy() for m in self._m],
            "v": [None if v is None else v.copy() for v in self._v],
            "variance_frozen": self.variance_frozen,
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.t = state["t"]
        self._m = [None if m is None else m.copy() for m in state["m"]]
        self._v = [None if v is None else v.copy() for v in state["v"]]
        # Serialized states predate per-slot counts: every live slot has
        # been stepped ``t`` times under barrier semantics.
        self._t = [state["t"] if m is not None else 0 for m in self._m]
        self.variance_frozen = state["variance_frozen"]


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def step_on_slots(
        self,
        slots: Sequence[int],
        arrays: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> None:
        if self.weight_decay:
            for x in arrays:
                x -= self.lr * self.weight_decay * x
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step_on_slots(slots, arrays, grads)
        finally:
            self.weight_decay = decay
