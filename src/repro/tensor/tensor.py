"""A small reverse-mode autograd engine over numpy arrays.

This module is the compute substrate of the reproduction: the paper runs on
PyTorch CUDA tensors, and every distributed algorithm only interacts with
parameters and gradients.  ``Tensor`` provides exactly that surface — a numpy
array, an optional gradient, and a dynamic computation graph with reverse-mode
differentiation — so the BAGUA engine, baselines and algorithms exercise the
same hook/bucket/flatten code paths they would on the real framework.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

ArrayLike = np.ndarray | float | int | Sequence

_DEFAULT_DTYPE = np.float64


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` into a float numpy array without copying when possible."""
    if isinstance(value, np.ndarray):
        if dtype is not None and value.dtype != dtype:
            return value.astype(dtype)
        if value.dtype.kind not in "fc":
            return value.astype(_DEFAULT_DTYPE)
        return value
    return np.asarray(value, dtype=dtype or _DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in a dynamic autograd graph.

    Attributes:
        data: the underlying numpy array.  Mutable; in-place updates are used
            by optimizers and by the flattened bucket views.
        grad: accumulated gradient (numpy array or None).
        requires_grad: whether backward should flow into this tensor.
        name: optional human-readable label (used by profiler/bucketing).
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "name",
        "_backward_fn",
        "_parents",
        "_post_grad_hooks",
        "_seq",
    )

    # Global creation counter: children always have a larger sequence number
    # than their parents, so descending sequence is a valid reverse
    # topological order that also matches actual execution order (the way
    # real autograd engines schedule backward).
    _next_seq = 0

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self.name = name
        self._backward_fn: Callable[[np.ndarray], None] | None = None
        self._parents: tuple = ()
        self._post_grad_hooks: list = []
        Tensor._next_seq += 1
        self._seq = Tensor._next_seq

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numel(self) -> int:
        return int(self.data.size)

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def copy(self) -> Tensor:
        t = Tensor(self.data.copy(), requires_grad=self.requires_grad, name=self.name)
        return t

    def detach(self) -> Tensor:
        return Tensor(self.data, requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        self.grad = None

    def register_post_grad_hook(self, hook: Callable[[Tensor], None]) -> None:
        """Register a callback fired when this tensor's gradient is finalized.

        This is the mechanism algorithms use to trigger per-parameter
        communication as soon as a backward pass produces the gradient —
        mirroring PyTorch's ``Tensor.register_post_accumulate_grad_hook``.
        """
        self._post_grad_hooks.append(hook)

    def clear_post_grad_hooks(self) -> None:
        self._post_grad_hooks.clear()

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Iterable[Tensor],
        backward_fn: Callable[[np.ndarray], None],
    ) -> Tensor:
        parents = tuple(parents)
        out = cls(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = parents
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(_as_array(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: ArrayLike | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Leaf tensors accumulate into ``.grad``; after a leaf's gradient is
        final (all contributions applied), its post-grad hooks fire in the
        reverse order the leaves were reached — the natural "backward order"
        distributed systems key their communication scheduling on.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        # Collect the reachable requires-grad subgraph (iteratively: models
        # can be deep enough to overflow Python's recursion limit) ...
        reachable: list[Tensor] = []
        seen: set[int] = set()
        stack: list[Tensor] = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            reachable.append(node)
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append(parent)
        # ... and process it in descending creation order: a child is always
        # created after its parents, so this is a valid reverse-topological
        # order that also mirrors real execution order — hooks fire in the
        # order gradients genuinely become ready during backward.
        reachable.sort(key=lambda n: n._seq, reverse=True)

        # Count how many times each node appears as a parent so that leaf
        # hooks fire only once the gradient is complete.
        pending: dict[int, int] = {}
        for node in reachable:
            for parent in node._parents:
                if parent.requires_grad:
                    pending[id(parent)] = pending.get(id(parent), 0) + 1

        self._accumulate(grad)
        for node in reachable:
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
                # Interior nodes do not need to retain gradients.
                if node is not self:
                    node.grad = None
            for parent in node._parents:
                if not parent.requires_grad:
                    continue
                pending[id(parent)] -= 1
                if pending[id(parent)] == 0 and parent._backward_fn is None:
                    for hook in parent._post_grad_hooks:
                        hook(parent)

    # ------------------------------------------------------------------
    # Arithmetic — thin wrappers creating graph nodes
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> Tensor:
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> Tensor:
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> Tensor:
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> Tensor:
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> Tensor:
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> Tensor:
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> Tensor:
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> Tensor:
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> Tensor:
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: Tensor) -> Tensor:
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_matmul_grad_lhs(grad, self.data, other.data))
            if other.requires_grad:
                other._accumulate(_matmul_grad_rhs(grad, self.data, other.data))

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> Tensor:
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> Tensor:
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> Tensor:
        return self.transpose()

    def sum(self, axis=None, keepdims: bool = False) -> Tensor:
        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> Tensor:
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )

        def backward(grad: np.ndarray) -> None:
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def __getitem__(self, index) -> Tensor:
        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{label}{grad})"

    def __len__(self) -> int:
        return len(self.data)


def _matmul_grad_lhs(grad: np.ndarray, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    if rhs.ndim == 1:
        return np.outer(grad, rhs) if lhs.ndim == 2 else grad[..., None] * rhs
    out = grad @ np.swapaxes(rhs, -1, -2)
    return _unbroadcast(out, lhs.shape)


def _matmul_grad_rhs(grad: np.ndarray, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    if lhs.ndim == 1:
        return np.outer(lhs, grad)
    out = np.swapaxes(lhs, -1, -2) @ grad
    return _unbroadcast(out, rhs.shape)


def tensor(data: ArrayLike, requires_grad: bool = False, name: str | None = None) -> Tensor:
    """Public constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)
