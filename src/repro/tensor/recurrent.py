"""Recurrent layers (LSTM), used by the LSTM+AlexNet proxy task."""

from __future__ import annotations


import numpy as np

from . import functional as F
from . import init
from .module import Module
from .tensor import Tensor


class LSTMCell(Module):
    """A single LSTM step with fused gate weights.

    Gate layout in the fused matrices is [input, forget, cell, output],
    matching the conventional ``torch.nn.LSTMCell`` ordering.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = self.register_parameter(
            "weight_ih", Tensor(init.xavier_uniform((4 * hidden_size, input_size), rng))
        )
        self.weight_hh = self.register_parameter(
            "weight_hh", Tensor(init.xavier_uniform((4 * hidden_size, hidden_size), rng))
        )
        self.bias = self.register_parameter("bias", Tensor(init.zeros((4 * hidden_size,))))

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.weight_ih.T + h_prev @ self.weight_hh.T + self.bias
        hs = self.hidden_size
        i = F.sigmoid(gates[:, 0 * hs : 1 * hs])
        f = F.sigmoid(gates[:, 1 * hs : 2 * hs])
        g = F.tanh(gates[:, 2 * hs : 3 * hs])
        o = F.sigmoid(gates[:, 3 * hs : 4 * hs])
        c = f * c_prev + i * g
        h = o * F.tanh(c)
        return h, c

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        return (
            Tensor(np.zeros((batch, self.hidden_size))),
            Tensor(np.zeros((batch, self.hidden_size))),
        )


class LSTM(Module):
    """Unrolled single-layer LSTM over [B, T, D] inputs, returning [B, T, H]."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, _ = x.shape
        h, c = self.cell.initial_state(batch)
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return F.stack(outputs, axis=1)

    def last_hidden(self, x: Tensor) -> Tensor:
        """Run the sequence and return only the final hidden state [B, H]."""
        batch, steps, _ = x.shape
        h, c = self.cell.initial_state(batch)
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
        return h
