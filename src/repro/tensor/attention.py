"""Multi-head attention and transformer encoder blocks (BERT/Transformer proxies)."""

from __future__ import annotations


import numpy as np

from . import functional as F
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor


class MultiHeadAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x))  # [B, H, T, d]
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        attn = F.softmax(scores, axis=-1)
        context = attn @ v  # [B, H, T, d]
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.embed_dim)
        return self.out_proj(merged)


class TransformerEncoderLayer(Module):
    """Pre-LN transformer encoder block: MHA + 2-layer feed-forward."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        ff_dim: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attn = MultiHeadAttention(embed_dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(embed_dim)
        self.norm2 = LayerNorm(embed_dim)
        self.ff1 = Linear(embed_dim, ff_dim, rng=rng)
        self.ff2 = Linear(ff_dim, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        ff = self.ff2(F.gelu(self.ff1(self.norm2(x))))
        return x + self.dropout(ff)
