"""numpy autograd + neural-network substrate (PyTorch stand-in)."""

from . import functional
from .attention import MultiHeadAttention, TransformerEncoderLayer
from .clip import clip_grad_norm, global_grad_norm
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
)
from .module import Module, ModuleList, Sequential
from .optim import SGD, Adam, AdamW, Optimizer
from .recurrent import LSTM, LSTMCell
from .schedulers import CosineAnnealingLR, LRScheduler, StepLR, WarmupLR
from .serde import load_checkpoint, save_checkpoint
from .tensor import Tensor, ones, randn, tensor, zeros

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "functional",
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "Tanh",
    "GELU",
    "Flatten",
    "Dropout",
    "LayerNorm",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "MultiHeadAttention",
    "TransformerEncoderLayer",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "save_checkpoint",
    "load_checkpoint",
    "BatchNorm2d",
    "clip_grad_norm",
    "global_grad_norm",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
]
