"""Gradient utilities: global-norm clipping.

Recurrent models (the LSTM+AlexNet task) conventionally train with gradient
clipping; distributed algorithms apply it *after* aggregation so all
replicas clip identically.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .tensor import Tensor


def global_grad_norm(params: Iterable[Tensor]) -> float:
    """L2 norm of all gradients concatenated (missing grads count as zero)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad ** 2))
    return float(np.sqrt(total))


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clip norm (the conventional contract).  No-op when the
    norm is already within bounds or when no gradients exist.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params: list[Tensor] = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
