"""Standard neural-network layers built on the autograd substrate."""

from __future__ import annotations


import numpy as np

from . import functional as F
from . import init
from .module import Module
from .tensor import Tensor


class Linear(Module):
    """Affine transform ``y = x @ W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(init.kaiming_uniform((out_features, in_features), rng))
        )
        self.bias = (
            self.register_parameter("bias", Tensor(init.zeros((out_features,))))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2D convolution over [B, C, H, W] inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = self.register_parameter("weight", Tensor(init.kaiming_uniform(shape, rng)))
        self.bias = (
            self.register_parameter("bias", Tensor(init.zeros((out_channels,))))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class BatchNorm2d(Module):
    """Batch normalization over [B, C, H, W] with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.momentum = momentum
        self.eps = eps
        self.weight = self.register_parameter("weight", Tensor(init.ones((num_features,))))
        self.bias = self.register_parameter("bias", Tensor(init.zeros((num_features,))))
        # Buffers, not parameters: never communicated, updated in place.
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class LayerNorm(Module):
    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = self.register_parameter("weight", Tensor(init.ones((normalized_shape,))))
        self.bias = self.register_parameter("bias", Tensor(init.zeros((normalized_shape,))))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    """Lookup table from int token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = self.register_parameter(
            "weight", Tensor(init.normal((num_embeddings, embedding_dim), rng))
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.weight, indices)
