"""Differentiable operations on :class:`~repro.tensor.tensor.Tensor`.

Everything here builds graph nodes by hand: forward with numpy, backward as a
closure.  Convolutions use im2col so proxy CNNs (VGG/AlexNet families) train
at reasonable speed in pure numpy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .tensor import Tensor


# ----------------------------------------------------------------------
# Elementwise nonlinearities
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    out = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - out ** 2))

    return Tensor._make(out, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60.0, 60.0)))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out * (1.0 - out))

    return Tensor._make(out, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data ** 3)
    t = np.tanh(inner)
    out = 0.5 * x.data * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        dinner = c * (1.0 + 3 * 0.044715 * x.data ** 2)
        dt = (1.0 - t ** 2) * dinner
        x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    return Tensor._make(out, (x,), backward)


def exp(x: Tensor) -> Tensor:
    out = np.exp(np.clip(x.data, -700.0, 700.0))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out)

    return Tensor._make(out, (x,), backward)


def log(x: Tensor) -> Tensor:
    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad / x.data)

    return Tensor._make(np.log(x.data), (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    out = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * 0.5 / out)

    return Tensor._make(out, (x,), backward)


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    mask = (x.data >= lo) & (x.data <= hi)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(np.clip(x.data, lo, hi), (x,), backward)


# ----------------------------------------------------------------------
# Softmax and losses
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out).sum(axis=axis, keepdims=True)
        x._accumulate(out * (grad - dot))

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(out)
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` [batch, classes] and int targets."""
    targets = np.asarray(targets)
    if targets.ndim != 1:
        targets = targets.reshape(-1)
    batch = logits.data.shape[0]
    lsm = log_softmax(logits, axis=-1)
    picked = lsm.data[np.arange(batch), targets]
    loss_value = -picked.mean()

    def backward(grad: np.ndarray) -> None:
        g = np.zeros_like(lsm.data)
        g[np.arange(batch), targets] = -float(grad) / batch
        lsm._accumulate(g)

    return Tensor._make(np.asarray(loss_value), (lsm,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    target = np.asarray(target, dtype=pred.data.dtype)
    diff = pred.data - target
    loss_value = (diff ** 2).mean()

    def backward(grad: np.ndarray) -> None:
        pred._accumulate(2.0 * float(grad) * diff / diff.size)

    return Tensor._make(np.asarray(loss_value), (pred,), backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    targets = np.asarray(targets).reshape(-1)
    batch = log_probs.data.shape[0]
    loss_value = -log_probs.data[np.arange(batch), targets].mean()

    def backward(grad: np.ndarray) -> None:
        g = np.zeros_like(log_probs.data)
        g[np.arange(batch), targets] = -float(grad) / batch
        log_probs._accumulate(g)

    return Tensor._make(np.asarray(loss_value), (log_probs,), backward)


# ----------------------------------------------------------------------
# Structural ops
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    datas = [t.data for t in tensors]
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(lo, hi)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(np.concatenate(datas, axis=axis), tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for t, p in zip(tensors, parts):
            t._accumulate(np.squeeze(p, axis=axis))

    return Tensor._make(np.stack([t.data for t in tensors], axis=axis), tuple(tensors), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.data.shape) < keep) / keep

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    indices = np.asarray(indices)

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[1]))
        weight._accumulate(full)

    return Tensor._make(weight.data[indices], (weight,), backward)


# ----------------------------------------------------------------------
# Convolution via im2col
# ----------------------------------------------------------------------
def _im2col_indices(
    x_shape: tuple, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    _, channels, height, width = x_shape
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> tuple[np.ndarray, tuple]:
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kh, kw, stride, padding)
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")
    cols = padded[:, k, i, j]  # [batch, C*kh*kw, out_h*out_w]
    return cols, (out_h, out_w)


def _col2im(
    cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    batch, channels, height, width = x_shape
    k, i, j, _, _ = _im2col_indices(x_shape, kh, kw, stride, padding)
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
    np.add.at(padded, (slice(None), k, i, j), cols)
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution: ``x`` [B, C, H, W], ``weight`` [F, C, kh, kw]."""
    filters, _, kh, kw = weight.data.shape
    cols, (out_h, out_w) = _im2col(x.data, kh, kw, stride, padding)
    w_flat = weight.data.reshape(filters, -1)  # [F, C*kh*kw]
    out = np.einsum("fc,bcl->bfl", w_flat, cols)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1)
    out = out.reshape(x.data.shape[0], filters, out_h, out_w)
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(grad.shape[0], filters, -1)  # [B, F, L]
        if weight.requires_grad:
            dw = np.einsum("bfl,bcl->fc", g, cols).reshape(weight.data.shape)
            weight._accumulate(dw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 2)))
        if x.requires_grad:
            dcols = np.einsum("fc,bfl->bcl", w_flat, g)
            x._accumulate(_col2im(dcols, x.data.shape, kh, kw, stride, padding))

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    batch, channels, height, width = x.data.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    cols, _ = _im2col(
        x.data.reshape(batch * channels, 1, height, width), kernel, kernel, stride, 0
    )
    cols = cols.reshape(batch * channels, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=1)
    out = np.take_along_axis(cols, argmax[:, None, :], axis=1).reshape(
        batch, channels, out_h, out_w
    )

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(batch * channels, 1, -1)
        dcols = np.zeros_like(cols)
        np.put_along_axis(dcols, argmax[:, None, :], g, axis=1)
        dx = _col2im(
            dcols, (batch * channels, 1, height, width), kernel, kernel, stride, 0
        )
        x._accumulate(dx.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    batch, channels, height, width = x.data.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    cols, _ = _im2col(
        x.data.reshape(batch * channels, 1, height, width), kernel, kernel, stride, 0
    )
    out = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(batch * channels, 1, -1)
        dcols = np.broadcast_to(g / (kernel * kernel), (batch * channels, kernel * kernel, out_h * out_w))
        dx = _col2im(
            np.ascontiguousarray(dcols), (batch * channels, 1, height, width), kernel, kernel, stride, 0
        )
        x._accumulate(dx.reshape(x.data.shape))

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
def batch_norm2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over [B, C, H, W] (per-channel statistics).

    In training mode, batch statistics normalize and the running buffers are
    updated in place; in eval mode the running buffers are used.  The buffers
    are plain arrays (not parameters) — they are not communicated by the
    distributed algorithms, matching standard DDP semantics.
    """
    axes = (0, 2, 3)
    if training:
        mu = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
        unbiased = var * count / max(1, count - 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mu
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mu = running_mean
        var = running_var

    shape = (1, -1, 1, 1)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mu.reshape(shape)) * inv_std.reshape(shape)
    out = x_hat * weight.data.reshape(shape) + bias.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate((grad * x_hat).sum(axis=axes))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            dxhat = grad * weight.data.reshape(shape)
            if training:
                count = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
                mean_dxhat = dxhat.mean(axis=axes).reshape(shape)
                mean_dxhat_xhat = (dxhat * x_hat).mean(axis=axes).reshape(shape)
                dx = (dxhat - mean_dxhat - x_hat * mean_dxhat_xhat) * inv_std.reshape(shape)
                del count
            else:
                dx = dxhat * inv_std.reshape(shape)
            x._accumulate(dx)

    return Tensor._make(out, (x, weight, bias), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mu) * inv_std
    out = x_hat * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            weight._accumulate((grad * x_hat).sum(axis=axes))
        if bias.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            dxhat = grad * weight.data
            dx = (
                dxhat
                - dxhat.mean(axis=-1, keepdims=True)
                - x_hat * (dxhat * x_hat).mean(axis=-1, keepdims=True)
            ) * inv_std
            x._accumulate(dx)

    return Tensor._make(out, (x, weight, bias), backward)
