"""Module base class: parameter registration, hooks, train/eval state.

Mirrors the subset of ``torch.nn.Module`` that distributed-training systems
interact with: ordered named parameters (DDP's reverse-order bucketing keys on
registration order), state dicts, and backward hooks on parameters.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from .tensor import Tensor


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: OrderedDict[str, Tensor] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_parameter(self, name: str, param: Tensor) -> Tensor:
        param.requires_grad = True
        if param.name is None:
            param.name = name
        self._parameters[name] = param
        return param

    def add_module(self, name: str, module: Module) -> Module:
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module) and name not in ("_modules",):
            if "_modules" not in self.__dict__:
                raise RuntimeError("call Module.__init__() before assigning submodules")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator[Module]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return sum(p.numel() for p in self.parameters())

    # ------------------------------------------------------------------
    # Train/eval, grads
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> Module:
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> Module:
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data[...] = state[name]

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> Sequential:
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """Holder for an indexable list of submodules."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._order: list[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> ModuleList:
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)
