"""Learning-rate schedulers.

The paper's training recipes (BERT finetuning, 1-bit Adam's warmup stage)
rely on warmup and decay schedules; these schedulers mutate the wrapped
optimizer's ``lr`` in place, one ``step()`` per iteration or epoch.
"""

from __future__ import annotations

import math

from .optim import Optimizer


class LRScheduler:
    """Base scheduler: computes lr as a function of the step counter."""

    def __init__(self, optimizer: Optimizer) -> None:
        if not hasattr(optimizer, "lr"):
            raise TypeError(f"{type(optimizer).__name__} exposes no .lr to schedule")
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.step_count = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate."""
        self.step_count += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr

    @property
    def current_lr(self) -> float:
        return float(self.optimizer.lr)


class StepLR(LRScheduler):
    """Multiply lr by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.step_count // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base lr to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        super().__init__(optimizer)
        self.total_steps = total_steps
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(1.0, self.step_count / self.total_steps)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRScheduler):
    """Linear warmup to the base lr, then an optional inner schedule.

    The standard BERT recipe (and 1-bit Adam's warmup stage): lr ramps from
    0 to base over ``warmup_steps``, after which the inner scheduler (if
    any) takes over with its own counter starting at zero.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        after: LRScheduler | None = None,
    ) -> None:
        if warmup_steps < 1:
            raise ValueError(f"warmup_steps must be >= 1, got {warmup_steps}")
        super().__init__(optimizer)
        self.warmup_steps = warmup_steps
        self.after = after

    def get_lr(self) -> float:
        if self.step_count <= self.warmup_steps:
            return self.base_lr * self.step_count / self.warmup_steps
        if self.after is not None:
            self.after.step_count = self.step_count - self.warmup_steps
            return self.after.get_lr()
        return self.base_lr


def lr_trace(scheduler: LRScheduler, steps: int) -> list[float]:
    """Run ``steps`` scheduler steps, returning the lr sequence (testing aid)."""
    return [scheduler.step() for _ in range(steps)]
