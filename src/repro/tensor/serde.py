"""Checkpointing: save/load models and optimizers to a single ``.npz`` file.

Distributed training jobs checkpoint the (identical) rank-0 replica; this
module provides that, including optimizer state, so a training run on the
simulated cluster can resume bit-exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module
from .optim import Optimizer

PathLike = str | Path

_META_KEY = "__checkpoint_meta__"


def _flatten_state(prefix: str, state, out: dict[str, np.ndarray], meta: dict) -> None:
    """Recursively store arrays under ``prefix``; scalars/None go to meta."""
    if isinstance(state, dict):
        meta_node = meta.setdefault("dict", {})
        for key, value in state.items():
            sub_meta = meta_node.setdefault(str(key), {})
            _flatten_state(f"{prefix}.{key}", value, out, sub_meta)
    elif isinstance(state, (list, tuple)):
        meta["list"] = []
        for i, value in enumerate(state):
            sub_meta: dict = {}
            meta["list"].append(sub_meta)
            _flatten_state(f"{prefix}.{i}", value, out, sub_meta)
    elif isinstance(state, np.ndarray):
        meta["array"] = prefix
        out[prefix] = state
    elif state is None or isinstance(state, (bool, int, float, str)):
        meta["scalar"] = state
    else:
        raise TypeError(f"cannot checkpoint value of type {type(state)!r} at {prefix}")


def _rebuild_state(meta: dict, arrays: dict[str, np.ndarray]):
    if "dict" in meta:
        return {key: _rebuild_state(sub, arrays) for key, sub in meta["dict"].items()}
    if "list" in meta:
        return [_rebuild_state(sub, arrays) for sub in meta["list"]]
    if "array" in meta:
        return arrays[meta["array"]]
    return meta.get("scalar")


def save_checkpoint(
    path: PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    step: int = 0,
) -> None:
    """Write model parameters (+ optional optimizer state) to ``path``."""
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"step": step, "optimizer": None}
    for name, value in model.state_dict().items():
        arrays[f"model.{name}"] = value
    meta["model_keys"] = sorted(model.state_dict().keys())
    if optimizer is not None:
        opt_meta: dict = {}
        _flatten_state("optim", optimizer.state_dict(), arrays, opt_meta)
        meta["optimizer"] = opt_meta
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    ).copy()
    np.savez(Path(path), **arrays)


def load_checkpoint(
    path: PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
) -> int:
    """Restore model (+ optimizer) from ``path``; returns the saved step."""
    with np.load(Path(path), allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files}
    meta = json.loads(bytes(arrays.pop(_META_KEY)).decode("utf-8"))

    state = {
        name: arrays[f"model.{name}"]
        for name in meta["model_keys"]
    }
    model.load_state_dict(state)

    if optimizer is not None:
        if meta["optimizer"] is None:
            raise ValueError(f"checkpoint {path} holds no optimizer state")
        optimizer.load_state_dict(_rebuild_state(meta["optimizer"], arrays))
    return int(meta["step"])
