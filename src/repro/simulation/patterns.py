"""Dry-run communication schedules for timing-mode simulation.

Timing mode needs the *cost* of full-scale communications (hundreds of MB per
tensor across 128 workers) without materializing the data.  Each function
here replays the exact message schedule of its real counterpart in
:mod:`repro.comm` / :mod:`repro.core.primitives`, but messages carry a
:class:`SizedPayload` stub declaring the wire size.  The shared
:class:`~repro.cluster.transport.Transport` charges time and bytes the same
way for both, so dry runs and real runs agree — a property the test suite
checks explicitly.

All functions advance the transport clocks of the participating ranks and
return the elapsed wall time (max participant clock minus start).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..cluster.transport import Message
from ..comm.collectives import _chunk_bounds
from ..comm.group import CommGroup
from ..core.primitives import PeerSelector

# Maps an element count to wire bytes; IdentityCompressor.wire_bytes for
# full precision, or any Compressor.wire_bytes for low precision.
WireFn = Callable[[int], float]


@dataclass(frozen=True)
class SizedPayload:
    """A payload that exists only as a wire size."""

    wire_bytes: float


def fp32_wire(elements: int) -> float:
    return elements * 4.0


def _elapsed(group: CommGroup, start: float) -> float:
    return group.transport.max_time(group.ranks) - start


def dry_ring_allreduce(group: CommGroup, elements: int, wire: WireFn = fp32_wire) -> float:
    """Ring allreduce schedule: 2(n-1) rounds of one chunk per member."""
    n = group.size
    start = group.transport.max_time(group.ranks)
    if n == 1:
        return 0.0
    chunk_elements = elements / n
    payload = SizedPayload(wire(int(chunk_elements)))
    for _round in range(2 * (n - 1)):
        messages = [
            Message(group.ranks[i], group.ranks[(i + 1) % n], payload)
            for i in range(n)
        ]
        group.transport.exchange(messages)
    return _elapsed(group, start)


def dry_scatter_reduce(
    group: CommGroup,
    elements: int,
    wire_phase1: WireFn = fp32_wire,
    wire_phase2: WireFn = fp32_wire,
) -> float:
    """ScatterReduce schedule: one all-to-all round + one all-gather round."""
    n = group.size
    start = group.transport.max_time(group.ranks)
    if n == 1:
        return 0.0
    bounds = _chunk_bounds(elements, n)
    sizes = [hi - lo for lo, hi in bounds]

    # Staggered all-to-all (matches repro.comm.collectives.alltoall).
    messages = []
    for offset in range(1, n):
        for i in range(n):
            j = (i + offset) % n
            messages.append(
                Message(group.ranks[i], group.ranks[j], SizedPayload(wire_phase1(sizes[j])))
            )
    group.transport.exchange(messages)

    messages = []
    for offset in range(1, n):
        for j in range(n):
            i = (j + offset) % n
            messages.append(
                Message(group.ranks[j], group.ranks[i], SizedPayload(wire_phase2(sizes[j])))
            )
    group.transport.exchange(messages)
    return _elapsed(group, start)


def dry_gather(group: CommGroup, elements: int, wire: WireFn = fp32_wire) -> float:
    """Star gather to the first member."""
    start = group.transport.max_time(group.ranks)
    root = group.ranks[0]
    payload = SizedPayload(wire(elements))
    messages = [Message(rank, root, payload) for rank in group.ranks[1:]]
    if messages:
        group.transport.exchange(messages)
    return _elapsed(group, start)


def dry_broadcast(group: CommGroup, elements: int, wire: WireFn = fp32_wire) -> float:
    """Star broadcast from the first member."""
    start = group.transport.max_time(group.ranks)
    root = group.ranks[0]
    payload = SizedPayload(wire(elements))
    messages = [Message(root, rank, payload) for rank in group.ranks[1:]]
    if messages:
        group.transport.exchange(messages)
    return _elapsed(group, start)


def dry_hierarchical_allreduce(
    group: CommGroup,
    elements: int,
    wire_phase1: WireFn = fp32_wire,
    wire_phase2: WireFn = fp32_wire,
) -> float:
    """Two-tier allreduce: intra gather -> leader ScatterReduce -> intra broadcast."""
    start = group.transport.max_time(group.ranks)
    node_groups = group.node_subgroups()
    for sub in node_groups:
        dry_gather(sub, elements)
    leaders = group.leader_group()
    if leaders.size > 1:
        dry_scatter_reduce(leaders, elements, wire_phase1, wire_phase2)
    for sub in node_groups:
        dry_broadcast(sub, elements)
    return _elapsed(group, start)


def dry_decentralized(
    group: CommGroup,
    elements: int,
    peers: PeerSelector,
    step: int = 0,
    wire: WireFn = fp32_wire,
    hierarchical: bool = False,
) -> float:
    """Peer-exchange schedule of D_FP_S / D_LP_S (one message round)."""
    start = group.transport.max_time(group.ranks)
    if hierarchical:
        node_groups = group.node_subgroups()
        for sub in node_groups:
            if sub.size > 1:
                dry_ring_allreduce(sub, elements)
        leaders = group.leader_group()
        if leaders.size > 1:
            dry_decentralized(leaders, elements, peers, step=step, wire=wire)
        for sub in node_groups:
            dry_broadcast(sub, elements)
        return _elapsed(group, start)

    neighbor_sets = peers.neighbors(group.size, step)
    payload = SizedPayload(wire(elements))
    messages = []
    for i, neighbors in enumerate(neighbor_sets):
        for j in neighbors:
            messages.append(Message(group.ranks[i], group.ranks[j], payload))
    if messages:
        group.transport.exchange(messages)
    return _elapsed(group, start)


def dry_ps_push_pull(
    group: CommGroup,
    elements: int,
    wire: WireFn = fp32_wire,
    local_aggregation: bool = True,
) -> float:
    """BytePS-style push/pull against servers co-located one per node.

    The tensor is partitioned into one chunk per server.  With local
    aggregation (BytePS's default on multi-GPU machines) workers first reduce
    within their node over NVLink and only node leaders talk to servers;
    without it every worker pushes and pulls every chunk over the NIC.
    """
    start = group.transport.max_time(group.ranks)
    node_groups = group.node_subgroups()
    servers = [sub.ranks[0] for sub in node_groups]
    num_servers = len(servers)
    chunk = SizedPayload(wire(int(elements / num_servers)))

    if local_aggregation:
        for sub in node_groups:
            dry_gather(sub, elements)
        pushers = servers
    else:
        pushers = list(group.ranks)

    # Push: each pusher sends one chunk to every server (self-sends free).
    messages = [
        Message(src, server, chunk)
        for src in pushers
        for server in servers
        if src != server
    ]
    if messages:
        group.transport.exchange(messages)
    # Pull: each server returns its aggregated chunk to every pusher.
    messages = [
        Message(server, dst, chunk)
        for server in servers
        for dst in pushers
        if dst != server
    ]
    if messages:
        group.transport.exchange(messages)

    if local_aggregation:
        for sub in node_groups:
            dry_broadcast(sub, elements)
    return _elapsed(group, start)
