"""System timing profiles: how each competing system moves an iteration's data.

A :class:`SystemProfile` captures the *strategy* of a training system, the
way Figure 2 describes it:

* how parameters are grouped for communication (bucketing plan),
* what each group's communication costs (pattern + codec via the cost model),
* what can overlap what (backward-only for DDP/Horovod; backward and next
  forward for BytePS and BAGUA's per-bucket updates),
* per-unit scheduling overheads (Horovod's fusion cycle, BytePS's server CPU
  aggregation).

BAGUA's own profile is derived from a training algorithm plus a
:class:`~repro.core.optimizer_framework.BaguaConfig`, so Table 5's O/F/H
ablation toggles the exact same switches the functional engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..compression.fp16 import FP16Compressor
from ..compression.onebit import OneBitCompressor
from ..compression.qsgd import QSGDCompressor
from ..core.optimizer_framework import (
    BaguaConfig,
    ExecutionOptimizer,
    ExecutionPlan,
)
from ..core.schedule import ScheduledBucket
from ..core.profiler import ExecutionProfile
from .cost import CommCostModel


@dataclass
class SystemProfile:
    """Timing behaviour of one system/algorithm combination."""

    name: str
    plan_fn: Callable[[ExecutionProfile], ExecutionPlan]
    #: communication wall time of one bucket (network only)
    comm_time: Callable[[ScheduledBucket], float]
    #: GPU-side cost attached to each bucket's communication (compression, ...)
    comm_kernel_time: Callable[[ScheduledBucket], float]
    #: optimizer update cost for one bucket
    update_time: Callable[[ScheduledBucket], float]
    #: may communication start while backward is still running?
    overlap_backward: bool = True
    #: may next iteration's forward start before all updates finish?
    overlap_forward: bool = False
    #: fixed per-bucket scheduling overhead (fusion cycles, RPC dispatch)
    per_bucket_overhead: float = 0.0
    #: asynchronous systems skip global synchronization entirely
    is_async: bool = False

    def plan(self, profile: ExecutionProfile) -> ExecutionPlan:
        return self.plan_fn(profile)


def _bucket_plan(bucket_bytes: float) -> Callable[[ExecutionProfile], ExecutionPlan]:
    config = BaguaConfig(flatten=True, bucket_bytes=bucket_bytes)
    return ExecutionOptimizer(config).plan


def _per_tensor_plan() -> Callable[[ExecutionProfile], ExecutionPlan]:
    config = BaguaConfig(flatten=False)
    return ExecutionOptimizer(config).plan


# ----------------------------------------------------------------------
# Competing systems
# ----------------------------------------------------------------------
def vanilla_system(cost: CommCostModel) -> SystemProfile:
    """Figure 2's 'Vanilla': per-tensor allreduce, no overlap."""
    return SystemProfile(
        name="Vanilla",
        plan_fn=_per_tensor_plan(),
        comm_time=lambda b: cost.ring_allreduce(b.elements),
        comm_kernel_time=lambda b: 0.0,
        update_time=lambda b: cost.update_time(b.elements, num_tensors=b.num_tensors),
        overlap_backward=False,
        overlap_forward=False,
    )


def pytorch_ddp_system(cost: CommCostModel) -> SystemProfile:
    """PyTorch-DDP: 25 MB reverse-order buckets, ring allreduce overlapped
    with backward; the optimizer runs once after all allreduces finish."""
    return SystemProfile(
        name="PyTorch-DDP",
        plan_fn=_bucket_plan(25 * 1024 * 1024),
        comm_time=lambda b: cost.ring_allreduce(b.elements),
        comm_kernel_time=lambda b: 0.0,
        update_time=lambda b: cost.update_time(b.elements, num_tensors=1),
        overlap_backward=True,
        overlap_forward=False,
    )


def horovod_system(cost: CommCostModel, fp16: bool = False) -> SystemProfile:
    """Horovod: 64 MB fusion buffer with a coordination cycle per fused
    allreduce; optional fp16 gradient compression via NCCL."""
    compressor = FP16Compressor() if fp16 else None

    def comm(b: ScheduledBucket) -> float:
        return cost.ring_allreduce(b.elements, compressor=compressor)

    def kernels(b: ScheduledBucket) -> float:
        return cost.compress_time(b.elements) * 2 if fp16 else 0.0

    return SystemProfile(
        name="Horovod-16bit" if fp16 else "Horovod",
        plan_fn=_bucket_plan(64 * 1024 * 1024),
        comm_time=comm,
        comm_kernel_time=kernels,
        update_time=lambda b: cost.update_time(b.elements, num_tensors=1),
        overlap_backward=True,
        overlap_forward=False,
        per_bucket_overhead=2e-3,  # negotiation cycle per fused tensor
    )


def byteps_system(cost: CommCostModel, is_async: bool = False) -> SystemProfile:
    """BytePS: 4 MB chunks pushed/pulled against per-node servers.

    Overlaps push/pull with backward *and* the next forward (per-parameter
    updates), but pays CPU summation on the servers — the term that hurts on
    communication-heavy models like VGG16.
    """
    chunk_bytes = 4 * 1024 * 1024

    def comm(b: ScheduledBucket) -> float:
        return cost.ps_push_pull(b.elements, local_aggregation=True)

    def kernels(b: ScheduledBucket) -> float:
        return cost.server_aggregation_time(b.elements, num_pushers=cost.spec.num_nodes)

    return SystemProfile(
        name="BytePS-async" if is_async else "BytePS",
        plan_fn=_bucket_plan(chunk_bytes),
        comm_time=comm,
        comm_kernel_time=kernels,
        update_time=lambda b: cost.update_time(b.elements, num_tensors=1),
        overlap_backward=True,
        overlap_forward=True,
        per_bucket_overhead=1e-4,  # scheduler dispatch per chunk
        is_async=is_async,
    )


# ----------------------------------------------------------------------
# BAGUA
# ----------------------------------------------------------------------
#: algorithm name -> (pattern kind, codec factory, topology)
_BAGUA_ALGOS = {
    "allreduce": ("central", None, None),
    "qsgd": ("central", lambda: QSGDCompressor(bits=8), None),
    "1bit-adam": ("central", OneBitCompressor, None),
    "decentralized": ("decen", None, "random"),
    "decentralized-8bit": ("decen", lambda: QSGDCompressor(bits=8), "ring"),
    "async": ("async", None, None),
}


def bagua_system(
    cost: CommCostModel,
    algorithm: str = "allreduce",
    config: BaguaConfig | None = None,
) -> SystemProfile:
    """BAGUA running ``algorithm`` under ``config``'s O/F/H switches."""
    if algorithm not in _BAGUA_ALGOS:
        raise KeyError(f"unknown BAGUA algorithm {algorithm!r}; options: {sorted(_BAGUA_ALGOS)}")
    config = config or BaguaConfig(hierarchical=True)
    kind, codec_factory, topology = _BAGUA_ALGOS[algorithm]
    compressor = codec_factory() if codec_factory else None

    if kind == "central":
        def comm(b: ScheduledBucket) -> float:
            return cost.centralized(
                b.elements, compressor=compressor, hierarchical=config.hierarchical
            )
    elif kind == "decen":
        def comm(b: ScheduledBucket) -> float:
            return cost.decentralized(
                b.elements,
                compressor=compressor,
                topology=topology,
                hierarchical=config.hierarchical,
            )
    else:  # async: star push/pull to the master copy, never synchronized
        def comm(b: ScheduledBucket) -> float:
            return cost.ps_push_pull(b.elements, local_aggregation=True)

    def kernels(b: ScheduledBucket) -> float:
        if compressor is None:
            return 0.0
        return cost.compress_time(b.elements) * 2  # compress + decompress

    def update(b: ScheduledBucket) -> float:
        tensors = 1 if config.flatten else b.num_tensors
        return cost.update_time(b.elements, num_tensors=tensors)

    return SystemProfile(
        name=f"BAGUA-{algorithm}",
        plan_fn=ExecutionOptimizer(config).plan,
        comm_time=comm,
        comm_kernel_time=kernels,
        update_time=update,
        overlap_backward=config.overlap,
        # Per-bucket updates let the next forward start layer by layer.
        overlap_forward=config.overlap,
        is_async=(kind == "async"),
    )


def all_competing_systems(cost: CommCostModel) -> list[SystemProfile]:
    """The baseline set of Table 3: DDP, Horovod 32/16-bit, BytePS."""
    return [
        pytorch_ddp_system(cost),
        horovod_system(cost, fp16=False),
        horovod_system(cost, fp16=True),
        byteps_system(cost),
    ]
