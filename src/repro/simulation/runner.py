"""Epoch-time simulation entry points (timing mode).

Synchronous systems: epoch time = iterations x steady-state iteration time,
paced by the slowest worker.  Asynchronous systems: workers proceed at their
own rate with communication fully overlapped; epoch time is the time for the
fleet to consume one epoch of samples at the aggregate throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import ClusterSpec
from ..models.spec import ModelSpec
from .pipeline import IterationTiming, simulate_iteration
from .systems import SystemProfile


@dataclass
class EpochResult:
    """Simulated epoch time of one (system, model, cluster) combination."""

    system: str
    model: str
    epoch_time: float
    iteration_time: float
    iterations: int
    timing: IterationTiming

    def __str__(self) -> str:
        return (
            f"{self.system:>18s} on {self.model:<13s}: "
            f"epoch {self.epoch_time:8.1f}s "
            f"({self.iterations} iters x {self.iteration_time * 1e3:7.1f} ms)"
        )


def simulate_epoch(
    model: ModelSpec, cluster: ClusterSpec, system: SystemProfile
) -> EpochResult:
    """Simulate one training epoch; see module docstring for semantics."""
    iterations = model.iterations_per_epoch(cluster.world_size)
    if system.is_async:
        return _simulate_async_epoch(model, cluster, system, iterations)

    timing = simulate_iteration(model, cluster, system)
    return EpochResult(
        system=system.name,
        model=model.name,
        epoch_time=iterations * timing.iteration_time,
        iteration_time=timing.iteration_time,
        iterations=iterations,
        timing=timing,
    )


def _simulate_async_epoch(
    model: ModelSpec, cluster: ClusterSpec, system: SystemProfile, iterations: int
) -> EpochResult:
    """Async: no global barrier; stragglers only reduce their own throughput.

    Each worker's step time is max(its compute, its communication) — the
    communication thread runs concurrently with compute (paper §3.2).  The
    epoch ends when the fleet has consumed ``samples_per_epoch`` samples.
    """
    # Communication per worker per iteration: push + pull of the whole model
    # against the master copy, amortized over the async pipeline.
    profile_timing = simulate_iteration(model, cluster, system, compute_scale=1.0)
    comm_per_iter = profile_timing.comm_time_total

    throughput = 0.0  # samples per second across the fleet
    slowest_iter = 0.0
    for rank in range(cluster.world_size):
        scale = cluster.compute_scale(rank)
        compute = profile_timing.compute_time * scale
        step_time = max(compute, comm_per_iter)
        throughput += model.batch_size / step_time
        slowest_iter = max(slowest_iter, step_time)

    epoch_time = model.samples_per_epoch / throughput
    mean_iter = epoch_time / max(1, iterations)
    return EpochResult(
        system=system.name,
        model=model.name,
        epoch_time=epoch_time,
        iteration_time=mean_iter,
        iterations=iterations,
        timing=profile_timing,
    )
