"""Worker-heterogeneity (straggler) study (paper §4.3).

The paper simulates a heterogeneous cluster by downclocking one GPU's
graphics frequency from 1290 MHz to 585 MHz and observes that asynchronous
algorithms outperform synchronous ones under stragglers.  Here the slowdown
is a compute-scale factor on one rank of the ClusterSpec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.topology import ClusterSpec
from ..models.spec import ModelSpec
from .cost import CommCostModel
from .runner import EpochResult, simulate_epoch
from .systems import bagua_system

#: the paper's downclock: 1290 MHz -> 585 MHz graphics clock
PAPER_STRAGGLER_SLOWDOWN = 1290.0 / 585.0


def with_straggler(cluster: ClusterSpec, rank: int = 0, slowdown: float = PAPER_STRAGGLER_SLOWDOWN) -> ClusterSpec:
    """Copy of ``cluster`` with one downclocked worker."""
    stragglers = dict(cluster.straggler_slowdown)
    stragglers[rank] = slowdown
    return replace(cluster, straggler_slowdown=stragglers)


@dataclass
class HeterogeneityResult:
    """Sync vs async epoch times, with and without a straggler."""

    model: str
    sync_uniform: EpochResult
    sync_straggler: EpochResult
    async_uniform: EpochResult
    async_straggler: EpochResult

    @property
    def sync_degradation(self) -> float:
        return self.sync_straggler.epoch_time / self.sync_uniform.epoch_time

    @property
    def async_degradation(self) -> float:
        return self.async_straggler.epoch_time / self.async_uniform.epoch_time

    def rows(self) -> list[dict]:
        return [
            {"setting": "uniform", "sync": self.sync_uniform.epoch_time,
             "async": self.async_uniform.epoch_time},
            {"setting": "straggler", "sync": self.sync_straggler.epoch_time,
             "async": self.async_straggler.epoch_time},
        ]


def run_heterogeneity_study(
    model: ModelSpec,
    cluster: ClusterSpec,
    slowdown: float = PAPER_STRAGGLER_SLOWDOWN,
) -> HeterogeneityResult:
    """Compare sync allreduce vs async under one downclocked worker."""
    degraded = with_straggler(cluster, rank=0, slowdown=slowdown)

    def run(spec: ClusterSpec, algorithm: str) -> EpochResult:
        cost = CommCostModel(spec)
        return simulate_epoch(model, spec, bagua_system(cost, algorithm))

    return HeterogeneityResult(
        model=model.name,
        sync_uniform=run(cluster, "allreduce"),
        sync_straggler=run(degraded, "allreduce"),
        async_uniform=run(cluster, "async"),
        async_straggler=run(degraded, "async"),
    )
