"""Timing-mode simulation: cost model, system profiles, pipeline, runners."""

from .cost import CommCostModel, CPU_AGG_BW, GPU_MEM_BW, KERNEL_LAUNCH
from .heterogeneity import (
    PAPER_STRAGGLER_SLOWDOWN,
    HeterogeneityResult,
    run_heterogeneity_study,
    with_straggler,
)
from .pipeline import IterationTiming, simulate_iteration
from .runner import EpochResult, simulate_epoch
from .systems import (
    SystemProfile,
    all_competing_systems,
    bagua_system,
    byteps_system,
    horovod_system,
    pytorch_ddp_system,
    vanilla_system,
)

__all__ = [
    "CommCostModel",
    "GPU_MEM_BW",
    "CPU_AGG_BW",
    "KERNEL_LAUNCH",
    "IterationTiming",
    "simulate_iteration",
    "EpochResult",
    "simulate_epoch",
    "SystemProfile",
    "bagua_system",
    "pytorch_ddp_system",
    "horovod_system",
    "byteps_system",
    "vanilla_system",
    "all_competing_systems",
    "HeterogeneityResult",
    "run_heterogeneity_study",
    "with_straggler",
    "PAPER_STRAGGLER_SLOWDOWN",
]
