"""Cost model for timing-mode simulation.

Communication costs are *measured* by replaying dry-run message schedules
(:mod:`repro.simulation.patterns`) on a scratch transport — not derived from
closed-form formulas — so contention effects (shared per-node NICs, ingress
serialization) are identical to what functional mode experiences.  Results
are memoized: costs depend only on sizes, codecs and the cluster, and the
pipeline simulator asks for the same bucket costs every iteration.

Compute-side constants model a V100-class GPU: FLOP throughput lives on the
:class:`~repro.cluster.topology.ClusterSpec`; this module adds memory-bound
costs (compression passes, optimizer updates), kernel-launch overhead, and
BytePS's server-side CPU aggregation bandwidth.
"""

from __future__ import annotations

from collections.abc import Callable

from ..cluster.topology import ClusterSpec
from ..cluster.transport import Transport
from ..comm.group import CommGroup
from ..compression.base import Compressor
from ..core.primitives import PeerSelector, RandomPeers, RingPeers
from . import patterns

#: device memory bandwidth (bytes/s) for memory-bound kernels
GPU_MEM_BW = 900e9
#: effective CPU summation throughput of a parameter server (bytes/s)
CPU_AGG_BW = 25e9
#: fixed cost of launching one GPU kernel
KERNEL_LAUNCH = 10e-6
#: memory passes needed to compress / decompress a tensor
COMPRESS_PASSES = 3
#: memory passes of one optimizer update (read grad, read/write state, write x)
UPDATE_PASSES = 4


class CommCostModel:
    """Memoized communication and kernel costs for one cluster."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self._cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Measurement plumbing
    # ------------------------------------------------------------------
    def _measure(self, key: tuple, run: Callable[[CommGroup], float]) -> float:
        if key not in self._cache:
            transport = Transport(self.spec)
            group = CommGroup(transport, list(range(self.spec.world_size)))
            self._cache[key] = run(group)
        return self._cache[key]

    @staticmethod
    def _wire(compressor: Compressor | None) -> patterns.WireFn:
        if compressor is None:
            return patterns.fp32_wire
        return compressor.wire_bytes

    # ------------------------------------------------------------------
    # Collective patterns
    # ------------------------------------------------------------------
    def ring_allreduce(self, elements: int, compressor: Compressor | None = None) -> float:
        key = ("ring", elements, compressor.name if compressor else None)
        wire = self._wire(compressor)
        return self._measure(key, lambda g: patterns.dry_ring_allreduce(g, elements, wire))

    def centralized(
        self,
        elements: int,
        compressor: Compressor | None = None,
        hierarchical: bool = False,
    ) -> float:
        """C_FP_S / C_LP_S cost (ScatterReduce, optionally hierarchical)."""
        key = ("central", elements, compressor.name if compressor else None, hierarchical)
        wire = self._wire(compressor)
        if hierarchical:
            return self._measure(
                key, lambda g: patterns.dry_hierarchical_allreduce(g, elements, wire, wire)
            )
        return self._measure(
            key, lambda g: patterns.dry_scatter_reduce(g, elements, wire, wire)
        )

    def decentralized(
        self,
        elements: int,
        compressor: Compressor | None = None,
        topology: str = "ring",
        hierarchical: bool = False,
    ) -> float:
        """D_FP_S / D_LP_S cost under a ring or random peer selector."""
        peers: PeerSelector = RingPeers() if topology == "ring" else RandomPeers()
        key = ("decen", elements, compressor.name if compressor else None, topology, hierarchical)
        wire = self._wire(compressor)
        return self._measure(
            key,
            lambda g: patterns.dry_decentralized(
                g, elements, peers, wire=wire, hierarchical=hierarchical
            ),
        )

    def ps_push_pull(self, elements: int, local_aggregation: bool = True) -> float:
        """BytePS push/pull network cost (server CPU cost charged separately)."""
        key = ("ps", elements, local_aggregation)
        return self._measure(
            key,
            lambda g: patterns.dry_ps_push_pull(
                g, elements, local_aggregation=local_aggregation
            ),
        )

    # ------------------------------------------------------------------
    # Kernel-side costs
    # ------------------------------------------------------------------
    def compress_time(self, elements: int) -> float:
        """GPU time to compress (or decompress) ``elements`` values."""
        return KERNEL_LAUNCH + COMPRESS_PASSES * elements * 4.0 / GPU_MEM_BW

    def update_time(self, elements: int, num_tensors: int = 1) -> float:
        """Optimizer update: one fused kernel per tensor (1 if flattened)."""
        return num_tensors * KERNEL_LAUNCH + UPDATE_PASSES * elements * 4.0 / GPU_MEM_BW

    def server_aggregation_time(self, elements: int, num_pushers: int) -> float:
        """CPU time for PS servers to sum all pushed shards.

        Work is spread over one server per node; each server sums
        ``num_pushers`` shards of its ``elements / num_nodes`` slice.
        """
        per_server_bytes = elements * 4.0 / self.spec.num_nodes * num_pushers
        return per_server_bytes / CPU_AGG_BW
