"""Discrete pipeline simulation of one training iteration (timing mode).

Prices a :class:`~repro.core.schedule.BucketSchedule` — the same IR the
functional :class:`~repro.core.schedule.ScheduledExecutor` runs and
:func:`repro.analysis.lowering.lower_schedule` verifies — on two per-worker
streams: compute (forward, backward) and communication (bucket transfers,
compression kernels, updates).  The schedule's gates map directly:

* ``schedule.overlap_backward`` (the O switch): a bucket's communication may
  start at its grad-ready gate, racing the rest of backward — otherwise it
  waits for the backward-end gate;
* ``schedule.per_bucket_updates``: a bucket's parameters become usable as
  soon as *its* update lands, so the next iteration's forward can begin
  before other buckets finish (BytePS priority scheduling, BAGUA per-bucket
  updates).  Barrier-mode schedules still execute update kernels eagerly on
  the comm stream (the work is serialized either way); the barrier gates
  *visibility* — nothing in the next iteration starts before it.

Workers are symmetric up to straggler compute scaling; synchronous
collectives therefore pace on the slowest worker's compute.  The simulator
runs several iterations and reports the steady-state iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.topology import ClusterSpec
from ..core.schedule import BucketSchedule, ScheduledBucket
from ..core.profiler import profile_from_spec
from ..models.spec import ModelSpec
from .systems import SystemProfile

#: iterations simulated to reach steady state before measuring
WARMUP_ITERATIONS = 2
MEASURE_ITERATIONS = 3


@dataclass(frozen=True)
class Span:
    """One scheduled activity on a stream (for pipeline visualisation).

    ``stream`` is "compute" or "comm"; ``kind`` is fwd/bwd/comm/update;
    times are absolute simulation seconds of the final measured iteration.
    """

    stream: str
    kind: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class IterationTiming:
    """Steady-state timing of one training iteration."""

    iteration_time: float
    compute_time: float  # pure fwd+bwd time of the slowest worker
    comm_time_total: float  # sum of bucket communication durations
    exposed_comm_time: float  # iteration time minus compute (>= 0)
    num_buckets: int
    #: span timeline of the last simulated iteration (Figure 2/3 material)
    spans: list[Span] = field(default_factory=list)

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of communication hidden behind computation."""
        if self.comm_time_total <= 0:
            return 1.0
        hidden = self.comm_time_total - self.exposed_comm_time
        return max(0.0, min(1.0, hidden / self.comm_time_total))


def simulate_iteration(
    model: ModelSpec,
    cluster: ClusterSpec,
    system: SystemProfile,
    compute_scale: float | None = None,
) -> IterationTiming:
    """Steady-state iteration time of ``system`` training ``model`` on ``cluster``.

    ``compute_scale`` overrides the compute slowdown factor; by default
    synchronous systems pace on the slowest worker (max straggler scale).
    """
    profile = profile_from_spec(model.layers)
    plan = system.plan(profile)
    schedule = BucketSchedule.from_plan(
        plan,
        overlap=system.overlap_backward,
        per_bucket_updates=system.overlap_forward,
    )
    if compute_scale is None:
        scales = [cluster.compute_scale(r) for r in range(cluster.world_size)]
        if system.is_async:
            # Async workers never wait on each other: the caller accounts for
            # per-worker scaling; jitter averages out over iterations.
            compute_scale = 1.0
        else:
            # Sync systems pace on the slowest worker every iteration —
            # persistent stragglers and per-iteration jitter both bite.
            compute_scale = max(scales) * cluster.sync_jitter_factor()

    batch = model.batch_size

    def fwd_time(bucket: ScheduledBucket) -> float:
        return bucket.fwd_flops * batch * compute_scale / cluster.worker_flops

    def bwd_time(bucket: ScheduledBucket) -> float:
        return bucket.bwd_flops * batch * compute_scale / cluster.worker_flops

    ready_order: list[ScheduledBucket] = list(schedule.comm_order())
    forward_order: list[ScheduledBucket] = list(schedule.forward_order())

    comm_durations: dict[int, float] = {}
    for bucket in ready_order:
        comm_durations[bucket.index] = (
            system.per_bucket_overhead
            + system.comm_time(bucket)
            + system.comm_kernel_time(bucket)
        )
    update_durations = {b.index: system.update_time(b) for b in ready_order}

    compute_free = 0.0
    comm_free = 0.0
    params_ready: dict[int, float] = {b.index: 0.0 for b in ready_order}
    boundaries: list[float] = []
    spans: list[Span] = []

    total_iterations = WARMUP_ITERATIONS + MEASURE_ITERATIONS
    for iteration in range(total_iterations):
        record = iteration == total_iterations - 1
        if record:
            spans = []
        # Forward: layer groups in forward order, gated on their own update.
        for bucket in forward_order:
            compute_free = max(compute_free, params_ready[bucket.index])
            start = compute_free
            compute_free += fwd_time(bucket)
            if record and compute_free > start:
                spans.append(Span("compute", "fwd", f"fwd b{bucket.index}", start, compute_free))
        # Backward: buckets become ready in ready order.
        grad_ready: dict[int, float] = {}
        for bucket in ready_order:
            start = compute_free
            compute_free += bwd_time(bucket)
            grad_ready[bucket.index] = compute_free
            if record and compute_free > start:
                spans.append(Span("compute", "bwd", f"bwd b{bucket.index}", start, compute_free))
        bwd_end = compute_free

        # Communication + updates on the comm stream, gated per the schedule.
        update_done: dict[int, float] = {}
        for bucket in ready_order:
            gate = grad_ready[bucket.index] if schedule.overlap_backward else bwd_end
            start = max(comm_free, gate)
            comm_free = start + comm_durations[bucket.index]
            if record:
                spans.append(Span("comm", "comm", f"comm b{bucket.index}", start, comm_free))
            update_start = comm_free
            comm_free += update_durations[bucket.index]
            update_done[bucket.index] = comm_free
            if record and comm_free > update_start:
                spans.append(
                    Span("comm", "update", f"upd b{bucket.index}", update_start, comm_free)
                )

        if schedule.per_bucket_updates:
            params_ready = dict(update_done)
            boundary = max(bwd_end, comm_free)
        else:
            # Single barrier: nothing in the next iteration starts before
            # every update has landed.
            barrier = max(bwd_end, comm_free)
            params_ready = {b.index: barrier for b in ready_order}
            compute_free = barrier
            boundary = barrier
        boundaries.append(boundary)

    steady = (boundaries[-1] - boundaries[-1 - MEASURE_ITERATIONS]) / MEASURE_ITERATIONS
    compute_only = sum(fwd_time(b) + bwd_time(b) for b in ready_order)
    comm_total = sum(comm_durations.values())
    return IterationTiming(
        iteration_time=steady,
        compute_time=compute_only,
        comm_time_total=comm_total,
        exposed_comm_time=max(0.0, steady - compute_only),
        num_buckets=len(ready_order),
        spans=spans,
    )
