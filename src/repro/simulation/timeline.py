"""ASCII Gantt rendering of iteration pipelines (Figures 2 and 3).

The paper explains each system by its execution pipeline diagram: which
forward/backward/communication/update blocks run when, and on which stream.
:func:`render_gantt` draws the :class:`~repro.simulation.pipeline.Span`
timeline recorded by the simulator, and :func:`compare_systems` stacks
several systems over a shared time axis — a text rendition of Figure 2
(Vanilla vs DDP/Horovod vs BytePS) and Figure 3 (relaxed algorithms).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..cluster.topology import ClusterSpec
from ..models.spec import ModelSpec
from .pipeline import Span, simulate_iteration
from .systems import SystemProfile

#: glyph per span kind, matching the paper's block colors
GLYPHS = {"fwd": "F", "bwd": "B", "comm": "c", "update": "u"}


def _paint(spans: Sequence[Span], t0: float, t1: float, width: int) -> dict[str, str]:
    """Rasterize spans into one character row per stream."""
    rows = {"compute": [" "] * width, "comm": [" "] * width}
    scale = width / (t1 - t0) if t1 > t0 else 0.0
    for span in spans:
        row = rows[span.stream]
        lo = max(0, int((span.start - t0) * scale))
        hi = min(width, max(lo + 1, int((span.end - t0) * scale)))
        glyph = GLYPHS.get(span.kind, "?")
        for i in range(lo, hi):
            row[i] = glyph
    return {stream: "".join(chars) for stream, chars in rows.items()}


def render_gantt(spans: Sequence[Span], width: int = 100, title: str = "") -> str:
    """One system's iteration as two labelled stream rows."""
    if not spans:
        return f"{title}\n  (no spans)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    rows = _paint(spans, t0, t1, width)
    duration_ms = (t1 - t0) * 1e3
    lines = []
    if title:
        lines.append(f"{title}  [{duration_ms:.1f} ms]")
    lines.append(f"  compute |{rows['compute']}|")
    lines.append(f"  comm    |{rows['comm']}|")
    return "\n".join(lines)


def compare_systems(
    model: ModelSpec,
    cluster: ClusterSpec,
    systems: Sequence[SystemProfile],
    width: int = 100,
) -> str:
    """Stack several systems' pipelines over one shared time axis.

    The shared axis makes the paper's Figure 2 point visually: the same
    compute blocks, but communication placed very differently — trailing the
    whole backward pass (Vanilla), overlapping it (DDP/Horovod/BAGUA), or
    spilling into the next forward (BytePS, BAGUA with per-bucket updates).
    """
    timings = [(system, simulate_iteration(model, cluster, system)) for system in systems]
    t_max = max(
        max(s.end for s in timing.spans) - min(s.start for s in timing.spans)
        for _system, timing in timings
        if timing.spans
    )
    sections: list[str] = [
        f"{model.name} iteration pipelines "
        f"(F=forward B=backward c=communication u=update; axis {t_max * 1e3:.1f} ms)"
    ]
    for system, timing in timings:
        spans = timing.spans
        t0 = min(s.start for s in spans)
        shifted = [
            Span(s.stream, s.kind, s.label, s.start - t0, s.end - t0) for s in spans
        ]
        rows = _paint(shifted, 0.0, t_max, width)
        sections.append(
            f"{system.name}  [{timing.iteration_time * 1e3:.1f} ms/iter]\n"
            f"  compute |{rows['compute']}|\n"
            f"  comm    |{rows['comm']}|"
        )
    return "\n\n".join(sections)
