"""Composed asynchronous relaxations (Table 1's starred BAGUA cells).

The paper's Table 1 credits BAGUA with asynchronous *low-precision*
centralized training ("Async + QSGD") and asynchronous *decentralized*
training ("Async + decentralized"), both built by composing the synchronous
primitives with a non-blocking communication loop (§3.2).  These classes
make the compositions concrete in the lock-step simulation:

* :class:`AsyncQSGD` — the serialized parameter server of
  :class:`~repro.algorithms.async_sgd.AsyncSGD`, but pushes travel
  quantized: workers upload ``Q(g)`` and download quantized model deltas,
  cutting async traffic the same 4x as sync QSGD.
* :class:`AsyncDecentralizedSGD` — gossip against *stale snapshots*: every
  worker publishes its weights to a mailbox every ``publish_interval``
  steps and averages with a random peer's last published (possibly old)
  snapshot, never blocking on the peer's progress.
"""

from __future__ import annotations


import numpy as np

from ..cluster.transport import Message
from ..compression.base import Compressor
from ..compression.qsgd import QSGDCompressor
from ..core.engine import Algorithm, BaguaEngine


class AsyncQSGD(Algorithm):
    """Asynchronous centralized DP-SG with quantized pushes and pulls."""

    name = "async-qsgd"

    def __init__(
        self,
        lr: float | None = None,
        bits: int = 8,
        compressor: Compressor | None = None,
        scale_by_world: bool = True,
    ) -> None:
        self.lr = lr
        self.compressor = compressor or QSGDCompressor(bits=bits)
        self.scale_by_world = scale_by_world

    def setup(self, engine: BaguaEngine) -> None:
        self._server: list[np.ndarray] = [
            b.flat_data().copy() for b in engine.workers[0].buckets
        ]
        if self.lr is None:
            lr = getattr(engine.workers[0].optimizer, "lr", None)
            if lr is None:
                raise ValueError("AsyncQSGD needs lr (optimizer exposes none)")
            self.lr = float(lr)
        if self.scale_by_world:
            self.lr /= engine.world_size
        self._server_rank = engine.group.ranks[0]

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        group = engine.group
        n = engine.world_size
        order = [(step + i) % n for i in range(n)]
        for i in order:
            worker = engine.workers[i]
            bucket = worker.buckets[k]
            # Push: quantized gradient (wire size = compressed size).
            payload = self.compressor.compress(bucket.flat_grad())
            if worker.rank != self._server_rank:
                group.transport.exchange(
                    [Message(worker.rank, self._server_rank, payload)]
                )
            self._server[k] -= self.lr * self.compressor.decompress(payload)
            # Pull: quantized model *delta* against the worker's current copy
            # (absolute weights do not survive aggressive quantization).
            delta = self.compressor.compress(self._server[k] - bucket.flat_data())
            if worker.rank != self._server_rank:
                group.transport.exchange(
                    [Message(self._server_rank, worker.rank, delta)]
                )
            bucket.set_flat_data(bucket.flat_data() + self.compressor.decompress(delta))


class AsyncDecentralizedSGD(Algorithm):
    """Gossip averaging against stale published snapshots (no blocking)."""

    name = "async-decentralized"

    def __init__(self, publish_interval: int = 1, seed: int = 0) -> None:
        if publish_interval < 1:
            raise ValueError(f"publish_interval must be >= 1, got {publish_interval}")
        self.publish_interval = publish_interval
        self.seed = seed

    def setup(self, engine: BaguaEngine) -> None:
        # mailbox[i][k] = worker i's last published weights for bucket k.
        self._mailbox: list[list[np.ndarray]] = [
            [b.flat_data().copy() for b in worker.buckets]
            for worker in engine.workers
        ]

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        n = engine.world_size
        group = engine.group

        # Local optimizer step — never waits for anyone.
        for worker in engine.workers:
            worker.optimizer_step_on_bucket(k)

        # Publish (possibly stale from then on) this bucket's snapshot.
        if step % self.publish_interval == 0:
            for i, worker in enumerate(engine.workers):
                self._mailbox[i][k] = worker.buckets[k].flat_data().copy()

        # Each worker averages with one random peer's published snapshot;
        # the permutation is seeded by the step, so every bucket of one
        # iteration pairs with the same peer.
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, step]))
        peers = rng.permutation(n)
        messages = []
        for i in range(n):
            j = int(peers[i])
            if j != i:
                messages.append(
                    Message(group.ranks[j], group.ranks[i], self._mailbox[j][k])
                )
        if messages:
            group.transport.exchange(messages)
        for i in range(n):
            j = int(peers[i])
            if j == i:
                continue
            bucket = engine.workers[i].buckets[k]
            bucket.set_flat_data(0.5 * (bucket.flat_data() + self._mailbox[j][k]))
