"""Decen-8bits: ring-based decentralized SGD with quantization (ref [17]).

The paper's low-precision decentralized algorithm communicates over the
D_LP_S primitive.  Naively quantizing raw weights at 8 bits destroys the
model (weight magnitudes dwarf per-step changes), so — following
"Communication Compression for Decentralized Training" (Tang et al., 2018) —
the algorithm compresses the *difference* between the current weights and a
shared replica each worker maintains of what its neighbors last saw:

* every worker keeps ``view[self]``, the publicly known version of its own
  weights, and ``view[j]`` for each fixed ring neighbor ``j``;
* each step it sends ``Q(x_i - view[i])`` and folds the decompressed delta
  into ``view[i]`` (its neighbors do the same on receive, keeping all copies
  of ``view[i]`` bit-identical because ``Q``'s output is what travels);
* the gossip average then uses the reconstructed neighbor weights.

The fixed ring topology is what makes the neighbor views maintainable.
"""

from __future__ import annotations


import numpy as np

from ..cluster.transport import Message
from ..compression.base import Compressor
from ..compression.qsgd import QSGDCompressor
from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import RingPeers


class LowPrecisionDecentralizedSGD(Algorithm):
    name = "decentralized-8bit"
    #: fixed communication topology; the analyzer's peer-matching rule
    #: verifies the traced neighbor sets against it
    topology = "ring"

    def __init__(self, bits: int = 8, compressor: Compressor | None = None) -> None:
        self.compressor = compressor or QSGDCompressor(bits=bits)
        self.peers = RingPeers()

    def setup(self, engine: BaguaEngine) -> None:
        n = engine.world_size
        neighbor_sets = self.peers.neighbors(n, step=0)
        for i, worker in enumerate(engine.workers):
            # view[k][j] = the shared estimate of member j's weights for bucket
            # k, where j is this worker or one of its ring neighbors.
            views: list[dict[int, np.ndarray]] = []
            for bucket in worker.buckets:
                view = {i: bucket.flat_data().copy()}
                for j in neighbor_sets[i]:
                    view[j] = engine.workers[j].buckets[len(views)].flat_data().copy()
                views.append(view)
            worker.state["views"] = views
            worker.state["neighbors"] = neighbor_sets[i]

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        for worker in engine.workers:
            worker.optimizer_step_on_bucket(k)

        n = engine.world_size
        group = engine.group
        neighbor_sets = self.peers.neighbors(n, step)
        if group.tracer is not None:
            group.tracer.on_collective(
                group,
                "compressed_gossip",
                engine.workers[0].buckets[k].total_elements,
                bucket=engine.workers[0].buckets[k].name,
                compressor=self.compressor.name,
                biased=self.compressor.biased,
                peers_by_member=neighbor_sets,
            )
        # Compress each worker's delta against its own public view.
        payloads = []
        for i, worker in enumerate(engine.workers):
            x = worker.buckets[k].flat_data()
            view_self = worker.state["views"][k][i]
            payloads.append(self.compressor.compress(x - view_self))

        # One message round around the ring with the compressed deltas.
        messages = []
        for i, worker in enumerate(engine.workers):
            for j in worker.state["neighbors"]:
                messages.append(Message(group.ranks[i], group.ranks[j], (i, payloads[i])))
        inbox = group.transport.exchange(messages) if messages else {}

        # Everyone folds the traveling deltas into the shared views.
        for i, worker in enumerate(engine.workers):
            delta_self = self.compressor.decompress(payloads[i])
            worker.state["views"][k][i] += delta_self
        received: list[dict[int, np.ndarray]] = [{} for _ in range(n)]
        for j in range(n):
            for msg in inbox.get(group.ranks[j], []):
                src, payload = msg.payload
                delta = self.compressor.decompress(payload)
                engine.workers[j].state["views"][k][src] += delta
                received[j][src] = engine.workers[j].state["views"][k][src]

        # Gossip average with reconstructed neighbor weights.
        for i, worker in enumerate(engine.workers):
            x = worker.buckets[k].flat_data().copy()
            acc = x.copy()
            for _src, neighbor_weights in sorted(received[i].items()):
                acc += neighbor_weights
            averaged = acc / (1 + len(received[i]))
            worker.buckets[k].set_flat_data(averaged)
