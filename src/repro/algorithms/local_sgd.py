"""LocalSGD (refs [19-22]): the communication-delay relaxation.

Workers run ``frequency`` purely local optimizer steps between model
averagings; the averaging itself is a full-precision centralized sum of the
*weights* over C_FP_S.  The paper lists LocalSGD/model averaging as
implementable on BAGUA's synchronous primitives (§3.2), so it is included as
the communication-delay member of the relaxation taxonomy.
"""

from __future__ import annotations

from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import c_fp_s


class LocalSGD(Algorithm):
    name = "local-sgd"

    def __init__(self, frequency: int = 4) -> None:
        if frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.frequency = frequency

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        for worker in engine.workers:
            worker.optimizer_step_on_bucket(k)
        if (step + 1) % self.frequency != 0:
            return
        n = engine.world_size
        weights = engine.weights_of_bucket(k)
        summed = c_fp_s(weights, engine.group, hierarchical=engine.hierarchical)
        engine.set_weights_of_bucket(k, [s / n for s in summed])
