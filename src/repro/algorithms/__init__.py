"""The BAGUA training-algorithm zoo (paper §4.1, 'BAGUA Algorithms')."""

from .allreduce import AllreduceSGD
from .async_compositions import AsyncDecentralizedSGD, AsyncQSGD
from .async_sgd import AsyncSGD
from .decentralized import DecentralizedSGD
from .decentralized_lp import LowPrecisionDecentralizedSGD
from .local_sgd import LocalSGD
from .onebit_adam import OneBitAdam
from .qsgd_sgd import QSGD
from .qsparse_local_sgd import QSparseLocalSGD
from .registry import (
    ALGORITHM_REGISTRY,
    SUPPORT_MATRIX,
    RelaxationProfile,
    make_algorithm,
    support_matrix_rows,
)

__all__ = [
    "AllreduceSGD",
    "QSGD",
    "OneBitAdam",
    "DecentralizedSGD",
    "LowPrecisionDecentralizedSGD",
    "AsyncSGD",
    "LocalSGD",
    "AsyncQSGD",
    "AsyncDecentralizedSGD",
    "QSparseLocalSGD",
    "ALGORITHM_REGISTRY",
    "SUPPORT_MATRIX",
    "RelaxationProfile",
    "make_algorithm",
    "support_matrix_rows",
]
