"""Asynchronous centralized DP-SG ("Async" in the paper's evaluation).

BAGUA builds asynchronous algorithms from synchronous primitives by running
communication on a separate thread that does not wait for computation
(paper §3.2, "Supporting Asynchronous Algorithms").  In the lock-step
simulation the same semantics appear as a serialized parameter server:

* a master copy of the weights lives on rank 0's node;
* each step, workers push their local gradients one at a time (the push
  order rotates so no worker is permanently first);
* a worker pulls the master weights *immediately after its own push* — so it
  observes the pushes of workers earlier in the round but not later ones.

Workers therefore compute gradients on mutually inconsistent, slightly stale
models — the defining property of async SGD, and the source of the
convergence gap Figure 6 shows on BERT-LARGE.  ``pull_interval > 1``
increases staleness: workers then refresh their model only every few steps.
"""

from __future__ import annotations


import numpy as np

from ..cluster.transport import Message
from ..core.engine import Algorithm, BaguaEngine


class AsyncSGD(Algorithm):
    name = "async"

    def __init__(
        self,
        lr: float | None = None,
        pull_interval: int = 1,
        scale_by_world: bool = True,
    ) -> None:
        if pull_interval < 1:
            raise ValueError(f"pull_interval must be >= 1, got {pull_interval}")
        self.lr = lr
        self.pull_interval = pull_interval
        # Every worker's gradient is applied individually, so the server step
        # is scaled by 1/n to keep the per-sample learning rate comparable to
        # the synchronous algorithms (standard practice for async SGD).
        self.scale_by_world = scale_by_world

    def setup(self, engine: BaguaEngine) -> None:
        # Master weights start as the shared initial model.
        self._server: list[np.ndarray] = [
            b.flat_data().copy() for b in engine.workers[0].buckets
        ]
        if self.lr is None:
            lr = getattr(engine.workers[0].optimizer, "lr", None)
            if lr is None:
                raise ValueError("AsyncSGD needs lr (none given, optimizer has no .lr)")
            self.lr = float(lr)
        if self.scale_by_world:
            self.lr /= engine.world_size
        self._server_rank = engine.group.ranks[0]

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        # Server bucket states are independent, so the per-worker rotation
        # replays per bucket with identical staleness: a worker's pull of
        # bucket k still observes exactly the earlier workers' pushes of
        # bucket k this round.
        n = engine.world_size
        group = engine.group
        order = [(step + i) % n for i in range(n)]

        for i in order:
            worker = engine.workers[i]
            g = worker.buckets[k].flat_grad()
            # Push: gradient travels to the server host (no-op for rank 0).
            if worker.rank != self._server_rank:
                group.transport.exchange(
                    [Message(worker.rank, self._server_rank, g)]
                )
            self._server[k] -= self.lr * g
            # Pull: only every pull_interval steps; stale in between.
            if step % self.pull_interval == 0:
                snapshot = self._server[k].copy()
                if worker.rank != self._server_rank:
                    group.transport.exchange(
                        [Message(self._server_rank, worker.rank, snapshot)]
                    )
                worker.buckets[k].set_flat_data(snapshot)
