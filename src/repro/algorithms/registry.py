"""Algorithm registry and the Table 1 support matrix.

Maps names to factories and records each algorithm's position in the paper's
taxonomy (synchronization x precision x centralization), which regenerates
Table 1's BAGUA column and documents what the competing systems support.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..core.engine import Algorithm
from .allreduce import AllreduceSGD
from .async_compositions import AsyncDecentralizedSGD, AsyncQSGD
from .async_sgd import AsyncSGD
from .decentralized import DecentralizedSGD
from .decentralized_lp import LowPrecisionDecentralizedSGD
from .local_sgd import LocalSGD
from .onebit_adam import OneBitAdam
from .qsgd_sgd import QSGD
from .qsparse_local_sgd import QSparseLocalSGD

ALGORITHM_REGISTRY: dict[str, Callable[..., Algorithm]] = {
    "allreduce": AllreduceSGD,
    "qsgd": QSGD,
    "1bit-adam": OneBitAdam,
    "decentralized": DecentralizedSGD,
    "decentralized-8bit": LowPrecisionDecentralizedSGD,
    "async": AsyncSGD,
    "local-sgd": LocalSGD,
    "async-qsgd": AsyncQSGD,
    "async-decentralized": AsyncDecentralizedSGD,
    "qsparse-local-sgd": QSparseLocalSGD,
}


def make_algorithm(name: str, **kwargs) -> Algorithm:
    if name not in ALGORITHM_REGISTRY:
        raise KeyError(f"unknown algorithm {name!r}; options: {sorted(ALGORITHM_REGISTRY)}")
    return ALGORITHM_REGISTRY[name](**kwargs)


@dataclass(frozen=True)
class RelaxationProfile:
    """One row of Table 1: a (sync, precision, centralization) combination."""

    synchronization: str  # "sync" | "async"
    precision: str  # "full" | "low"
    centralization: str  # "centralized" | "decentralized"
    pytorch_ddp: bool
    horovod: bool
    byteps: bool
    bagua: bool
    bagua_algorithm: str = ""


# The eight combinations of Table 1 and which system supports each.
SUPPORT_MATRIX: list[RelaxationProfile] = [
    RelaxationProfile("sync", "full", "centralized", True, True, True, True, "allreduce"),
    RelaxationProfile("sync", "full", "decentralized", False, False, False, True, "decentralized"),
    RelaxationProfile("sync", "low", "centralized", True, True, True, True, "qsgd / 1bit-adam"),
    RelaxationProfile("sync", "low", "decentralized", False, False, False, True, "decentralized-8bit"),
    RelaxationProfile("async", "full", "centralized", False, False, True, True, "async"),
    RelaxationProfile("async", "full", "decentralized", False, False, False, True, "async-decentralized"),
    RelaxationProfile("async", "low", "centralized", False, False, False, True, "async-qsgd"),
    RelaxationProfile("async", "low", "decentralized", False, False, False, False, ""),
]


def support_matrix_rows() -> list[dict]:
    """Table 1 as dictionaries, for rendering and tests."""
    return [
        {
            "sync": p.synchronization,
            "precision": p.precision,
            "centralization": p.centralization,
            "PyTorch-DDP": p.pytorch_ddp,
            "Horovod": p.horovod,
            "BytePS": p.byteps,
            "BAGUA": p.bagua,
            "algorithm": p.bagua_algorithm,
        }
        for p in SUPPORT_MATRIX
    ]
