"""Qsparse-local-SGD (Basu et al., 2019; paper ref [76]).

The paper's related work highlights "approaches that combine multiple
strategies": Qsparse-local-SGD composes all three relaxations at once —
communication *delay* (local steps), *sparsification + quantization* of
what finally travels, and error feedback to keep the composition
convergent.  Concretely:

* run ``frequency`` purely local optimizer steps;
* at each synchronization point, communicate the compressed (top-K of the
  quantized) *model delta since the last sync* through the
  error-compensated C_LP_S primitive;
* apply the averaged delta to the last synchronized state.

This is also a stress test of the primitive layer: one algorithm touching
every relaxation axis through the same public API.
"""

from __future__ import annotations


import numpy as np

from ..compression.error_feedback import ErrorFeedback
from ..compression.topk import TopKCompressor
from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import c_lp_s


class QSparseLocalSGD(Algorithm):
    name = "qsparse-local-sgd"

    def __init__(self, frequency: int = 2, ratio: float = 0.05) -> None:
        if frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.frequency = frequency
        self.compressor = TopKCompressor(ratio=ratio)

    def setup(self, engine: BaguaEngine) -> None:
        for worker in engine.workers:
            # The last globally synchronized model, per bucket.
            worker.state["anchor"] = [b.flat_data().copy() for b in worker.buckets]
            worker.state["worker_ef"] = [
                ErrorFeedback(self.compressor) for _ in worker.buckets
            ]
            worker.state["server_ef"] = [
                ErrorFeedback(self.compressor) for _ in worker.buckets
            ]

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        for worker in engine.workers:
            worker.optimizer_step_on_bucket(k)
        if (step + 1) % self.frequency != 0:
            return

        n = engine.world_size
        # Deltas accumulated since the last synchronization.
        deltas: list[np.ndarray] = []
        for worker in engine.workers:
            deltas.append(worker.buckets[k].flat_data() - worker.state["anchor"][k])
        summed = c_lp_s(
            deltas,
            engine.group,
            compressor=self.compressor,
            worker_errors=[w.state["worker_ef"][k] for w in engine.workers],
            server_errors=[w.state["server_ef"][k] for w in engine.workers],
            hierarchical=engine.hierarchical,
        )
        for worker, total in zip(engine.workers, summed):
            new_anchor = worker.state["anchor"][k] + total / n
            worker.state["anchor"][k] = new_anchor
            worker.buckets[k].set_flat_data(new_anchor.copy())
