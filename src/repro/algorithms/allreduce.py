"""Standard synchronous DP-SG via the C_FP_S primitive ("BAGUA AllReduce")."""

from __future__ import annotations

from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import c_fp_s


class AllreduceSGD(Algorithm):
    """Textbook data-parallel SGD: average gradients, then step.

    Each bucket's gradients are summed across workers with the centralized
    full-precision primitive and divided by the world size the moment the
    bucket is ready, after which each worker steps its optimizer on that
    bucket alone — replicas stay bit-identical, and the scheduler can
    overlap bucket k's reduction with the backward of earlier layers.
    """

    name = "allreduce"

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        n = engine.world_size
        grads = engine.grads_of_bucket(k)
        summed = c_fp_s(grads, engine.group, hierarchical=engine.hierarchical)
        engine.set_grads_of_bucket(k, [s / n for s in summed])
        for worker in engine.workers:
            worker.optimizer_step_on_bucket(k)
