"""Standard synchronous DP-SG via the C_FP_S primitive ("BAGUA AllReduce")."""

from __future__ import annotations

from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import c_fp_s


class AllreduceSGD(Algorithm):
    """Textbook data-parallel SGD: average gradients, then step.

    Every bucket's gradients are summed across workers with the centralized
    full-precision primitive and divided by the world size, after which each
    worker applies its own optimizer — replicas stay bit-identical.
    """

    name = "allreduce"

    def on_backward_done(self, engine: BaguaEngine, step: int) -> None:
        n = engine.world_size
        for k in range(engine.num_buckets):
            grads = engine.grads_of_bucket(k)
            summed = c_fp_s(grads, engine.group, hierarchical=engine.hierarchical)
            engine.set_grads_of_bucket(k, [s / n for s in summed])
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()
