"""QSGD: 8-bit quantized synchronous DP-SG via C_LP_S (no error compensation).

Matches the paper's configuration: "QSGD [4], a quantized (8-bit) DP-SG
algorithm, implemented with C_LP_S primitive without error compensation."
QSGD's stochastic rounding is unbiased, so no residual state is needed.
"""

from __future__ import annotations


from ..compression.base import Compressor
from ..compression.qsgd import QSGDCompressor
from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import c_lp_s


class QSGD(Algorithm):
    name = "qsgd"

    def __init__(self, bits: int = 8, compressor: Compressor | None = None) -> None:
        self.compressor = compressor or QSGDCompressor(bits=bits)

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        n = engine.world_size
        grads = engine.grads_of_bucket(k)
        summed = c_lp_s(
            grads,
            engine.group,
            compressor=self.compressor,
            hierarchical=engine.hierarchical,
        )
        engine.set_grads_of_bucket(k, [s / n for s in summed])
        for worker in engine.workers:
            worker.optimizer_step_on_bucket(k)
