"""1-bit Adam (Tang et al., 2021; paper ref [79]) via C_LP_S + error feedback.

Two stages, as in the original algorithm:

* **Warmup** (full precision): vanilla Adam on allreduce-averaged gradients
  while the second-moment estimate ``v`` stabilizes.
* **Compression stage**: ``v`` is frozen and acts as a fixed diagonal
  preconditioner; workers update their *momentum* locally and synchronize it
  through the error-compensated 1-bit C_LP_S primitive.  Both compression
  sides (worker chunks and merged partitions) carry residual state — exactly
  the delta/epsilon pair of the paper's C_LP_S semantics.

The algorithm owns its Adam state directly (the engine's optimizer is not
used) because the compression applies to the momentum, not the gradient.
"""

from __future__ import annotations


import numpy as np

from ..compression.error_feedback import ErrorFeedback
from ..compression.onebit import OneBitCompressor
from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import c_fp_s, c_lp_s


class OneBitAdam(Algorithm):
    name = "1bit-adam"

    def __init__(
        self,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        warmup_steps: int = 20,
    ) -> None:
        if warmup_steps < 1:
            raise ValueError("1-bit Adam needs at least one warmup step to estimate v")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.warmup_steps = warmup_steps
        self.compressor = OneBitCompressor()

    def setup(self, engine: BaguaEngine) -> None:
        num_buckets = engine.num_buckets
        for worker in engine.workers:
            worker.state["m"] = [np.zeros(b.total_elements) for b in worker.buckets]
            worker.state["v"] = [np.zeros(b.total_elements) for b in worker.buckets]
            # Residual stores are per bucket: chunk keys repeat across buckets.
            worker.state["worker_ef"] = [
                ErrorFeedback(self.compressor) for _ in range(num_buckets)
            ]
            worker.state["server_ef"] = [
                ErrorFeedback(self.compressor) for _ in range(num_buckets)
            ]
        self._t = 0

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        # Adam's step count advances once per iteration regardless of how
        # many buckets carry it (the engine calls every bucket every step).
        self._t = step + 1
        if step < self.warmup_steps:
            self._warmup_bucket(engine, k)
        else:
            self._compressed_bucket(engine, k)

    # ------------------------------------------------------------------
    def _warmup_bucket(self, engine: BaguaEngine, k: int) -> None:
        n = engine.world_size
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        grads = engine.grads_of_bucket(k)
        summed = c_fp_s(grads, engine.group, hierarchical=engine.hierarchical)
        for worker, total in zip(engine.workers, summed):
            g = total / n
            m = worker.state["m"][k]
            v = worker.state["v"][k]
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            x = worker.buckets[k].flat_data()
            x -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if not worker.buckets[k].flattened:
                worker.buckets[k].set_flat_data(x)

    def _compressed_bucket(self, engine: BaguaEngine, k: int) -> None:
        n = engine.world_size
        worker_efs = [w.state["worker_ef"][k] for w in engine.workers]
        server_efs = [w.state["server_ef"][k] for w in engine.workers]
        # Local momentum update with the *local* gradient.
        locals_m: list[np.ndarray] = []
        for worker in engine.workers:
            g = worker.buckets[k].flat_grad()
            m = worker.state["m"][k]
            m *= self.beta1
            m += (1 - self.beta1) * g
            locals_m.append(m.copy())
        # Error-compensated 1-bit aggregation of momentum.
        summed = c_lp_s(
            locals_m,
            engine.group,
            compressor=self.compressor,
            worker_errors=worker_efs,
            server_errors=server_efs,
            hierarchical=engine.hierarchical,
        )
        for worker, total in zip(engine.workers, summed):
            m_avg = total / n
            # Workers adopt the synchronized momentum so replicas track.
            worker.state["m"][k][...] = m_avg
            v = worker.state["v"][k]  # frozen preconditioner
            x = worker.buckets[k].flat_data()
            x -= self.lr * m_avg / (np.sqrt(v) + self.eps)
            if not worker.buckets[k].flattened:
                worker.buckets[k].set_flat_data(x)
