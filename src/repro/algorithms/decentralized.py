"""Decen-32bits: decentralized full-precision SGD via D_FP_S.

Matches the paper's "decentralized training algorithm with the random probing
method to exchange the model parameters in each iteration" (ref [15]'s
D-PSGD with a randomized matching).  Each step:

1. every worker applies its optimizer with its *local* gradient
   (the paper's Figure 3 shows model update happening *before* the
   decentralized communication);
2. workers average model weights with their randomly matched peer(s).

Replicas deliberately diverge between steps; consensus is maintained only in
expectation, which is why Figure 6 shows a small accuracy drop on some tasks.
The ring topology variant is available via ``topology='ring'``.
"""

from __future__ import annotations

from ..core.engine import Algorithm, BaguaEngine
from ..core.primitives import PeerSelector, RandomPeers, RingPeers, d_fp_s


class DecentralizedSGD(Algorithm):
    name = "decentralized"

    def __init__(self, topology: str = "random", seed: int = 0) -> None:
        self.peers = _make_peer_selector(topology, seed)
        self.topology = topology

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        # Local model update first (no gradient synchronization at all);
        # the peer matching is a function of ``step`` alone, so every bucket
        # of one iteration gossips with the same partner.
        for worker in engine.workers:
            worker.optimizer_step_on_bucket(k)
        # Then gossip-average this bucket's weights with the step's peers.
        weights = engine.weights_of_bucket(k)
        averaged = d_fp_s(
            weights,
            engine.group,
            peers=self.peers,
            step=step,
            hierarchical=engine.hierarchical,
        )
        engine.set_weights_of_bucket(k, averaged)


def _make_peer_selector(topology: str, seed: int) -> PeerSelector:
    if topology == "random":
        return RandomPeers(seed=seed)
    if topology == "ring":
        return RingPeers()
    raise ValueError(f"unknown topology {topology!r}; use 'random' or 'ring'")
