"""Binomial-tree broadcast and reduce.

The star patterns in :mod:`repro.comm.collectives` serialize the root's NIC
across ``n - 1`` messages; a binomial tree spreads the load over
``ceil(log2 n)`` rounds in which every holder forwards to one new member.
Used by the hierarchical tier when node counts grow, and benchmarked against
the star in the ablation suite.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..cluster.transport import Message
from .group import CommGroup


def tree_broadcast(array: np.ndarray, group: CommGroup, root_index: int = 0) -> list[np.ndarray]:
    """Binomial broadcast from ``root_index``; log2(n) message rounds."""
    n = group.size
    results: list[np.ndarray] = [array.copy() for _ in range(n)]
    if n == 1:
        return results

    # Work in a rotated index space where the root is member 0.
    def actual(virtual: int) -> int:
        return group.ranks[(virtual + root_index) % n]

    have = {0}
    span = 1
    while span < n:
        messages = []
        senders = sorted(have)
        for src in senders:
            dst = src + span
            if dst < n:
                messages.append(Message(actual(src), actual(dst), array.copy()))
                have.add(dst)
        if messages:
            group.transport.exchange(messages)
        span *= 2
    return results


def tree_reduce(
    arrays: Sequence[np.ndarray], group: CommGroup, root_index: int = 0
) -> np.ndarray:
    """Binomial reduction (sum) to ``root_index``; log2(n) message rounds."""
    n = group.size
    if len(arrays) != n:
        raise ValueError(f"expected {n} arrays, got {len(arrays)}")
    partial = [a.astype(np.float64, copy=True) for a in arrays]

    def actual(virtual: int) -> int:
        return group.ranks[(virtual + root_index) % n]

    span = 1
    while span < n:
        messages = []
        merges = []
        for dst in range(0, n, 2 * span):
            src = dst + span
            if src < n:
                messages.append(Message(actual(src), actual(dst), (src, partial[src])))
                merges.append((dst, src))
        if messages:
            group.transport.exchange(messages)
        for dst, src in merges:
            partial[dst] = partial[dst] + partial[src]
        span *= 2
    return partial[0]


def tree_allreduce(
    arrays: Sequence[np.ndarray], group: CommGroup, root_index: int = 0
) -> list[np.ndarray]:
    """Reduce to root, then broadcast — 2 log2(n) rounds total."""
    total = tree_reduce(arrays, group, root_index=root_index)
    return tree_broadcast(total, group, root_index=root_index)
