"""Global switch between the world-batched fast path and the loop reference.

The collectives and primitives ship two implementations with identical
observable behavior (bitwise-equal outputs, message-for-message identical
transport schedules):

* the **loop reference** — per-rank Python loops, one message payload per
  chunk, one compressor call per (member, chunk).  Easy to audit; this is
  the oracle the property tests compare against.
* the **fast path** — the world dimension batched into single ``(world, n)``
  ndarray kernels with size-stub messages (see :mod:`repro.comm.batched`).

Resolution order for each collective call:

1. an explicit per-call ``fast_path=...`` argument;
2. an explicit global — ``REPRO_FAST_PATH`` in the environment,
   :func:`set_fast_path`, or the :func:`use_fast_path` context manager;
3. the transport backend's preference (``backend.prefers_fast_path``):
   ``local`` picks the loop reference, ``batched``/``shm`` the kernels.

With no explicit setting anywhere the default remains the fast path, so
behavior is unchanged for existing callers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..cluster.transport import Transport

_enabled: bool = os.environ.get("REPRO_FAST_PATH", "1").lower() not in ("0", "false", "no")
# Whether the global was *explicitly* chosen (env var present, set_fast_path,
# or use_fast_path).  Only an explicit global overrides a transport backend's
# kernel preference.
_explicit: bool = "REPRO_FAST_PATH" in os.environ


def fast_path_enabled() -> bool:
    """Current global default for the world-batched fast path."""
    return _enabled


def set_fast_path(enabled: bool | None) -> None:
    """Set the global fast-path default (True = batched kernels).

    ``None`` clears any explicit global: the default reverts to the
    environment (``REPRO_FAST_PATH``) and per-call resolution defers to the
    transport backend's kernel preference again.
    """
    global _enabled, _explicit
    if enabled is None:
        _enabled = os.environ.get("REPRO_FAST_PATH", "1").lower() not in ("0", "false", "no")
        _explicit = "REPRO_FAST_PATH" in os.environ
        return
    _enabled = bool(enabled)
    _explicit = True


def resolve_fast_path(override: bool | None, transport: Transport | None = None) -> bool:
    """Resolve a per-call ``fast_path`` argument (see module doc for order)."""
    if override is not None:
        return bool(override)
    if _explicit or transport is None:
        return _enabled
    return transport.backend.prefers_fast_path


@contextmanager
def use_fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off (tests, benchmarks)."""
    global _enabled, _explicit
    previous = _enabled
    previous_explicit = _explicit
    _enabled = bool(enabled)
    _explicit = True
    try:
        yield
    finally:
        _enabled = previous
        _explicit = previous_explicit
