"""Global switch between the world-batched fast path and the loop reference.

The collectives and primitives ship two implementations with identical
observable behavior (bitwise-equal outputs, message-for-message identical
transport schedules):

* the **loop reference** — per-rank Python loops, one message payload per
  chunk, one compressor call per (member, chunk).  Easy to audit; this is
  the oracle the property tests compare against.
* the **fast path** — the world dimension batched into single ``(world, n)``
  ndarray kernels with size-stub messages (see :mod:`repro.comm.batched`).

The fast path is the default.  It can be disabled globally
(``set_fast_path(False)``, or ``REPRO_FAST_PATH=0`` in the environment),
per call site (every routed function takes ``fast_path=...``), or lexically
with the :func:`use_fast_path` context manager — which is how benchmarks and
bit-identity tests drive both implementations side by side.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Iterator

_enabled: bool = os.environ.get("REPRO_FAST_PATH", "1").lower() not in ("0", "false", "no")


def fast_path_enabled() -> bool:
    """Current global default for the world-batched fast path."""
    return _enabled


def set_fast_path(enabled: bool) -> None:
    """Set the global fast-path default (True = batched kernels)."""
    global _enabled
    _enabled = bool(enabled)


def resolve_fast_path(override: bool | None) -> bool:
    """Resolve a per-call ``fast_path`` argument against the global default."""
    return _enabled if override is None else bool(override)


@contextmanager
def use_fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off (tests, benchmarks)."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous
