"""Global switch between the world-batched fast path and the loop reference.

The collectives and primitives ship two implementations with identical
observable behavior (bitwise-equal outputs, message-for-message identical
transport schedules):

* the **loop reference** — per-rank Python loops, one message payload per
  chunk, one compressor call per (member, chunk).  Easy to audit; this is
  the oracle the property tests compare against.
* the **fast path** — the world dimension batched into single ``(world, n)``
  ndarray kernels with size-stub messages (see :mod:`repro.comm.batched`).

Resolution order for each collective call:

1. an explicit per-call ``fast_path=...`` argument;
2. an explicit global — ``REPRO_FAST_PATH`` in the environment,
   :func:`set_fast_path`, or the :func:`use_fast_path` context manager;
3. the transport backend's preference (``backend.prefers_fast_path``):
   ``local`` picks the loop reference, ``batched``/``shm`` the kernels.

With no explicit setting anywhere the default remains the fast path, so
behavior is unchanged for existing callers.

The **pool-ref** switch below is the same shape for a different axis: whether
dense full-precision collectives over pool-resident buckets ship zero-copy
``PoolRef`` descriptors and reduce in place on the shared pool
(``backend.pool_ref_reduce``) instead of moving payload bytes.  Resolution:
explicit global (``REPRO_POOL_REF`` / :func:`set_pool_ref` /
:func:`use_pool_ref`) first, then the backend's capability flag
(``backend.supports_pool_ref``) — on for ``shm``, off for the in-process
backends, where delivery is already zero-copy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..cluster.transport import Transport

_enabled: bool = os.environ.get("REPRO_FAST_PATH", "1").lower() not in ("0", "false", "no")
# Whether the global was *explicitly* chosen (env var present, set_fast_path,
# or use_fast_path).  Only an explicit global overrides a transport backend's
# kernel preference.
_explicit: bool = "REPRO_FAST_PATH" in os.environ


def fast_path_enabled() -> bool:
    """Current global default for the world-batched fast path."""
    return _enabled


def set_fast_path(enabled: bool | None) -> None:
    """Set the global fast-path default (True = batched kernels).

    ``None`` clears any explicit global: the default reverts to the
    environment (``REPRO_FAST_PATH``) and per-call resolution defers to the
    transport backend's kernel preference again.
    """
    global _enabled, _explicit
    if enabled is None:
        _enabled = os.environ.get("REPRO_FAST_PATH", "1").lower() not in ("0", "false", "no")
        _explicit = "REPRO_FAST_PATH" in os.environ
        return
    _enabled = bool(enabled)
    _explicit = True


def resolve_fast_path(override: bool | None, transport: Transport | None = None) -> bool:
    """Resolve a per-call ``fast_path`` argument (see module doc for order)."""
    if override is not None:
        return bool(override)
    if _explicit or transport is None:
        return _enabled
    return transport.backend.prefers_fast_path


@contextmanager
def use_fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off (tests, benchmarks)."""
    global _enabled, _explicit
    previous = _enabled
    previous_explicit = _explicit
    _enabled = bool(enabled)
    _explicit = True
    try:
        yield
    finally:
        _enabled = previous
        _explicit = previous_explicit


# ----------------------------------------------------------------------
# Pool-ref collectives switch (zero-copy in-place reduction on the pool)
# ----------------------------------------------------------------------
_pool_enabled: bool = os.environ.get("REPRO_POOL_REF", "1").lower() not in ("0", "false", "no")
_pool_explicit: bool = "REPRO_POOL_REF" in os.environ


def pool_ref_enabled() -> bool:
    """Current global default for the pool-ref descriptor fast path."""
    return _pool_enabled


def set_pool_ref(enabled: bool | None) -> None:
    """Set the global pool-ref default (True = descriptor reduction).

    ``None`` clears any explicit global: the default reverts to the
    environment (``REPRO_POOL_REF``) and resolution defers to the transport
    backend's ``supports_pool_ref`` capability again.
    """
    global _pool_enabled, _pool_explicit
    if enabled is None:
        _pool_enabled = os.environ.get("REPRO_POOL_REF", "1").lower() not in ("0", "false", "no")
        _pool_explicit = "REPRO_POOL_REF" in os.environ
        return
    _pool_enabled = bool(enabled)
    _pool_explicit = True


def resolve_pool_ref(transport: Transport | None) -> bool:
    """Whether collectives should try the pool-ref path on this transport.

    An explicit global wins; otherwise the backend's capability flag
    decides.  This only gates the *attempt* — the path still engages per
    call only when every member array resolves to a pool descriptor
    (``backend.resolve_pool_refs``), so non-pool payloads keep the codec
    path regardless of the switch.
    """
    if _pool_explicit or transport is None:
        return _pool_enabled
    return transport.backend.supports_pool_ref


@contextmanager
def use_pool_ref(enabled: bool) -> Iterator[None]:
    """Temporarily force the pool-ref path on or off (tests, benchmarks)."""
    global _pool_enabled, _pool_explicit
    previous = _pool_enabled
    previous_explicit = _pool_explicit
    _pool_enabled = bool(enabled)
    _pool_explicit = True
    try:
        yield
    finally:
        _pool_enabled = previous
        _pool_explicit = previous_explicit
