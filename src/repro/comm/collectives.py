"""MPI-style collectives implemented from point-to-point message rounds.

Every function takes ``arrays`` — one 1-D numpy array per group member, in
``group.ranks`` order — and returns per-member results.  This god's-eye
calling convention is how the lock-step trainer drives the simulated workers;
the message schedules underneath are the real thing (ring reduce-scatter,
all-gather, tree broadcast, ...), and the transport charges their simulated
time and bytes.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..cluster.transport import Message
from .chunking import check_arrays as _check_arrays
from .chunking import chunk_bounds
from .fastpath import resolve_fast_path
from .group import CommGroup


def _chunk_bounds(length: int, parts: int) -> list[tuple]:
    """Split ``range(length)`` into ``parts`` contiguous chunks (numpy-style).

    Thin list view over the cached :func:`repro.comm.chunking.chunk_bounds`,
    kept for callers that predate the shared helper.
    """
    return list(chunk_bounds(length, parts))


# ----------------------------------------------------------------------
# Point-to-point helpers
# ----------------------------------------------------------------------
def send_recv(group: CommGroup, src: int, dst: int, payload: Any) -> Any:
    """One message from ``src`` to ``dst`` (global ranks); returns the payload."""
    inbox = group.transport.exchange(
        [Message(src, dst, payload, match_id=f"p2p:{src}->{dst}")]
    )
    return inbox[dst][0].payload


# ----------------------------------------------------------------------
# Ring allreduce (Horovod / PyTorch-DDP substrate)
# ----------------------------------------------------------------------
def ring_reduce_scatter(
    arrays: Sequence[np.ndarray], group: CommGroup, fast_path: bool | None = None
) -> list[np.ndarray]:
    """Ring reduce-scatter: member i ends with the full sum of chunk i.

    Runs ``n - 1`` rounds; in round r, member i sends chunk ``(i - r) mod n``
    to its right neighbor and accumulates the chunk arriving from the left.
    Returns the reduced chunk owned by each member.
    """
    if resolve_fast_path(fast_path, group.transport) and group.size > 1:
        from .batched import ring_reduce_scatter_batched

        return ring_reduce_scatter_batched(arrays, group)
    _check_arrays(arrays, group)
    n = group.size
    bounds = chunk_bounds(arrays[0].shape[0], n)
    work = [a.astype(np.float64, copy=True) for a in arrays]
    if n == 1:
        return [work[0]]

    for r in range(n - 1):
        messages = []
        for i in range(n):
            chunk = (i - r) % n
            lo, hi = bounds[chunk]
            # The slice is sent as a view: messages for the round are built
            # before any receiver mutates its buffer, and a receiver only
            # updates chunk (i-1-r) while forwarding chunk (i-r) — disjoint,
            # so skipping the copy is safe.
            messages.append(
                Message(
                    group.ranks[i], group.ranks[(i + 1) % n],
                    (chunk, work[i][lo:hi]),
                    match_id=f"rs.r{r}.c{chunk}",
                )
            )
        inbox = group.transport.exchange(messages)
        for i in range(n):
            chunk, data = inbox[group.ranks[i]][0].payload
            lo, hi = bounds[chunk]
            work[i][lo:hi] += data

    out = []
    for i in range(n):
        lo, hi = bounds[(i + 1) % n]
        out.append(work[i][lo:hi].copy())
    return out


def ring_all_gather_chunks(
    chunks: Sequence[np.ndarray],
    owners: Sequence[int],
    group: CommGroup,
    total: int,
    fast_path: bool | None = None,
) -> list[np.ndarray]:
    """Ring all-gather of per-member chunks into full arrays.

    ``chunks[i]`` is the chunk owned by member i whose id is ``owners[i]``;
    chunk ids index into the canonical ``chunk_bounds(total, n)`` layout.
    """
    if resolve_fast_path(fast_path, group.transport) and group.size > 1:
        from .batched import ring_all_gather_chunks_batched

        return ring_all_gather_chunks_batched(chunks, owners, group, total)
    n = group.size
    bounds = chunk_bounds(total, n)
    results = [np.zeros(total) for _ in range(n)]
    for i in range(n):
        lo, hi = bounds[owners[i]]
        results[i][lo:hi] = chunks[i]

    # In round r, member i forwards the chunk it received r rounds ago —
    # i.e. the chunk originally owned by member (i - r) mod n.  As in
    # ring_reduce_scatter, the forwarded slice is a view: the chunk a member
    # overwrites on receive is never the one it just sent.
    for r in range(n - 1):
        messages = []
        for i in range(n):
            chunk_id = owners[(i - r) % n]
            lo, hi = bounds[chunk_id]
            messages.append(
                Message(
                    group.ranks[i], group.ranks[(i + 1) % n],
                    (chunk_id, results[i][lo:hi]),
                    match_id=f"ag.r{r}.c{chunk_id}",
                )
            )
        inbox = group.transport.exchange(messages)
        for i in range(n):
            chunk_id, data = inbox[group.ranks[i]][0].payload
            lo, hi = bounds[chunk_id]
            results[i][lo:hi] = data
    return results


def ring_allreduce(
    arrays: Sequence[np.ndarray], group: CommGroup, fast_path: bool | None = None
) -> list[np.ndarray]:
    """Classic two-phase ring allreduce (sum); 2(n-1) rounds of S/n bytes."""
    if resolve_fast_path(fast_path, group.transport) and group.size > 1:
        from .batched import ring_allreduce_batched

        return ring_allreduce_batched(arrays, group)
    _check_arrays(arrays, group)
    n = group.size
    if n == 1:
        return [arrays[0].astype(np.float64, copy=True)]
    total = arrays[0].shape[0]
    reduced = ring_reduce_scatter(arrays, group, fast_path=fast_path)
    owners = [(i + 1) % n for i in range(n)]
    return ring_all_gather_chunks(reduced, owners, group, total, fast_path=fast_path)


# ----------------------------------------------------------------------
# Star-pattern collectives (parameter-server substrate)
# ----------------------------------------------------------------------
def gather(arrays: Sequence[np.ndarray], group: CommGroup, root_index: int = 0) -> list[np.ndarray]:
    """All members send to ``root_index``; returns the gathered list at root order."""
    _check_arrays(arrays, group)
    root = group.ranks[root_index]
    messages = [
        Message(group.ranks[i], root, (i, arrays[i].copy()), match_id=f"gather.m{i}")
        for i in range(group.size)
        if i != root_index
    ]
    gathered: list[np.ndarray | None] = [None] * group.size
    gathered[root_index] = arrays[root_index].copy()
    if messages:
        inbox = group.transport.exchange(messages)
        for msg in inbox[root]:
            idx, data = msg.payload
            gathered[idx] = data
    return [g for g in gathered if g is not None]


def broadcast(array: np.ndarray, group: CommGroup, root_index: int = 0) -> list[np.ndarray]:
    """Root sends ``array`` to every other member (flat star broadcast)."""
    root = group.ranks[root_index]
    messages = [
        Message(root, group.ranks[i], array.copy(), match_id=f"bcast.m{i}")
        for i in range(group.size)
        if i != root_index
    ]
    results: list[np.ndarray] = [array.copy() for _ in range(group.size)]
    if messages:
        group.transport.exchange(messages)
    return results


def reduce_to_root(
    arrays: Sequence[np.ndarray], group: CommGroup, root_index: int = 0
) -> np.ndarray:
    """Sum all members' arrays at the root (gather + local sum)."""
    gathered = gather(arrays, group, root_index=root_index)
    return np.sum(gathered, axis=0)


def allreduce_via_root(
    arrays: Sequence[np.ndarray], group: CommGroup, root_index: int = 0
) -> list[np.ndarray]:
    """Reduce at root then broadcast — the naive PS-style allreduce."""
    total = reduce_to_root(arrays, group, root_index=root_index)
    return broadcast(total, group, root_index=root_index)


def alltoall(parts: Sequence[Sequence], group: CommGroup) -> list[list]:
    """``parts[i][j]`` travels from member i to member j; one message round.

    Returns ``received`` with ``received[j][i]`` = payload sent by member i
    to member j (``received[j][j]`` is member j's own part, no message).
    """
    n = group.size
    if any(len(p) != n for p in parts):
        raise ValueError("alltoall needs an n x n grid of parts")
    # Staggered schedule: in slot ``offset`` member i targets (i + offset) so
    # every member sends and receives exactly one part per slot — no receiver
    # hotspot (the standard balanced all-to-all ordering).
    messages = []
    for offset in range(1, n):
        for i in range(n):
            j = (i + offset) % n
            messages.append(Message(group.ranks[i], group.ranks[j], (i, parts[i][j])))
    received: list[list] = [[None] * n for _ in range(n)]
    for j in range(n):
        received[j][j] = parts[j][j]
    if messages:
        inbox = group.transport.exchange(messages)
        for j in range(n):
            for msg in inbox.get(group.ranks[j], []):
                i, payload = msg.payload
                received[j][i] = payload
    return received


def allgather_payloads(payloads: Sequence, group: CommGroup) -> list[list]:
    """Every member sends its payload to every other member; one round."""
    n = group.size
    messages = []
    for offset in range(1, n):
        for i in range(n):
            j = (i + offset) % n
            messages.append(Message(group.ranks[i], group.ranks[j], (i, payloads[i])))
    results: list[list] = [[None] * n for _ in range(n)]
    for i in range(n):
        results[i][i] = payloads[i]
    if messages:
        inbox = group.transport.exchange(messages)
        for j in range(n):
            for msg in inbox.get(group.ranks[j], []):
                i, payload = msg.payload
                results[j][i] = payload
    return results
