"""Hierarchical (two-level) communication (paper §3.4, optimization H).

Bandwidth inside a server (NVLink) dwarfs the TCP bandwidth between servers,
so BAGUA communicates in two tiers: aggregate locally without compression,
run the expensive inter-node step only among one elected leader per node, and
broadcast the result back within each node.

For decentralized primitives, hierarchy *changes the semantics*: workers
within a node are always fully synchronized (intra-node allreduce) while only
leaders perform the peer exchange — the paper calls this out explicitly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from .collectives import broadcast, gather, ring_allreduce
from .group import CommGroup
from .scatter_reduce import CompressFn, DecompressFn, scatter_reduce

if TYPE_CHECKING:
    from ..compression.base import Compressor
    from ..compression.error_feedback import ErrorFeedback


def hierarchical_phases(
    node_group: Sequence[int],
    leaders: Sequence[int],
    rank: int,
) -> list[tuple[str, tuple[int, ...]]]:
    """The phase sequence ``rank`` participates in under optimization H.

    Returns ``(phase, group)`` pairs in execution order, where ``phase`` is
    ``"reduce"`` (intra-node aggregation onto the leader), ``"inter"`` (the
    leader-subgroup exchange — ScatterReduce for centralized primitives, the
    peer exchange for decentralized ones) or ``"broadcast"`` (the result
    fanned back within the node).  Single-rank nodes skip the intra phases;
    non-leaders skip the inter phase; a single-node world has no inter
    phase at all.

    This is the *static* description of what :class:`HierarchicalComm`
    executes — the plan lowering (:mod:`repro.analysis.lowering`) and the
    symbolic verifier enumerate per-rank events from exactly this structure,
    so what the analyzer proves is the phase order the communicator runs.
    """
    node = tuple(node_group)
    phases: list[tuple[str, tuple[int, ...]]] = []
    if len(node) > 1:
        phases.append(("reduce", node))
    if rank in leaders and len(leaders) > 1:
        phases.append(("inter", tuple(leaders)))
    if len(node) > 1:
        phases.append(("broadcast", node))
    return phases


class HierarchicalComm:
    """Two-tier communicator derived from a flat group."""

    def __init__(self, group: CommGroup) -> None:
        self.group = group
        self.node_groups = group.node_subgroups()
        self.leaders = group.leader_group()
        # Map each member index in the flat group to (node-group idx, idx within it).
        self._placement = {}
        for gi, sub in enumerate(self.node_groups):
            for li, rank in enumerate(sub.ranks):
                self._placement[rank] = (gi, li)

    def _split_by_node(self, arrays: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        per_node: list[list[np.ndarray]] = [[] for _ in self.node_groups]
        for member_idx, rank in enumerate(self.group.ranks):
            gi, _li = self._placement[rank]
            per_node[gi].append(arrays[member_idx])
        return per_node

    def _merge_from_node(self, per_node: list[list[np.ndarray]]) -> list[np.ndarray]:
        out: list[np.ndarray | None] = [None] * self.group.size
        for gi, sub in enumerate(self.node_groups):
            for li, rank in enumerate(sub.ranks):
                out[self.group.index_of(rank)] = per_node[gi][li]
        return [o for o in out if o is not None]

    # ------------------------------------------------------------------
    # Centralized: intra reduce -> inter scatter-reduce -> intra broadcast
    # ------------------------------------------------------------------
    def allreduce(
        self,
        arrays: Sequence[np.ndarray],
        compress_phase1: CompressFn | None = None,
        decompress_phase1: DecompressFn | None = None,
        compress_phase2: CompressFn | None = None,
        decompress_phase2: DecompressFn | None = None,
    ) -> list[np.ndarray]:
        """Hierarchical sum; compression hooks apply only to the inter-node tier."""
        per_node = self._split_by_node(arrays)

        # Tier 1: full-precision reduce to each node leader over NVLink.
        leader_sums: list[np.ndarray] = []
        for sub, node_arrays in zip(self.node_groups, per_node):
            gathered = gather(node_arrays, sub, root_index=0)
            leader_sums.append(np.sum(gathered, axis=0))

        # Tier 2: compressed ScatterReduce among leaders over TCP.
        aggregated = scatter_reduce(
            leader_sums,
            self.leaders,
            compress_phase1=compress_phase1,
            decompress_phase1=decompress_phase1,
            compress_phase2=compress_phase2,
            decompress_phase2=decompress_phase2,
        )

        # Tier 3: each leader broadcasts the aggregate within its node.
        results_per_node: list[list[np.ndarray]] = []
        for sub, agg in zip(self.node_groups, aggregated):
            results_per_node.append(broadcast(agg, sub, root_index=0))
        return self._merge_from_node(results_per_node)

    def allreduce_batched(
        self,
        arrays: Sequence[np.ndarray],
        codec: Compressor | None = None,
        worker_errors: Sequence[ErrorFeedback] | None = None,
        server_errors: Sequence[ErrorFeedback] | None = None,
    ) -> list[np.ndarray]:
        """Hierarchical sum with the world-batched inter-node tier.

        The intra-node tiers (NVLink gather / broadcast) are single star
        rounds and stay on the loop implementation; the inter-node
        ScatterReduce — where compression and the per-chunk hot loops live —
        runs through :func:`repro.comm.batched.scatter_reduce_batched`.
        Error-feedback stores are indexed by leader-group member, exactly as
        the loop's compression hooks address them.
        """
        from .batched import scatter_reduce_batched

        per_node = self._split_by_node(arrays)

        leader_sums: list[np.ndarray] = []
        for sub, node_arrays in zip(self.node_groups, per_node):
            gathered = gather(node_arrays, sub, root_index=0)
            leader_sums.append(np.sum(gathered, axis=0))

        aggregated = scatter_reduce_batched(
            leader_sums,
            self.leaders,
            codec=codec,
            worker_errors=worker_errors,
            server_errors=server_errors,
        )

        results_per_node: list[list[np.ndarray]] = []
        for sub, agg in zip(self.node_groups, aggregated):
            results_per_node.append(broadcast(agg, sub, root_index=0))
        return self._merge_from_node(results_per_node)

    # ------------------------------------------------------------------
    # Decentralized: intra allreduce-average, leaders exchange with peers
    # ------------------------------------------------------------------
    def decentralized_average(
        self,
        arrays: Sequence[np.ndarray],
        leader_exchange: Callable[[Sequence[np.ndarray], CommGroup], list[np.ndarray]],
    ) -> list[np.ndarray]:
        """Intra-node average, leader peer exchange, intra-node broadcast.

        ``leader_exchange`` runs the decentralized step among node leaders
        (e.g. ring or random peer averaging from :mod:`repro.core.primitives`).
        """
        per_node = self._split_by_node(arrays)

        node_means: list[np.ndarray] = []
        for sub, node_arrays in zip(self.node_groups, per_node):
            if sub.size == 1:
                node_means.append(node_arrays[0].astype(np.float64, copy=True))
            else:
                summed = ring_allreduce(node_arrays, sub)
                node_means.append(summed[0] / sub.size)

        exchanged = leader_exchange(node_means, self.leaders)

        results_per_node: list[list[np.ndarray]] = []
        for sub, result in zip(self.node_groups, exchanged):
            results_per_node.append(broadcast(result, sub, root_index=0))
        return self._merge_from_node(results_per_node)
