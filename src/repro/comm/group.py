"""Communication groups: an ordered set of ranks sharing a transport."""

from __future__ import annotations

from collections.abc import Sequence

from ..cluster.transport import Transport


class CommGroup:
    """An MPI-style group over a subset of cluster ranks.

    Collectives take per-member inputs ordered like ``group.ranks`` and return
    per-member outputs in the same order.  Groups are cheap views — building
    per-node subgroups for hierarchical communication allocates nothing big.
    """

    def __init__(self, transport: Transport, ranks: Sequence[int]) -> None:
        ranks = list(ranks)
        if not ranks:
            raise ValueError("empty communication group")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group: {ranks}")
        for rank in ranks:
            if not 0 <= rank < transport.spec.world_size:
                raise ValueError(f"rank {rank} outside world of {transport.spec.world_size}")
        self.transport = transport
        self.ranks: list[int] = ranks

    @property
    def size(self) -> int:
        return len(self.ranks)

    @property
    def spec(self):
        return self.transport.spec

    @property
    def tracer(self):
        """The transport's installed trace recorder, or ``None``."""
        return self.transport.tracer

    def index_of(self, rank: int) -> int:
        return self.ranks.index(rank)

    def barrier(self) -> float:
        return self.transport.barrier(self.ranks)

    def subgroup(self, ranks: Sequence[int]) -> CommGroup:
        member_set = set(self.ranks)
        for rank in ranks:
            if rank not in member_set:
                raise ValueError(f"rank {rank} not a member of this group")
        return CommGroup(self.transport, ranks)

    def node_subgroups(self) -> list[CommGroup]:
        """One subgroup per machine represented in this group."""
        by_node: dict[int, list[int]] = {}
        for rank in self.ranks:
            by_node.setdefault(self.spec.node_of(rank), []).append(rank)
        return [CommGroup(self.transport, ranks) for _node, ranks in sorted(by_node.items())]

    def leader_group(self) -> CommGroup:
        """Group of the first rank on each machine (inter-node tier)."""
        leaders = [sub.ranks[0] for sub in self.node_subgroups()]
        return CommGroup(self.transport, leaders)

    def __repr__(self) -> str:
        return f"CommGroup(ranks={self.ranks})"
