"""Communication groups: an ordered set of ranks sharing a transport."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..cluster.transport import Transport

if TYPE_CHECKING:
    from ..analysis.recorder import TraceRecorder
    from ..cluster.topology import ClusterSpec


def node_major_partition(world_size: int, workers_per_node: int) -> list[tuple[int, ...]]:
    """Node-major rank partition: ``[(0..g), (g..2g), ...]``.

    The static form of the node grouping a :class:`CommGroup` derives from a
    live transport's :class:`~repro.cluster.topology.ClusterSpec` — used by
    the symbolic plan verifier, which has no transport to ask.  Raises
    ``ValueError`` unless ``workers_per_node`` divides ``world_size``
    evenly: an uneven split would leave a trailing under-sized node whose
    leader joins inter-node collectives other leaders size differently.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if workers_per_node < 1:
        raise ValueError(f"workers_per_node must be >= 1, got {workers_per_node}")
    if world_size % workers_per_node != 0:
        raise ValueError(
            f"workers_per_node={workers_per_node} does not divide "
            f"world_size={world_size}; the hierarchical split needs even nodes"
        )
    return [
        tuple(range(start, start + workers_per_node))
        for start in range(0, world_size, workers_per_node)
    ]


class CommGroup:
    """An MPI-style group over a subset of cluster ranks.

    Collectives take per-member inputs ordered like ``group.ranks`` and return
    per-member outputs in the same order.  Groups are cheap views — building
    per-node subgroups for hierarchical communication allocates nothing big.
    """

    def __init__(self, transport: Transport, ranks: Sequence[int]) -> None:
        ranks = list(ranks)
        if not ranks:
            raise ValueError("empty communication group")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group: {ranks}")
        for rank in ranks:
            if not 0 <= rank < transport.spec.world_size:
                raise ValueError(f"rank {rank} outside world of {transport.spec.world_size}")
        self.transport = transport
        self.ranks: list[int] = ranks

    @property
    def size(self) -> int:
        return len(self.ranks)

    @property
    def spec(self) -> ClusterSpec:
        return self.transport.spec

    @property
    def tracer(self) -> TraceRecorder | None:
        """The transport's installed trace recorder, or ``None``."""
        return self.transport.tracer

    def index_of(self, rank: int) -> int:
        return self.ranks.index(rank)

    def barrier(self) -> float:
        return self.transport.barrier(self.ranks)

    def subgroup(self, ranks: Sequence[int]) -> CommGroup:
        member_set = set(self.ranks)
        for rank in ranks:
            if rank not in member_set:
                raise ValueError(f"rank {rank} not a member of this group")
        return CommGroup(self.transport, ranks)

    def node_subgroups(self) -> list[CommGroup]:
        """One subgroup per machine represented in this group."""
        by_node: dict[int, list[int]] = {}
        for rank in self.ranks:
            by_node.setdefault(self.spec.node_of(rank), []).append(rank)
        return [CommGroup(self.transport, ranks) for _node, ranks in sorted(by_node.items())]

    def leader_group(self) -> CommGroup:
        """Group of the first rank on each machine (inter-node tier)."""
        leaders = [sub.ranks[0] for sub in self.node_subgroups()]
        return CommGroup(self.transport, leaders)

    def __repr__(self) -> str:
        return f"CommGroup(ranks={self.ranks})"
