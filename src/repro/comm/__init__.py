"""NCCL-like collectives over the simulated transport."""

from .collectives import (
    allgather_payloads,
    allreduce_via_root,
    alltoall,
    broadcast,
    gather,
    reduce_to_root,
    ring_all_gather_chunks,
    ring_allreduce,
    ring_reduce_scatter,
    send_recv,
)
from .group import CommGroup
from .hierarchical import HierarchicalComm
from .scatter_reduce import scatter_reduce
from .tree import tree_allreduce, tree_broadcast, tree_reduce

__all__ = [
    "CommGroup",
    "ring_allreduce",
    "ring_reduce_scatter",
    "ring_all_gather_chunks",
    "gather",
    "broadcast",
    "reduce_to_root",
    "allreduce_via_root",
    "alltoall",
    "allgather_payloads",
    "send_recv",
    "scatter_reduce",
    "HierarchicalComm",
    "tree_broadcast",
    "tree_reduce",
    "tree_allreduce",
]
