"""NCCL-like collectives over the simulated transport.

Public entry points route to the world-batched fast path by default (see
:mod:`repro.comm.fastpath`); the per-rank loop implementations remain in
:mod:`repro.comm.collectives` as the reference oracle.  The payload-level
round helpers ``alltoall`` / ``allgather_payloads`` are deprecated at this
package level — the batched kernels made them internal plumbing of the loop
path; import them from ``repro.comm.collectives`` if you really need them.
"""

import warnings

from .batched import (
    allgather_sizes,
    alltoall_sizes,
    gossip_average_batched,
    ring_all_gather_chunks_batched,
    ring_allreduce_batched,
    ring_reduce_scatter_batched,
    scatter_reduce_batched,
)
from .chunking import chunk_bounds, chunk_sizes
from .collectives import (
    allreduce_via_root,
    broadcast,
    gather,
    reduce_to_root,
    ring_all_gather_chunks,
    ring_allreduce,
    ring_reduce_scatter,
    send_recv,
)
from .fastpath import (
    fast_path_enabled,
    pool_ref_enabled,
    set_fast_path,
    set_pool_ref,
    use_fast_path,
    use_pool_ref,
)
from .group import CommGroup
from .hierarchical import HierarchicalComm
from .scatter_reduce import scatter_reduce
from .tree import tree_allreduce, tree_broadcast, tree_reduce

#: names served lazily with a DeprecationWarning (PEP 562)
_DEPRECATED_LOOP_INTERNALS = ("alltoall", "allgather_payloads")


def __getattr__(name: str) -> object:
    if name in _DEPRECATED_LOOP_INTERNALS:
        warnings.warn(
            f"repro.comm.{name} is a loop-path internal and deprecated at the "
            f"package level; use the batched collectives or import it from "
            f"repro.comm.collectives",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import collectives

        return getattr(collectives, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CommGroup",
    "ring_allreduce",
    "ring_reduce_scatter",
    "ring_all_gather_chunks",
    "gather",
    "broadcast",
    "reduce_to_root",
    "allreduce_via_root",
    "send_recv",
    "scatter_reduce",
    "HierarchicalComm",
    "tree_broadcast",
    "tree_reduce",
    "tree_allreduce",
    # world-batched fast path
    "scatter_reduce_batched",
    "ring_allreduce_batched",
    "ring_reduce_scatter_batched",
    "ring_all_gather_chunks_batched",
    "gossip_average_batched",
    "alltoall_sizes",
    "allgather_sizes",
    "chunk_bounds",
    "chunk_sizes",
    "fast_path_enabled",
    "set_fast_path",
    "use_fast_path",
    # pool-ref collectives switch
    "pool_ref_enabled",
    "set_pool_ref",
    "use_pool_ref",
]
