"""Shared chunk-partitioning helpers for collectives, buckets and simulation.

``chunk_bounds`` is the canonical "split a flat buffer into ``parts``
contiguous chunks" layout used by ScatterReduce, the ring kernels,
parameter-server sharding and the dry-run schedules.  It is pure and called
on every collective invocation, so results are memoized: the function
returns an immutable tuple-of-tuples that callers may safely share.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from .group import CommGroup


@lru_cache(maxsize=4096)
def chunk_bounds(length: int, parts: int) -> tuple[tuple, ...]:
    """Split ``range(length)`` into ``parts`` contiguous chunks (numpy-style).

    Returns ``((lo, hi), ...)`` with larger chunks first, exactly like
    ``np.array_split``.  Cached — the same (length, parts) pair is requested
    once per bucket per collective per round otherwise.
    """
    sizes = [length // parts + (1 if i < length % parts else 0) for i in range(parts)]
    bounds = []
    offset = 0
    for size in sizes:
        bounds.append((offset, offset + size))
        offset += size
    return tuple(bounds)


def chunk_sizes(length: int, parts: int) -> tuple[int, ...]:
    """Chunk lengths of the canonical ``chunk_bounds`` layout."""
    return tuple(hi - lo for lo, hi in chunk_bounds(length, parts))


def check_arrays(arrays: Sequence[np.ndarray], group: CommGroup) -> None:
    """Validate the per-member input convention of the collectives.

    One 1-D array per group member, all the same shape.
    """
    if len(arrays) != group.size:
        raise ValueError(f"expected {group.size} arrays, got {len(arrays)}")
    shape = arrays[0].shape
    for i, a in enumerate(arrays):
        if a.ndim != 1:
            raise ValueError(
                f"collectives operate on flattened 1-D arrays; arg {i} has shape {a.shape}"
            )
        if a.shape != shape:
            raise ValueError(f"shape mismatch: member 0 has {shape}, member {i} has {a.shape}")
