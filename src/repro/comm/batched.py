"""World-batched fast-path kernels for the collectives and primitives.

The loop implementations in :mod:`repro.comm.collectives` /
:mod:`repro.comm.scatter_reduce` model each rank as a Python-level
participant: per-rank chunk slices, one payload object per message, one
compressor call per (member, chunk).  That is the auditable reference — but
in a god's-eye simulation all ranks live in one process, so the world
dimension can be batched away: per-rank buffers become one ``(world, n)``
ndarray and every hot kernel becomes an axis-0 numpy reduction.

Everything observable is preserved **bitwise**:

* results — each kernel reproduces the loop's floating-point operation
  order (or an order proven equal: commutativity of single adds, axis
  reductions matching per-row reductions, one row-major RNG draw matching
  the sequence of per-cell draws);
* transport state — clocks, traffic stats, round counters and trace
  streams advance identically, via :meth:`Transport.exchange_sized` stub
  rounds that carry the exact byte counts and match ids of the loop's
  messages;
* compressor state — RNG streams and error-feedback residuals end in the
  same state.

The property tests in ``tests/test_fastpath_identity.py`` enforce this
contract for every collective x compressor combination.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from ..compression.base import Compressor
from ..compression.error_feedback import ErrorFeedback
from .chunking import check_arrays, chunk_bounds
from .fastpath import resolve_pool_ref
from .group import CommGroup

#: tuple-header bytes of the ``(index, payload)`` envelope the loop
#: collectives send: 8 for the tuple container itself plus 8 for the scalar
#: index element (``payload_nbytes`` charges both since the container fix)
_HEADER_BYTES = 16.0
#: wire bytes per element of a float64 ndarray payload
_F64_BYTES = 8.0


def _stack_f64(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Per-member 1-D arrays stacked into one ``(world, n)`` float64 matrix."""
    out = np.empty((len(arrays), arrays[0].shape[0]))
    for i, a in enumerate(arrays):
        out[i] = a
    return out


def _replicate(row: np.ndarray, n: int) -> list[np.ndarray]:
    """``n`` mutually independent copies of ``row`` (``row`` itself is one).

    One block allocation + broadcast store instead of ``n`` separate
    ``row.copy()`` calls — same bytes, far fewer allocator round trips.  The
    returned rows are disjoint views, so callers may mutate them freely.
    """
    if n == 1:
        return [row]
    out = np.empty((n - 1, row.shape[0]))
    out[:] = row
    return [*out, row]


def _merge_rows(matrix: np.ndarray) -> np.ndarray:
    """Axis-0 sum matching the loop's zeros-seeded ``acc += row`` fold.

    ``np.add.reduce`` folds rows sequentially from the first row when the
    reduction axis is strided, which is bitwise equal to the zeros-seeded
    fold except for a column whose terms are all ``-0.0`` (the loop's
    ``0.0 + -0.0`` yields ``+0.0``).  Adding ``0.0`` normalizes exactly
    that case and is exact everywhere else.

    A single-column matrix is the one layout where the reduction axis IS
    contiguous, and there numpy switches to pairwise summation (different
    bits for more than 8 rows) — that case folds explicitly.
    """
    if matrix.shape[1] == 1 and matrix.shape[0] > 1:
        acc = matrix[0].copy()
        for row in matrix[1:]:
            acc += row
        return acc + 0.0
    return np.add.reduce(matrix, axis=0) + 0.0


def decompress_compatible(a: Compressor, b: Compressor) -> bool:
    """True when ``a.decompress`` and ``b.decompress`` are interchangeable.

    The loop C_LP_S decompresses worker payloads with the *shared* codec
    while error feedback updates residuals with each member's *own* codec;
    the batched kernel uses one roundtrip for both, which is only valid when
    the two decompress functions agree.  Name equality covers parametrized
    codecs (bits / ratio are encoded in the name); ``seed`` covers the
    count-sketch hash family, the one codec whose decompress has hidden
    state beyond the name.
    """
    return a is b or (
        type(a) is type(b)
        and a.name == b.name
        and getattr(a, "seed", None) == getattr(b, "seed", None)
    )


def _ef_row_roundtrip(
    ef: ErrorFeedback,
    row: np.ndarray,
    bounds: Sequence[tuple[int, int]],
    key_tag: str,
) -> np.ndarray:
    """Error-compensated roundtrip of one member's row, chunk keys ascending.

    Mirrors the loop's per-chunk ``ErrorFeedback.compress`` sequence: add the
    stored residual, quantize, store the new residual — but with a single
    batched codec call over the row (bitwise equal because the chunk keys are
    distinct, so reads and writes cannot interleave within one member).
    """
    compensated = row.copy()
    for j, (lo, hi) in enumerate(bounds):
        compensated[lo:hi] += ef.residual((key_tag, j), hi - lo)
    roundtripped = ef.compressor.batch_roundtrip(compensated[None, :], bounds)[0]
    for j, (lo, hi) in enumerate(bounds):
        ef.store((key_tag, j), compensated[lo:hi] - roundtripped[lo:hi])
    return roundtripped


# ----------------------------------------------------------------------
# Stub message rounds (exact byte / match-id / order parity with the loop)
# ----------------------------------------------------------------------
@lru_cache(maxsize=512)
def _alltoall_sends_uniform(
    ranks: tuple[int, ...], row_bytes: tuple[float, ...]
) -> list[tuple[int, int, float, None]]:
    """Memoized alltoall send list when every member sends the same row.

    Training loops repeat the same bucket shapes every step, so the O(n^2)
    send list is a pure function of ``(ranks, row_bytes)``; the cached list
    is safe to share because ``exchange_sized`` only reads it.
    """
    n = len(ranks)
    return [
        (ranks[i], ranks[(i + offset) % n], _HEADER_BYTES + row_bytes[(i + offset) % n], None)
        for offset in range(1, n)
        for i in range(n)
    ]


@lru_cache(maxsize=512)
def _allgather_sends(
    ranks: tuple[int, ...], payload_bytes: tuple[float, ...]
) -> list[tuple[int, int, float, None]]:
    """Memoized allgather send list (see :func:`_alltoall_sends_uniform`)."""
    n = len(ranks)
    return [
        (ranks[i], ranks[(i + offset) % n], _HEADER_BYTES + payload_bytes[i], None)
        for offset in range(1, n)
        for i in range(n)
    ]


def alltoall_sizes(group: CommGroup, part_bytes: Sequence[Sequence[float]]) -> None:
    """Stub round matching :func:`repro.comm.collectives.alltoall`.

    ``part_bytes[i][j]`` is the payload size member i sends to member j; the
    staggered ``(offset, i)`` emission order and positional match ids are
    those of the loop implementation.
    """
    n = group.size
    ranks = group.ranks
    first = part_bytes[0] if part_bytes else None
    if n > 1 and all(p is first for p in part_bytes):
        # Symmetric case (callers pass ``[row_bytes] * n``): fetch the
        # memoized send list instead of rebuilding n*(n-1) tuples.
        sends = _alltoall_sends_uniform(tuple(ranks), tuple(first))
    else:
        sends = [
            (ranks[i], ranks[(i + offset) % n], _HEADER_BYTES + part_bytes[i][(i + offset) % n], None)
            for offset in range(1, n)
            for i in range(n)
        ]
    if sends:
        group.transport.exchange_sized(sends)


def allgather_sizes(group: CommGroup, payload_bytes: Sequence[float]) -> None:
    """Stub round matching :func:`repro.comm.collectives.allgather_payloads`."""
    n = group.size
    ranks = group.ranks
    if n > 1:
        sends = _allgather_sends(tuple(ranks), tuple(payload_bytes))
    else:
        sends = []
    if sends:
        group.transport.exchange_sized(sends)


# ----------------------------------------------------------------------
# ScatterReduce
# ----------------------------------------------------------------------
def scatter_reduce_batched(
    arrays: Sequence[np.ndarray],
    group: CommGroup,
    codec: Compressor | None = None,
    worker_errors: Sequence[ErrorFeedback] | None = None,
    server_errors: Sequence[ErrorFeedback] | None = None,
) -> list[np.ndarray]:
    """World-batched ScatterReduce (paper §3.3), sum semantics.

    ``codec=None`` is the exact C_FP_S path; with a codec, phase-1 chunks and
    phase-2 merged partitions travel quantized (C_LP_S), optionally with
    two-sided error feedback.  Bitwise equal to
    :func:`repro.comm.scatter_reduce.scatter_reduce` driven by the
    corresponding hooks, including transport and compressor state.
    """
    check_arrays(arrays, group)
    n = group.size
    total = arrays[0].shape[0]
    bounds = chunk_bounds(total, n)
    widths = [hi - lo for lo, hi in bounds]

    if codec is None and n > 1:
        row_bytes = [_F64_BYTES * w for w in widths]
        if resolve_pool_ref(group.transport):
            refs = group.transport.backend.resolve_pool_refs(arrays, group.ranks)
            if refs is not None:
                # Pool-ref fast path: every member's bucket is a dense view
                # into its own pool segment, so nothing needs to travel —
                # partition owner j folds chunk j across all segments in
                # place (rows 0..n-1, the sequential-fold order below, with
                # the same trailing ``+ 0.0``) and writes every member's
                # slice.  The stub rounds are the ones the byte-moving path
                # emits, so clocks, stats and traces are untouched by the
                # optimization.
                order = tuple(range(n))
                alltoall_sizes(group, [row_bytes] * n)
                group.transport.backend.pool_ref_reduce(
                    refs, [(lo, hi, order) for lo, hi in bounds], add_zero=True
                )
                allgather_sizes(group, row_bytes)
                return list(arrays)
        # Full-precision path: nothing is quantized, so the merged partition
        # is a plain sequential fold over the input rows and the (world, n)
        # stack never needs materializing.  ``np.add.reduce`` accumulates the
        # outer axis sequentially from row 0 (pairwise summation applies only
        # to contiguous-axis reductions), so this fold is the same operation
        # order as :func:`_merge_rows`; the trailing ``+ 0.0`` normalizes the
        # all-``-0.0`` column case exactly as there.
        alltoall_sizes(group, [row_bytes] * n)
        merged = arrays[0].astype(np.float64)
        for a in arrays[1:]:
            merged += a
        merged += 0.0
        allgather_sizes(group, row_bytes)
        return _replicate(merged, n)

    matrix = _stack_f64(arrays)

    if n == 1:
        # Single member: no messages; replay the loop's Q(Q(x)) composition.
        if codec is None:
            return [matrix[0].copy()]
        if worker_errors is None:
            once = codec.batch_roundtrip(matrix, bounds)
            return [codec.batch_roundtrip(once, bounds)[0]]
        once = _ef_row_roundtrip(worker_errors[0], matrix[0], bounds, "w")
        return [_ef_row_roundtrip(server_errors[0], once, bounds, "s")]

    # Phase 1: every member quantizes its n chunks (row-major, preserving
    # RNG order), then one all-to-all stub round.
    if worker_errors is None:
        decompressed = codec.batch_roundtrip(matrix, bounds)
        row_bytes = [codec.wire_bytes(w) for w in widths]
        part_bytes: list[Sequence[float]] = [row_bytes] * n
    else:
        decompressed = np.empty_like(matrix)
        for i in range(n):
            decompressed[i] = _ef_row_roundtrip(worker_errors[i], matrix[i], bounds, "w")
        part_bytes = [
            [worker_errors[i].compressor.wire_bytes(w) for w in widths] for i in range(n)
        ]
    alltoall_sizes(group, part_bytes)

    # Merge: partition owner j sums the n decompressed chunks of column
    # block j — one axis-0 reduction over the whole matrix.
    merged = _merge_rows(decompressed)

    # Phase 2: owner j quantizes its merged partition (j ascending ==
    # row-major over one (1, total) row), then one all-gather stub round.
    if server_errors is None:
        final = codec.batch_roundtrip(merged[None, :], bounds)[0]
        payload_bytes = [codec.wire_bytes(w) for w in widths]
    else:
        final = np.empty(total)
        for j, (lo, hi) in enumerate(bounds):
            ef = server_errors[j]
            compensated = merged[lo:hi] + ef.residual(("s", j), hi - lo)
            roundtripped = ef.compressor.batch_roundtrip(
                compensated[None, :], ((0, hi - lo),)
            )[0]
            ef.store(("s", j), compensated - roundtripped)
            final[lo:hi] = roundtripped
        payload_bytes = [
            server_errors[j].compressor.wire_bytes(w) for j, w in enumerate(widths)
        ]
    allgather_sizes(group, payload_bytes)

    return _replicate(np.ascontiguousarray(final), n)


# ----------------------------------------------------------------------
# Ring kernels
# ----------------------------------------------------------------------
def _ring_reduce_scatter_rounds(
    group: CommGroup, bounds: Sequence[tuple[int, int]]
) -> None:
    """The n-1 reduce-scatter stub rounds (shared by both data paths)."""
    n = group.size
    ranks = group.ranks
    transport = group.transport
    for r in range(n - 1):
        sends = []
        for i in range(n):
            chunk = (i - r) % n
            lo, hi = bounds[chunk]
            sends.append(
                (
                    ranks[i],
                    ranks[(i + 1) % n],
                    _HEADER_BYTES + _F64_BYTES * (hi - lo),
                    f"rs.r{r}.c{chunk}",
                )
            )
        transport.exchange_sized(sends)


def _ring_all_gather_rounds(
    group: CommGroup, bounds: Sequence[tuple[int, int]], owners: Sequence[int]
) -> None:
    """The n-1 all-gather stub rounds (shared by both data paths)."""
    n = group.size
    ranks = group.ranks
    transport = group.transport
    for r in range(n - 1):
        sends = []
        for i in range(n):
            chunk_id = owners[(i - r) % n]
            lo, hi = bounds[chunk_id]
            sends.append(
                (
                    ranks[i],
                    ranks[(i + 1) % n],
                    _HEADER_BYTES + _F64_BYTES * (hi - lo),
                    f"ag.r{r}.c{chunk_id}",
                )
            )
        transport.exchange_sized(sends)


def ring_reduce_scatter_batched(
    arrays: Sequence[np.ndarray], group: CommGroup
) -> list[np.ndarray]:
    """World-batched ring reduce-scatter; member i returns chunk ``(i+1) % n``.

    The ring's accumulation visits chunk c's rows in the order
    ``c, c+1, ..., c+n-1 (mod n)``; each step adds exactly one row, so the
    loop's ``received += own`` order equals this left fold by commutativity
    of a single IEEE add.
    """
    check_arrays(arrays, group)
    n = group.size
    total = arrays[0].shape[0]
    if n == 1:
        return [np.asarray(arrays[0], dtype=np.float64).copy()]
    bounds = chunk_bounds(total, n)
    matrix = _stack_f64(arrays)
    _ring_reduce_scatter_rounds(group, bounds)
    out = []
    for i in range(n):
        chunk = (i + 1) % n
        lo, hi = bounds[chunk]
        # Explicit sequential fold in ring order: bitwise equal to the
        # loop's per-round ``received += own`` chain (single IEEE adds are
        # commutative), and safe for width-1 chunks where an ``add.reduce``
        # over fancy-indexed rows would switch to pairwise summation.
        acc = matrix[chunk, lo:hi].copy()
        for t in range(1, n):
            acc += matrix[(chunk + t) % n, lo:hi]
        out.append(acc)
    return out


def ring_all_gather_chunks_batched(
    chunks: Sequence[np.ndarray], owners: Sequence[int], group: CommGroup, total: int
) -> list[np.ndarray]:
    """World-batched ring all-gather of per-member chunks into full arrays."""
    n = group.size
    bounds = chunk_bounds(total, n)
    full = np.zeros(total)
    for i in range(n):
        lo, hi = bounds[owners[i]]
        full[lo:hi] = chunks[i]
    _ring_all_gather_rounds(group, bounds, owners)
    return _replicate(full, n)


def ring_allreduce_batched(
    arrays: Sequence[np.ndarray], group: CommGroup
) -> list[np.ndarray]:
    """World-batched two-phase ring allreduce (sum)."""
    check_arrays(arrays, group)
    n = group.size
    if n == 1:
        return [np.asarray(arrays[0], dtype=np.float64).copy()]
    total = arrays[0].shape[0]
    owners = [(i + 1) % n for i in range(n)]
    if resolve_pool_ref(group.transport):
        refs = group.transport.backend.resolve_pool_refs(arrays, group.ranks)
        if refs is not None:
            # Pool-ref fast path: member i's executor reduces its ring chunk
            # ``(i+1) % n`` in place across all segments, folding rows in the
            # ring's arrival order ``c, c+1, ..., c+n-1 (mod n)`` (no ``+
            # 0.0`` — the ring fold never normalizes), then writes every
            # member's slice — the all-gather phase collapsed into the same
            # disjoint-chunk write.  Stub rounds are identical to the
            # byte-moving two-phase path below.
            bounds = chunk_bounds(total, n)
            chunks = []
            for i in range(n):
                c = owners[i]
                lo, hi = bounds[c]
                chunks.append((lo, hi, tuple((c + t) % n for t in range(n))))
            _ring_reduce_scatter_rounds(group, bounds)
            group.transport.backend.pool_ref_reduce(refs, chunks, add_zero=False)
            _ring_all_gather_rounds(group, bounds, owners)
            return list(arrays)
    reduced = ring_reduce_scatter_batched(arrays, group)
    return ring_all_gather_chunks_batched(reduced, owners, group, total)


# ----------------------------------------------------------------------
# Decentralized gossip averaging
# ----------------------------------------------------------------------
def gossip_average_batched(
    arrays: Sequence[np.ndarray],
    neighbor_sets: Sequence[Sequence[int]],
    group: CommGroup,
    codec: Compressor | None = None,
) -> list[np.ndarray]:
    """World-batched peer averaging for D_FP_S / D_LP_S.

    ``codec=None`` exchanges full-precision tensors; with a codec every
    member's tensor is roundtripped (members compress in index order even
    when idle, matching the loop's RNG consumption) and neighbors average
    the decompressed values.  Results keep each input's dtype.
    """
    n = group.size
    total = arrays[0].shape[0]
    if codec is None:
        # Gossip is communication-sparse (a handful of neighbors per member),
        # so a (world, n) stack would be pure overhead here — the fast path
        # is the stub round; accumulation reads the original input rows
        # directly (ufunc upcasting makes ``acc += arrays[src]`` bitwise
        # equal to adding the f64 cast the loop receives).
        contrib: Sequence[np.ndarray] = arrays
        payload_bytes = [_HEADER_BYTES + _F64_BYTES * total] * n
    else:
        matrix = _stack_f64(arrays)
        contrib = codec.batch_roundtrip(matrix, ((0, total),))
        payload_bytes = [_HEADER_BYTES + codec.wire_bytes(total)] * n
    ranks = group.ranks
    sends = [
        (ranks[i], ranks[j], payload_bytes[i], f"gossip.m{i}->{j}")
        for i, neigh in enumerate(neighbor_sets)
        for j in neigh
    ]
    if sends:
        group.transport.exchange_sized(sends)
    incoming: list[list[int]] = [[] for _ in range(n)]
    for j, neigh in enumerate(neighbor_sets):
        for i in neigh:
            incoming[i].append(j)
    results = []
    for i in range(n):
        sources = sorted(incoming[i])
        acc = arrays[i].astype(np.float64) if codec is None else matrix[i].copy()
        for src in sources:
            acc += contrib[src]
        results.append((acc / (1 + len(sources))).astype(arrays[i].dtype, copy=False))
    return results
