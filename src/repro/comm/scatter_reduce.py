"""The ScatterReduce communication pattern (paper §3.3).

BAGUA runs its centralized primitives with ScatterReduce rather than ring
allreduce because, unlike a ring, it exposes two well-defined aggregation
points where lossy compression can be applied:

1. every worker partitions its tensor into ``n`` chunks and sends chunk ``j``
   to worker ``j`` (compressing each outgoing chunk — *phase 1*);
2. worker ``j`` decompresses and merges all received chunks for partition
   ``j``, then sends the merged chunk to everyone (compressing once —
   *phase 2*);
3. every worker decompresses the ``n`` merged chunks it receives and
   concatenates them into the aggregated tensor.

With identity compression this computes an exact sum using the aggregate
bandwidth of all workers, like allreduce.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from .chunking import check_arrays, chunk_bounds
from .collectives import allgather_payloads, alltoall
from .fastpath import resolve_fast_path
from .group import CommGroup

# A compressor maps (chunk, member_index, chunk_index) -> payload; the matching
# decompressor inverts it.  Indices let stateful wrappers (error feedback)
# address their per-partition state.
CompressFn = Callable[[np.ndarray, int, int], object]
DecompressFn = Callable[[object], np.ndarray]


def _identity_compress(chunk: np.ndarray, _member: int, _chunk_id: int) -> np.ndarray:
    return chunk.copy()


def _identity_decompress(payload: object) -> np.ndarray:
    return np.asarray(payload)


def scatter_reduce(
    arrays: Sequence[np.ndarray],
    group: CommGroup,
    compress_phase1: CompressFn | None = None,
    decompress_phase1: DecompressFn | None = None,
    compress_phase2: CompressFn | None = None,
    decompress_phase2: DecompressFn | None = None,
    fast_path: bool | None = None,
) -> list[np.ndarray]:
    """Aggregate (sum) per-member arrays with the ScatterReduce pattern.

    Phase hooks default to identity (exact C_FP_S).  Phase-1 compression is
    applied per outgoing chunk at its source member; phase-2 compression is
    applied once per merged partition at its owner.  Returns the aggregated
    array each member ends up with (identical across members only when the
    compressors are deterministic or identity).

    With all hooks at their identity defaults the call routes to the
    world-batched kernel (bitwise-identical results and transport state);
    custom hooks always take the loop path, since arbitrary callables cannot
    be batched.  Codec-driven compression goes through
    :func:`repro.comm.batched.scatter_reduce_batched` via ``c_lp_s``.
    """
    hooks_default = (
        compress_phase1 is None
        and decompress_phase1 is None
        and compress_phase2 is None
        and decompress_phase2 is None
    )
    if hooks_default and group.size > 1 and resolve_fast_path(fast_path, group.transport):
        from .batched import scatter_reduce_batched

        return scatter_reduce_batched(arrays, group)
    check_arrays(arrays, group)
    n = group.size
    c1 = compress_phase1 or _identity_compress
    d1 = decompress_phase1 or _identity_decompress
    c2 = compress_phase2 or _identity_compress
    d2 = decompress_phase2 or _identity_decompress

    total = arrays[0].shape[0]
    bounds = chunk_bounds(total, n)

    if n == 1:
        # copy=False: the identity phase-1 hook already copies, and custom
        # hooks never mutate their input — the extra eager copy was waste.
        merged = d2(c2(d1(c1(arrays[0].astype(np.float64, copy=False), 0, 0)), 0, 0))
        return [merged]

    # Phase 1: all-to-all of compressed chunks (one message round).
    parts: list[list[object]] = []
    for i in range(n):
        row = []
        for j, (lo, hi) in enumerate(bounds):
            row.append(c1(arrays[i][lo:hi].astype(np.float64, copy=False), i, j))
        parts.append(row)
    received = alltoall(parts, group)

    # Merge: member j sums the decompressed chunks of partition j.
    merged: list[np.ndarray] = []
    for j in range(n):
        acc = np.zeros(bounds[j][1] - bounds[j][0])
        for i in range(n):
            acc += d1(received[j][i])
        merged.append(acc)

    # Phase 2: broadcast each merged partition to all members (one round).
    compressed_merged = [c2(merged[j], j, j) for j in range(n)]
    gathered = allgather_payloads(compressed_merged, group)

    results: list[np.ndarray] = []
    for i in range(n):
        out = np.empty(total)
        for j, (lo, hi) in enumerate(bounds):
            out[lo:hi] = d2(gathered[i][j])
        results.append(out)
    return results
