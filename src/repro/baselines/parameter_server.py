"""Sharded parameter-server substrate (the PS half of Figure 1).

The model is partitioned into one shard per server; servers live on distinct
nodes (rank 0 of each node doubles as the server host, mirroring co-located
BytePS deployments).  Workers ``push`` gradient shards which the server
aggregates — optionally applying a server-side optimizer state, the thing the
paper notes plain put/get PS abstractions struggle to express — and ``pull``
fresh parameter shards.  All traffic moves through the simulated transport,
so PS byte counts and times are directly comparable with collectives.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..cluster.transport import Message, Transport
from ..comm.collectives import _chunk_bounds
from ..comm.group import CommGroup


class ShardedParameterServer:
    """Parameter shards distributed over one server per node."""

    def __init__(self, group: CommGroup, initial: np.ndarray) -> None:
        self.group = group
        self.server_ranks = [sub.ranks[0] for sub in group.node_subgroups()]
        self.num_shards = len(self.server_ranks)
        self._bounds = _chunk_bounds(initial.shape[0], self.num_shards)
        self.total_elements = initial.shape[0]
        # shard index -> parameter slice held by that server
        self.shards: list[np.ndarray] = [
            initial[lo:hi].astype(np.float64, copy=True) for lo, hi in self._bounds
        ]
        # Arbitrary per-shard server state (error compensation, momentum, ...)
        self.server_state: list[dict] = [{} for _ in range(self.num_shards)]

    @property
    def transport(self) -> Transport:
        return self.group.transport

    def parameters(self) -> np.ndarray:
        """Current full parameter vector (concatenated shards)."""
        return np.concatenate(self.shards)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def _shard_messages(self, src: int, payload_per_shard: Sequence) -> list[Message]:
        return [
            Message(src, server, payload)
            for server, payload in zip(self.server_ranks, payload_per_shard)
            if server != src
        ]

    def push_gradients(
        self,
        worker_rank: int,
        gradient: np.ndarray,
        apply_fn: Callable[[int, np.ndarray, dict], None] | None = None,
    ) -> None:
        """Send ``gradient`` sharded to the servers and apply it.

        ``apply_fn(shard_index, grad_shard, server_state)`` customizes the
        server-side update (defaults to accumulating into ``state['acc']``).
        """
        if gradient.shape[0] != self.total_elements:
            raise ValueError(
                f"gradient has {gradient.shape[0]} elements, server holds {self.total_elements}"
            )
        shards = [gradient[lo:hi] for lo, hi in self._bounds]
        messages = self._shard_messages(worker_rank, shards)
        if messages:
            self.transport.exchange(messages)
        for shard_index, grad_shard in enumerate(shards):
            state = self.server_state[shard_index]
            if apply_fn is not None:
                apply_fn(shard_index, grad_shard, state)
            else:
                if "acc" not in state:
                    state["acc"] = np.zeros_like(self.shards[shard_index])
                state["acc"] += grad_shard

    def apply_accumulated(self, update_fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
        """Fold accumulated gradients into the shards and clear accumulators.

        ``update_fn(params, grad_sum) -> new_params`` runs per shard.
        """
        for shard_index, shard in enumerate(self.shards):
            state = self.server_state[shard_index]
            acc = state.pop("acc", None)
            if acc is not None:
                self.shards[shard_index] = update_fn(shard, acc)

    def pull_parameters(self, worker_rank: int) -> np.ndarray:
        """Fetch the full parameter vector to ``worker_rank``."""
        messages = [
            Message(server, worker_rank, self.shards[i])
            for i, server in enumerate(self.server_ranks)
            if server != worker_rank
        ]
        if messages:
            self.transport.exchange(messages)
        return self.parameters()
