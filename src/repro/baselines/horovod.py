"""Horovod baseline (Sergeev & Del Balso, 2018; paper ref [24]).

System strategy: a background coordinator fuses ready tensors into a ~64 MB
fusion buffer each cycle and ring-allreduces the buffer.  The paper also
compares against "Horovod 16bits" — fp16 gradient compression through NCCL —
which this class reproduces by casting gradients to half precision before
the allreduce (summation happens on the decompressed values, as NCCL's fp16
path effectively does, so convergence is indistinguishable in practice).
"""

from __future__ import annotations

from ..comm.collectives import ring_allreduce
from ..compression.fp16 import FP16Compressor
from ..core.engine import Algorithm, BaguaEngine


class Horovod(Algorithm):
    # Fusion-buffer allreduces overlap backward; one optimizer step after.
    update_mode = "barrier"

    def __init__(self, fp16: bool = False) -> None:
        self.fp16 = fp16
        self.name = "horovod-16bit" if fp16 else "horovod"
        self._codec = FP16Compressor() if fp16 else None

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        n = engine.world_size
        grads = engine.grads_of_bucket(k)
        if self._codec is not None:
            grads = [self._codec.decompress(self._codec.compress(g)) for g in grads]
        summed = ring_allreduce(grads, engine.group)
        engine.set_grads_of_bucket(k, [s / n for s in summed])

    def on_step_end(self, engine: BaguaEngine, step: int) -> None:
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()
