"""PyTorch-DDP baseline (Li et al., VLDB 2020; paper ref [30]).

System strategy: gradients are grouped into ~25 MB buckets in reverse
registration order, each bucket is ring-allreduced as soon as its gradients
are ready (overlapping with the rest of backward), and the optimizer steps
once after all allreduces complete.  Functionally this is exact gradient
averaging — identical convergence to BAGUA's Allreduce algorithm, which is
Figure 5's observation; the differences are purely in the timing profile
(:func:`repro.simulation.systems.pytorch_ddp_system`).
"""

from __future__ import annotations

from ..comm.collectives import ring_allreduce
from ..core.engine import Algorithm, BaguaEngine


class PyTorchDDP(Algorithm):
    name = "pytorch-ddp"
    # Buckets allreduce in ready order (overlapping backward), but the
    # optimizer steps once after all communication — DDP semantics.
    update_mode = "barrier"

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        n = engine.world_size
        grads = engine.grads_of_bucket(k)
        summed = ring_allreduce(grads, engine.group)
        engine.set_grads_of_bucket(k, [s / n for s in summed])

    def on_step_end(self, engine: BaguaEngine, step: int) -> None:
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()
