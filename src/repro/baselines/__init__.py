"""Re-implementations of the competing systems' strategies.

Functional-mode algorithms here produce the convergence lines of Figure 5;
their timing profiles live in :mod:`repro.simulation.systems`.
"""

from .byteps import BytePS
from .horovod import Horovod
from .parameter_server import ShardedParameterServer
from .pytorch_ddp import PyTorchDDP
from .vanilla import VanillaDPSG

BASELINE_REGISTRY = {
    "vanilla": VanillaDPSG,
    "pytorch-ddp": PyTorchDDP,
    "horovod": Horovod,
    "byteps": BytePS,
}

__all__ = [
    "VanillaDPSG",
    "PyTorchDDP",
    "Horovod",
    "BytePS",
    "ShardedParameterServer",
    "BASELINE_REGISTRY",
]
