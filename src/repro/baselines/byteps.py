"""BytePS baseline (Jiang et al., OSDI 2020; paper ref [29]).

System strategy: parameters are partitioned into equal chunks spread over
parameter servers (one per node here); workers push gradient chunks as they
become ready and pull updated chunks, with a priority scheduler that favours
chunks blocking the next forward pass.  Synchronous mode aggregates all
workers' pushes before the pull; asynchronous mode applies each worker's
push to the server state immediately (the paper's Table 1 credits BytePS
with async centralized full-precision support).

Functionally, sync BytePS is exact gradient averaging — same convergence as
allreduce; async BytePS exhibits bounded staleness like
:class:`~repro.algorithms.async_sgd.AsyncSGD`.
"""

from __future__ import annotations


import numpy as np

from ..core.engine import Algorithm, BaguaEngine
from .parameter_server import ShardedParameterServer


class BytePS(Algorithm):
    def __init__(self, asynchronous: bool = False, lr: float | None = None) -> None:
        self.asynchronous = asynchronous
        self.name = "byteps-async" if asynchronous else "byteps"
        # Sync mode steps the optimizer once after all pulls (worker-side
        # optimizer, server only aggregates); async applies pushes in place.
        self.update_mode = "per_bucket" if asynchronous else "barrier"
        self.lr = lr

    def setup(self, engine: BaguaEngine) -> None:
        self._servers: list[ShardedParameterServer] = [
            ShardedParameterServer(engine.group, bucket.flat_data())
            for bucket in engine.workers[0].buckets
        ]
        if self.asynchronous and self.lr is None:
            lr = getattr(engine.workers[0].optimizer, "lr", None)
            if lr is None:
                raise ValueError("async BytePS needs lr (optimizer exposes none)")
            # Per-push application: scale by 1/n to keep the per-sample
            # learning rate aligned with synchronous averaging.
            self.lr = float(lr) / engine.world_size

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        if self.asynchronous:
            self._async_bucket(engine, k, step)
        else:
            self._sync_bucket(engine, k)

    def on_step_end(self, engine: BaguaEngine, step: int) -> None:
        if self.asynchronous:
            return
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()
        # Keep server shards in sync with the (identical) worker replicas.
        for k, server in enumerate(self._servers):
            flat = engine.workers[0].buckets[k].flat_data()
            for i, (lo, hi) in enumerate(server._bounds):
                server.shards[i][...] = flat[lo:hi]

    # ------------------------------------------------------------------
    def _sync_bucket(self, engine: BaguaEngine, k: int) -> None:
        n = engine.world_size
        server = self._servers[k]
        for worker in engine.workers:
            server.push_gradients(worker.rank, worker.buckets[k].flat_grad())
        # Server holds the summed gradient; workers pull it and average.
        # (Parameters update on the workers: BytePS keeps the optimizer
        # worker-side in its default configuration.)
        grads = [shard_state.pop("acc") for shard_state in server.server_state]
        full = np.concatenate(grads) / n
        for worker in engine.workers:
            server.pull_parameters(worker.rank)  # traffic accounting
            worker.buckets[k].set_flat_grad(full)

    def _async_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        n = engine.world_size
        server = self._servers[k]
        order = [(step + i) % n for i in range(n)]
        for i in order:
            worker = engine.workers[i]
            grad = worker.buckets[k].flat_grad()

            def apply_now(shard_index: int, grad_shard: np.ndarray, _state: dict) -> None:
                server.shards[shard_index] -= self.lr * grad_shard

            server.push_gradients(worker.rank, grad, apply_fn=apply_now)
            worker.buckets[k].set_flat_data(server.pull_parameters(worker.rank))
