"""BytePS baseline (Jiang et al., OSDI 2020; paper ref [29]).

System strategy: parameters are partitioned into equal chunks spread over
parameter servers (one per node here); workers push gradient chunks as they
become ready and pull updated chunks, with a priority scheduler that favours
chunks blocking the next forward pass.  Synchronous mode aggregates all
workers' pushes before the pull; asynchronous mode applies each worker's
push to the server state immediately (the paper's Table 1 credits BytePS
with async centralized full-precision support).

Functionally, sync BytePS is exact gradient averaging — same convergence as
allreduce; async BytePS exhibits bounded staleness like
:class:`~repro.algorithms.async_sgd.AsyncSGD`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.engine import Algorithm, BaguaEngine
from .parameter_server import ShardedParameterServer


class BytePS(Algorithm):
    def __init__(self, asynchronous: bool = False, lr: float | None = None) -> None:
        self.asynchronous = asynchronous
        self.name = "byteps-async" if asynchronous else "byteps"
        self.lr = lr

    def setup(self, engine: BaguaEngine) -> None:
        self._servers: List[ShardedParameterServer] = [
            ShardedParameterServer(engine.group, bucket.flat_data())
            for bucket in engine.workers[0].buckets
        ]
        if self.asynchronous and self.lr is None:
            lr = getattr(engine.workers[0].optimizer, "lr", None)
            if lr is None:
                raise ValueError("async BytePS needs lr (optimizer exposes none)")
            # Per-push application: scale by 1/n to keep the per-sample
            # learning rate aligned with synchronous averaging.
            self.lr = float(lr) / engine.world_size

    def on_backward_done(self, engine: BaguaEngine, step: int) -> None:
        if self.asynchronous:
            self._async_step(engine, step)
        else:
            self._sync_step(engine)

    # ------------------------------------------------------------------
    def _sync_step(self, engine: BaguaEngine) -> None:
        n = engine.world_size
        for k, server in enumerate(self._servers):
            for worker in engine.workers:
                server.push_gradients(worker.rank, worker.buckets[k].flat_grad())
            # Server holds the summed gradient; workers pull it and average.
            # (Parameters update on the workers: BytePS keeps the optimizer
            # worker-side in its default configuration.)
            grads = [shard_state.pop("acc") for shard_state in server.server_state]
            full = np.concatenate(grads) / n
            for worker in engine.workers:
                server.pull_parameters(worker.rank)  # traffic accounting
                worker.buckets[k].set_flat_grad(full)
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()
        # Keep server shards in sync with the (identical) worker replicas.
        for k, server in enumerate(self._servers):
            flat = engine.workers[0].buckets[k].flat_data()
            for i, (lo, hi) in enumerate(server._bounds):
                server.shards[i][...] = flat[lo:hi]

    def _async_step(self, engine: BaguaEngine, step: int) -> None:
        n = engine.world_size
        order = [(step + i) % n for i in range(n)]
        for i in order:
            worker = engine.workers[i]
            for k, server in enumerate(self._servers):
                grad = worker.buckets[k].flat_grad()

                def apply_now(shard_index: int, grad_shard: np.ndarray, _state: dict) -> None:
                    server.shards[shard_index] -= self.lr * grad_shard

                server.push_gradients(worker.rank, grad, apply_fn=apply_now)
                worker.buckets[k].set_flat_data(server.pull_parameters(worker.rank))
