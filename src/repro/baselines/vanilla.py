"""Vanilla DP-SG (Figure 2, "Vanilla"): per-tensor allreduce, no overlap.

Numerically identical to synchronous allreduce SGD; its role is the timing
baseline every optimized system improves on.  In functional mode it runs
ring allreduce per parameter tensor, which also exercises the unfused code
path end to end.
"""

from __future__ import annotations

from ..comm.collectives import ring_allreduce
from ..core.engine import Algorithm, BaguaEngine


class VanillaDPSG(Algorithm):
    name = "vanilla"
    # One optimizer step after all communication — the unoptimized baseline.
    update_mode = "barrier"

    def comm_bucket(self, engine: BaguaEngine, k: int, step: int) -> None:
        n = engine.world_size
        grads = engine.grads_of_bucket(k)
        summed = ring_allreduce(grads, engine.group)
        engine.set_grads_of_bucket(k, [s / n for s in summed])

    def on_step_end(self, engine: BaguaEngine, step: int) -> None:
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()
