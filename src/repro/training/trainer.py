"""Lock-step multi-worker training driver (functional mode).

Assembles the simulated cluster, identical model replicas, per-worker
optimizers and data shards, wraps them in a
:class:`~repro.core.engine.BaguaEngine`, and runs epochs while recording
convergence.  Baseline systems (:mod:`repro.baselines`) plug in through the
same interface, so Figure 5's system comparison shares this driver.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..cluster.topology import ClusterSpec
from ..cluster.transport import Transport
from ..cluster.worker import WorkerContext, make_workers
from ..core.engine import Algorithm, BaguaEngine, LossFn
from ..core.optimizer_framework import BaguaConfig
from ..data.loader import ShardedLoader
from ..data.synthetic import Dataset
from ..tensor.module import Module
from ..tensor.optim import Optimizer
from .metrics import ConvergenceRecord

ModelFactory = Callable[[np.random.Generator], Module]
OptimizerFactory = Callable[[Module], Optimizer]


class DistributedTrainer:
    """Builds and runs one distributed training job on the simulated cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        model_factory: ModelFactory,
        optimizer_factory: OptimizerFactory,
        algorithm: Algorithm,
        config: BaguaConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.transport = Transport(
            spec, backend=config.backend if config is not None else None
        )
        self.workers: list[WorkerContext] = make_workers(spec, self.transport, seed=seed)
        # All replicas initialize from the SAME rng seed — a hard requirement
        # of data-parallel training (the engine verifies it).
        models = [model_factory(np.random.default_rng(seed)) for _ in self.workers]
        optimizers = [optimizer_factory(m) for m in models]
        self.engine = BaguaEngine(
            models, optimizers, algorithm, self.workers, config=config
        )
        self.algorithm = algorithm
        self.seed = seed

    @property
    def world_size(self) -> int:
        return self.spec.world_size

    def train(
        self,
        loaders: Sequence[ShardedLoader],
        loss_fn: LossFn,
        epochs: int,
        label: str = "",
        eval_fn: Callable[[Module], float] | None = None,
        max_loss: float = 1e6,
    ) -> ConvergenceRecord:
        """Run ``epochs`` epochs; returns the convergence record.

        Training stops early if the loss explodes past ``max_loss`` or goes
        non-finite (the record is marked diverged) — this is how Figure 6's
        "1-bit Adam diverges on VGG16" behaviour is captured rather than
        crashing the sweep.
        """
        if len(loaders) != self.world_size:
            raise ValueError(f"need {self.world_size} loaders, got {len(loaders)}")
        record = ConvergenceRecord(label=label or self.algorithm.name)
        for _epoch in range(epochs):
            losses = []
            for batches in zip(*[loader.epoch() for loader in loaders]):
                loss = self.engine.step(list(batches), loss_fn)
                losses.append(loss)
                if not np.isfinite(loss) or abs(loss) > max_loss:
                    record.record_epoch(loss)
                    record.diverged = True
                    return record
            accuracy = eval_fn(self.engine.workers[0].model) if eval_fn else None
            record.record_epoch(
                float(np.mean(losses)),
                accuracy,
                self.transport.max_time(),
                comm_bytes=self.transport.stats.total_bytes,
            )
            if record.diverged:
                return record
        return record


def make_accuracy_eval(
    dataset: Dataset,
    predict_fn: Callable[[Module, np.ndarray], np.ndarray],
    limit: int = 256,
) -> Callable[[Module], float]:
    """Build an eval closure returning accuracy on (a slice of) ``dataset``."""
    inputs = dataset.inputs[:limit]
    labels = dataset.labels[:limit]

    def evaluate(model: Module) -> float:
        model.eval()
        try:
            predictions = predict_fn(model, inputs)
        finally:
            model.train()
        return float(np.mean(predictions == labels))

    return evaluate
