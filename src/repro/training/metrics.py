"""Training-run records: loss curves, accuracy, simulated communication time."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ConvergenceRecord:
    """Per-epoch metrics of one training run (one line of Figures 5/6)."""

    label: str
    epoch_losses: list[float] = field(default_factory=list)
    epoch_accuracies: list[float] = field(default_factory=list)
    epoch_sim_times: list[float] = field(default_factory=list)
    #: cumulative bytes on the wire at the end of each epoch
    epoch_comm_bytes: list[float] = field(default_factory=list)
    diverged: bool = False

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def best_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return min(self.epoch_losses)

    def record_epoch(
        self,
        loss: float,
        accuracy: float | None = None,
        sim_time: float | None = None,
        comm_bytes: float | None = None,
    ) -> None:
        self.epoch_losses.append(float(loss))
        if accuracy is not None:
            self.epoch_accuracies.append(float(accuracy))
        if sim_time is not None:
            self.epoch_sim_times.append(float(sim_time))
        if comm_bytes is not None:
            self.epoch_comm_bytes.append(float(comm_bytes))
        if not np.isfinite(loss) or loss > 1e6:
            self.diverged = True

    def bytes_in_epoch(self, epoch_index: int) -> float:
        """Bytes moved during one epoch (difference of cumulative counters)."""
        if not 0 <= epoch_index < len(self.epoch_comm_bytes):
            raise IndexError(f"no byte record for epoch {epoch_index}")
        if epoch_index == 0:
            return self.epoch_comm_bytes[0]
        return self.epoch_comm_bytes[epoch_index] - self.epoch_comm_bytes[epoch_index - 1]

    def summary(self) -> str:
        status = "DIVERGED" if self.diverged else f"final_loss={self.final_loss:.4f}"
        acc = f" acc={self.epoch_accuracies[-1]:.3f}" if self.epoch_accuracies else ""
        return f"{self.label}: epochs={len(self.epoch_losses)} {status}{acc}"


def epochs_to_reach(record: ConvergenceRecord, loss_target: float) -> int | None:
    """First epoch (1-based) whose loss is at or below ``loss_target``."""
    for epoch, loss in enumerate(record.epoch_losses, start=1):
        if loss <= loss_target:
            return epoch
    return None
