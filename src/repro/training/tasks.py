"""Task bundles: dataset + proxy model + loss + hyperparameters per paper task.

Each of the paper's five evaluation tasks maps to a :class:`Task` pairing a
synthetic dataset with the matching proxy architecture and the loss/optimizer
settings used in the convergence experiments (Figures 5 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from ..data.loader import ShardedLoader, make_sharded_loaders
from ..data.synthetic import (
    Dataset,
    make_image_classification,
    make_multimodal,
    make_sequence_regression_tokens,
    make_token_classification,
)
from ..models.trainable import (
    LSTMAlexNetProxy,
    TransformerProxy,
    VGGProxy,
    bert_base_proxy,
    bert_large_proxy,
)
from ..tensor import functional as F
from ..tensor.module import Module
from ..tensor.optim import SGD, Optimizer
from ..tensor.tensor import Tensor


@dataclass
class Task:
    """One evaluation task: data, model family, loss and defaults."""

    name: str
    model_factory: Callable[[np.random.Generator], Module]
    dataset_factory: Callable[[int], Dataset]
    lr: float
    batch_size: int
    #: aligned auxiliary array for multimodal tasks (tokens), else None
    extra_factory: Callable[[int], np.ndarray] | None = None

    def make_loaders(self, world_size: int, seed: int = 0) -> list[ShardedLoader]:
        dataset = self.dataset_factory(seed)
        extra = self.extra_factory(seed) if self.extra_factory else None
        return make_sharded_loaders(
            dataset, world_size, self.batch_size, seed=seed, extra=extra
        )

    def make_optimizer(self, model: Module) -> Optimizer:
        return SGD(model.parameters(), lr=self.lr, momentum=0.9)

    def loss_fn(self, model: Module, batch) -> Tensor:
        inputs, labels = batch
        logits = model(inputs)
        return F.cross_entropy(logits, labels)

    def predict(self, model: Module, inputs) -> np.ndarray:
        return model(inputs).data.argmax(axis=-1)


def _vgg_task() -> Task:
    return Task(
        name="VGG16",
        model_factory=lambda rng: VGGProxy(rng=rng),
        dataset_factory=lambda seed: make_image_classification(n=512, seed=seed),
        lr=0.05,
        batch_size=16,
    )


def _bert_large_task() -> Task:
    return Task(
        name="BERT-LARGE",
        model_factory=lambda rng: bert_large_proxy(rng=rng),
        dataset_factory=lambda seed: make_token_classification(n=512, seed=seed),
        lr=0.015,  # the deep proxy is step-size sensitive, like its namesake
        batch_size=16,
    )


def _bert_base_task() -> Task:
    return Task(
        name="BERT-BASE",
        model_factory=lambda rng: bert_base_proxy(rng=rng),
        dataset_factory=lambda seed: make_token_classification(n=512, seed=seed + 1),
        lr=0.05,
        batch_size=16,
    )


def _transformer_task() -> Task:
    return Task(
        name="Transformer",
        model_factory=lambda rng: TransformerProxy(rng=rng),
        dataset_factory=lambda seed: make_sequence_regression_tokens(n=512, seed=seed),
        lr=0.05,
        batch_size=16,
    )


def _lstm_alexnet_task() -> Task:
    def dataset_factory(seed: int) -> Dataset:
        dataset, _tokens = make_multimodal(n=512, seed=seed)
        return dataset

    def extra_factory(seed: int) -> np.ndarray:
        _dataset, tokens = make_multimodal(n=512, seed=seed)
        return tokens

    return Task(
        name="LSTM+AlexNet",
        model_factory=lambda rng: LSTMAlexNetProxy(rng=rng),
        dataset_factory=dataset_factory,
        lr=0.05,
        batch_size=16,
        extra_factory=extra_factory,
    )


def all_tasks() -> list[Task]:
    """The five evaluation tasks in the paper's order."""
    return [
        _vgg_task(),
        _bert_large_task(),
        _bert_base_task(),
        _transformer_task(),
        _lstm_alexnet_task(),
    ]


def get_task(name: str) -> Task:
    for task in all_tasks():
        if task.name == name:
            return task
    raise KeyError(f"unknown task {name!r}; options: {[t.name for t in all_tasks()]}")
