"""Functional-mode training: trainer, metrics, task bundles."""

from .metrics import ConvergenceRecord, epochs_to_reach
from .tasks import Task, all_tasks, get_task
from .trainer import DistributedTrainer, make_accuracy_eval

__all__ = [
    "DistributedTrainer",
    "make_accuracy_eval",
    "ConvergenceRecord",
    "epochs_to_reach",
    "Task",
    "all_tasks",
    "get_task",
]
