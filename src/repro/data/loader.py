"""Sharded data loading for data-parallel training.

Each worker iterates only over its shard, as in the paper's data-parallel
setting where "the data set is partitioned across different workers".
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .synthetic import Dataset

Batch = tuple[np.ndarray, np.ndarray]


def shard_indices(n: int, world_size: int, rank: int) -> np.ndarray:
    """Contiguous shard of ``range(n)`` for ``rank`` (drops nothing)."""
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range for world size {world_size}")
    return np.arange(n)[rank::world_size]


class ShardedLoader:
    """Deterministic per-worker mini-batch stream over a shared dataset."""

    def __init__(
        self,
        dataset: Dataset,
        world_size: int,
        rank: int,
        batch_size: int,
        seed: int = 0,
        extra: np.ndarray | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.extra = extra
        self.indices = shard_indices(len(dataset), world_size, rank)
        if len(self.indices) < batch_size:
            raise ValueError(
                f"shard of {len(self.indices)} examples cannot fill batches of {batch_size}"
            )
        self.batch_size = batch_size
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))

    def batches_per_epoch(self) -> int:
        return len(self.indices) // self.batch_size

    def epoch(self) -> Iterator[Batch]:
        """Yield shuffled mini-batches covering this worker's shard once."""
        order = self.rng.permutation(self.indices)
        usable = self.batches_per_epoch() * self.batch_size
        for start in range(0, usable, self.batch_size):
            chosen = order[start : start + self.batch_size]
            inputs = self.dataset.inputs[chosen]
            labels = self.dataset.labels[chosen]
            if self.extra is not None:
                yield ((inputs, self.extra[chosen]), labels)
            else:
                yield (inputs, labels)


def make_sharded_loaders(
    dataset: Dataset,
    world_size: int,
    batch_size: int,
    seed: int = 0,
    extra: np.ndarray | None = None,
) -> list[ShardedLoader]:
    """One loader per rank over the same dataset."""
    return [
        ShardedLoader(dataset, world_size, rank, batch_size, seed=seed, extra=extra)
        for rank in range(world_size)
    ]
