"""Synthetic datasets substituting the paper's corpora.

The paper trains on ImageNet, SQuAD, AISHELL-2 and proprietary Kwai data;
none are usable here, and the convergence experiments only need a non-trivial
learnable objective per task family.  Each generator produces a deterministic
dataset with planted structure (a random teacher model or separable
clusters), so losses genuinely decrease and algorithms differ realistically
in how fast they do so.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Dataset:
    """An in-memory dataset of (inputs, integer labels)."""

    inputs: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.labels):
            raise ValueError(
                f"inputs ({len(self.inputs)}) and labels ({len(self.labels)}) differ in length"
            )

    def __len__(self) -> int:
        return len(self.inputs)


def make_image_classification(
    n: int = 512,
    channels: int = 3,
    size: int = 16,
    num_classes: int = 10,
    noise: float = 0.3,
    seed: int = 0,
) -> Dataset:
    """Images with class-dependent spatial templates plus Gaussian noise.

    Stand-in for ImageNet: each class has a random template image; samples
    are noisy copies — learnable by conv nets, not linearly trivial.
    """
    rng = np.random.default_rng(seed)
    templates = rng.standard_normal((num_classes, channels, size, size))
    labels = rng.integers(0, num_classes, size=n)
    inputs = templates[labels] + noise * rng.standard_normal((n, channels, size, size))
    return Dataset(inputs=inputs, labels=labels, num_classes=num_classes)


def make_token_classification(
    n: int = 512,
    vocab: int = 64,
    seq_len: int = 16,
    num_classes: int = 4,
    seed: int = 0,
) -> Dataset:
    """Token sequences whose label depends on planted marker tokens.

    Stand-in for SQuAD/Kwai text: the label is determined by which marker
    token appears in the sequence, so attention/recurrent models must learn
    content-based aggregation.
    """
    rng = np.random.default_rng(seed)
    markers = rng.choice(vocab, size=num_classes, replace=False)
    labels = rng.integers(0, num_classes, size=n)
    inputs = rng.integers(0, vocab, size=(n, seq_len))
    positions = rng.integers(0, seq_len, size=n)
    # Remove stray markers, then plant the label's marker at one position.
    for marker in markers:
        inputs[inputs == marker] = (marker + num_classes + 1) % vocab
    inputs[np.arange(n), positions] = markers[labels]
    return Dataset(inputs=inputs, labels=labels, num_classes=num_classes)


def make_sequence_regression_tokens(
    n: int = 512,
    vocab: int = 64,
    seq_len: int = 12,
    num_classes: int = 4,
    seed: int = 0,
) -> Dataset:
    """Sequences labeled by the majority class of their planted markers —
    a harder order-sensitive variant used by the Transformer task."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=n)
    inputs = rng.integers(num_classes, vocab, size=(n, seq_len))
    # Plant the label token at 3 random positions.
    for i in range(n):
        positions = rng.choice(seq_len, size=3, replace=False)
        inputs[i, positions] = labels[i]
    return Dataset(inputs=inputs, labels=labels, num_classes=num_classes)


def make_multimodal(
    n: int = 512,
    channels: int = 3,
    size: int = 12,
    vocab: int = 32,
    seq_len: int = 8,
    num_classes: int = 6,
    noise: float = 0.4,
    seed: int = 0,
) -> tuple[Dataset, np.ndarray]:
    """Paired (image, token-sequence) samples sharing one label.

    Stand-in for the Kwai image+text data behind the LSTM+AlexNet task.
    Returns an image Dataset plus the aligned token array; the label is
    recoverable from either modality, rewarding the two-tower model.
    """
    rng = np.random.default_rng(seed)
    templates = rng.standard_normal((num_classes, channels, size, size))
    labels = rng.integers(0, num_classes, size=n)
    images = templates[labels] + noise * rng.standard_normal((n, channels, size, size))
    tokens = rng.integers(num_classes, vocab, size=(n, seq_len))
    positions = rng.integers(0, seq_len, size=n)
    tokens[np.arange(n), positions] = labels
    return Dataset(inputs=images, labels=labels, num_classes=num_classes), tokens
