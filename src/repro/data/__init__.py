"""Synthetic datasets and sharded loaders."""

from .loader import ShardedLoader, make_sharded_loaders, shard_indices
from .synthetic import (
    Dataset,
    make_image_classification,
    make_multimodal,
    make_sequence_regression_tokens,
    make_token_classification,
)

__all__ = [
    "Dataset",
    "make_image_classification",
    "make_token_classification",
    "make_sequence_regression_tokens",
    "make_multimodal",
    "ShardedLoader",
    "make_sharded_loaders",
    "shard_indices",
]
