"""Performance-regression harness for the world-batched fast path.

``python -m repro perf`` times the hot collective and compression kernels
with the loop reference vs the batched fast path, runs one functional-mode
epoch per world size plus the shm round-latency and wire-codec
microbenches, writes ``BENCH.json`` (``--out``; CI suffixes it per
backend), and — with ``--check`` — gates against the committed baseline
(``benchmarks/perf/baseline.json``): a kernel whose geometric-mean
loop/fast speedup falls more than 20 % below the baseline's fails, as does
missing a hard minimum-speedup floor.
"""

from .harness import (
    CALIBRATION_REPEATS,
    MIN_SPEEDUP_FLOORS,
    REGRESSION_THRESHOLD,
    BenchRecord,
    check_against_baseline,
    run_suite,
)

__all__ = [
    "BenchRecord",
    "run_suite",
    "check_against_baseline",
    "REGRESSION_THRESHOLD",
    "MIN_SPEEDUP_FLOORS",
    "CALIBRATION_REPEATS",
]
