"""Benchmark suite: loop reference vs world-batched fast path.

Every benchmark times the *same* computation twice — once through the
per-rank loop kernels (``fast_path=False``) and once through the batched
``(world, n)`` kernels (``fast_path=True``).  The two are bitwise
identical in results, traffic accounting and simulated clocks (enforced
by ``tests/test_fastpath_identity.py``), so the ratio is a pure
wall-clock speedup.

Timing protocol: best-of-``repeats`` wall time (``time.perf_counter``)
around each call; fixed seeds; one transport per (benchmark, world) so
both paths pay the same virtual-clock bookkeeping.  A calibration
workload (python-loop + BLAS mix) is timed alongside so the regression
gate can normalize committed baseline times across machines.
"""

from __future__ import annotations

import gc
import math
import os
import time
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from ..cluster import ClusterSpec, TCP_25G, Transport
from ..comm import CommGroup, chunk_bounds, ring_allreduce, scatter_reduce
from ..compression import (
    OneBitCompressor,
    QSGDCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
)
from ..core.primitives import RingPeers, c_lp_s, d_fp_s

#: Calibrated fast-path time may grow at most this fraction over baseline.
REGRESSION_THRESHOLD = 0.20

#: Hard minimum loop/fast speedups — ``(name, world) -> floor``; the best
#: record across sizes must clear the floor (acceptance criteria of PR 5).
MIN_SPEEDUP_FLOORS: dict[tuple[str, int], float] = {
    ("scatter_reduce", 16): 5.0,
    ("qsgd8", 16): 5.0,
}

#: Floors that only apply on machines with enough cores:
#: ``(name, world) -> (floor, min_cpu_count)``.  The compute-bound epoch
#: benchmark times serial local execution against the shm backend's
#: one-process-per-rank execution, so its ≥1.8x scaling requirement (PR 7
#: acceptance criterion) is only meaningful with ≥4 real cores.
CONDITIONAL_SPEEDUP_FLOORS: dict[tuple[str, int], tuple[float, int]] = {
    ("epoch_compute_bound", 4): (1.8, 4),
    # Iteration-batched flag-word doorbells vs per-round pipe doorbells
    # (PR 9 acceptance criterion): only meaningful when the 4 workers and
    # the parent are not fighting for 2 cores.
    ("shm_round_latency", 4): (3.0, 4),
    # Worker-parallel in-place pool reduction vs the parent executing the
    # same chunk schedule serially (PR 10 acceptance criterion): the four
    # workers fold concurrently, so the floor needs ≥4 real cores.
    ("shm_pool_reduce", 4): (2.0, 4),
}

CALIBRATION_REPEATS = 5

WORLDS_FULL = (4, 16, 64)
WORLDS_QUICK = (4, 16)
SIZES_FULL = (4096, 16384, 65536)
SIZES_QUICK = (4096, 16384)


@dataclass
class BenchRecord:
    """One (kernel, world, size) measurement of both paths."""

    name: str
    world: int
    size: int
    loop_s: float
    fast_s: float

    @property
    def speedup(self) -> float:
        return self.loop_s / self.fast_s if self.fast_s > 0 else math.inf

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "world": self.world,
            "size": self.size,
            "loop_s": self.loop_s,
            "fast_s": self.fast_s,
            "speedup": self.speedup,
        }


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Steady-state best-of-``repeats`` wall time.

    One untimed warmup call first: it populates the one-time caches on both
    paths (pair/NIC-chain lookups, memoized send lists, allocator arenas) so
    short quick-mode runs measure the same steady state as full runs.

    The collector is drained before and disabled across the measured
    region: a cycle collection landing inside one repeat but not another
    is pure timing noise, and best-of cannot fully mask it on the short
    microbenches.
    """
    fn()
    best = math.inf
    gc.collect()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


def _make_group(world: int) -> CommGroup:
    """A fresh simulated cluster: nodes of 4 workers (single node when ≤4)."""
    if world > 4 and world % 4 == 0:
        nodes, per_node = world // 4, 4
    else:
        nodes, per_node = 1, world
    spec = ClusterSpec(num_nodes=nodes, workers_per_node=per_node, inter_node=TCP_25G)
    return CommGroup(Transport(spec), list(range(world)))


def calibrate(repeats: int = CALIBRATION_REPEATS) -> float:
    """Time a fixed python-loop + BLAS workload for machine normalization."""
    rng = np.random.default_rng(1234)
    a = rng.standard_normal((192, 192))

    def work() -> float:
        acc = 0.0
        for row in a:
            acc += float(row @ row)
        return acc + float((a @ a).sum())

    return _best_of(work, repeats)


# ----------------------------------------------------------------------
# Collective benchmarks
# ----------------------------------------------------------------------
def _bench_scatter_reduce(
    worlds: Iterable[int], sizes: Iterable[int], repeats: int
) -> list[BenchRecord]:
    records = []
    for world in worlds:
        group = _make_group(world)
        rng = np.random.default_rng(world)
        for size in sizes:
            arrays = [rng.standard_normal(size) for _ in range(world)]
            loop_s = _best_of(lambda: scatter_reduce(arrays, group, fast_path=False), repeats)
            fast_s = _best_of(lambda: scatter_reduce(arrays, group, fast_path=True), repeats)
            records.append(BenchRecord("scatter_reduce", world, size, loop_s, fast_s))
        group.transport.close()
    return records


def _bench_ring_allreduce(
    worlds: Iterable[int], size: int, repeats: int
) -> list[BenchRecord]:
    records = []
    for world in worlds:
        group = _make_group(world)
        rng = np.random.default_rng(world)
        arrays = [rng.standard_normal(size) for _ in range(world)]
        loop_s = _best_of(lambda: ring_allreduce(arrays, group, fast_path=False), repeats)
        fast_s = _best_of(lambda: ring_allreduce(arrays, group, fast_path=True), repeats)
        records.append(BenchRecord("ring_allreduce", world, size, loop_s, fast_s))
        group.transport.close()
    return records


def _bench_gossip(worlds: Iterable[int], size: int, repeats: int) -> list[BenchRecord]:
    peers = RingPeers()
    records = []
    for world in worlds:
        group = _make_group(world)
        rng = np.random.default_rng(world)
        arrays = [rng.standard_normal(size) for _ in range(world)]
        loop_s = _best_of(lambda: d_fp_s(arrays, group, peers, fast_path=False), repeats)
        fast_s = _best_of(lambda: d_fp_s(arrays, group, peers, fast_path=True), repeats)
        records.append(BenchRecord("gossip_d_fp_s", world, size, loop_s, fast_s))
        group.transport.close()
    return records


def _bench_c_lp_s(worlds: Iterable[int], size: int, repeats: int) -> list[BenchRecord]:
    records = []
    for world in worlds:
        group = _make_group(world)
        rng = np.random.default_rng(world)
        arrays = [rng.standard_normal(size) for _ in range(world)]
        codec = QSGDCompressor(bits=8, rng=np.random.default_rng(7))
        loop_s = _best_of(
            lambda: c_lp_s(arrays, group, codec, fast_path=False), repeats
        )
        fast_s = _best_of(
            lambda: c_lp_s(arrays, group, codec, fast_path=True), repeats
        )
        records.append(BenchRecord("c_lp_s_qsgd8", world, size, loop_s, fast_s))
        group.transport.close()
    return records


# ----------------------------------------------------------------------
# Compressor benchmarks
# ----------------------------------------------------------------------
def _compressor_zoo() -> list[tuple[str, Callable[[], object]]]:
    return [
        ("qsgd8", lambda: QSGDCompressor(bits=8, rng=np.random.default_rng(7))),
        ("onebit", OneBitCompressor),
        ("terngrad", lambda: TernGradCompressor(rng=np.random.default_rng(7))),
        ("topk1pct", lambda: TopKCompressor(ratio=0.01)),
        ("signsgd", SignSGDCompressor),
    ]


def _bench_compressors(
    worlds: Iterable[int], cols: int, repeats: int
) -> list[BenchRecord]:
    """Batched ``batch_roundtrip`` vs the per-rank scalar roundtrip loop.

    The loop reference is exactly what the loop-path collectives execute:
    ``decompress(compress(segment))`` per member per chunk.
    """
    records = []
    for world in worlds:
        rng = np.random.default_rng(world)
        matrix = rng.standard_normal((world, cols))
        bounds = chunk_bounds(cols, world)
        for name, make in _compressor_zoo():
            codec = make()

            def loop_run() -> np.ndarray:
                out = np.empty_like(matrix)
                for i in range(matrix.shape[0]):
                    for lo, hi in bounds:
                        out[i, lo:hi] = codec.decompress(codec.compress(matrix[i, lo:hi]))
                return out

            loop_s = _best_of(loop_run, repeats)
            fast_s = _best_of(lambda: codec.batch_roundtrip(matrix, bounds), repeats)
            records.append(BenchRecord(name, world, cols, loop_s, fast_s))
    return records


# ----------------------------------------------------------------------
# Functional-mode epoch benchmark
# ----------------------------------------------------------------------
def _bench_epoch(worlds: Iterable[int]) -> list[BenchRecord]:
    """One functional training epoch (VGG proxy + QSGD-8bit), both paths."""
    from ..algorithms import QSGD
    from ..core.optimizer_framework import BaguaConfig
    from ..data.loader import make_sharded_loaders
    from ..training import DistributedTrainer, get_task

    task = get_task("VGG16")
    dataset = task.dataset_factory(0)
    records = []
    for world in worlds:
        if world > 4 and world % 4 == 0:
            nodes, per_node = world // 4, 4
        else:
            nodes, per_node = 1, world
        spec = ClusterSpec(num_nodes=nodes, workers_per_node=per_node, inter_node=TCP_25G)
        times = {}
        for fast in (False, True):
            trainer = DistributedTrainer(
                spec,
                task.model_factory,
                task.make_optimizer,
                QSGD(bits=8),
                config=BaguaConfig(fast_path=fast),
                seed=0,
            )
            # Large worlds shard the 512-example set below the task's default
            # batch size, so cap batches at the shard size.
            batch = min(task.batch_size, len(dataset) // world)
            loaders = make_sharded_loaders(dataset, world, batch, seed=0)
            # Best of two epochs; replica construction stays outside the timer.
            times[fast] = _best_of(
                lambda: trainer.train(loaders, task.loss_fn, epochs=1, label="perf"), 2
            )
            trainer.transport.close()
        records.append(
            BenchRecord("epoch_vgg16_qsgd8", world, 0, times[False], times[True])
        )
    return records


# ----------------------------------------------------------------------
# Backend scaling benchmark
# ----------------------------------------------------------------------
def _bench_backend_epoch(world: int, repeats: int) -> list[BenchRecord]:
    """Compute-bound epoch: serial in-process vs shm one-process-per-rank.

    ``loop_s`` is the ``local`` backend (all ranks' tasks run serially in
    the parent), ``fast_s`` the ``shm`` backend (one OS process per rank),
    so the speedup column is real multi-core scaling — the one thing the
    single-process fast path cannot show by construction.  Results are
    asserted bitwise identical across the two backends before timing
    counts.
    """
    from .workloads import EPOCH_ITERS, EPOCH_POOL_ELEMENTS, compute_epoch_task

    spec = ClusterSpec(num_nodes=1, workers_per_node=world)
    args = {rank: (rank, EPOCH_ITERS) for rank in range(world)}
    times: dict[str, float] = {}
    results: dict[str, dict[int, float]] = {}
    for name in ("local", "shm"):
        transport = Transport(spec, backend=name)
        try:
            backend = transport.backend
            for rank in range(world):
                backend.allocate_pool(rank, EPOCH_POOL_ELEMENTS)
            results[name] = backend.run_rank_tasks(compute_epoch_task, args)
            times[name] = _best_of(
                lambda: backend.run_rank_tasks(compute_epoch_task, args), repeats
            )
        finally:
            transport.close()
    for rank in range(world):
        a, b = results["local"][rank], results["shm"][rank]
        if a != b:
            raise AssertionError(
                f"backend results diverge at rank {rank}: local={a!r} shm={b!r}"
            )
    return [
        BenchRecord(
            "epoch_compute_bound", world, EPOCH_POOL_ELEMENTS,
            times["local"], times["shm"],
        )
    ]


# ----------------------------------------------------------------------
# Round-latency and wire-codec benchmarks (PR 9)
# ----------------------------------------------------------------------
def _bench_shm_round_latency(world: int, repeats: int) -> list[BenchRecord]:
    """Per-round doorbell overhead: flag-word batches vs per-round pipes.

    Drives the same ring-neighbor rounds through two shm backends —
    ``loop_s`` with per-round pipe doorbells (``batch_rounds=False``, one
    doorbell + ack pipe crossing per round per rank) and ``fast_s`` with
    iteration batching (rounds staged into per-worker programs, one
    flag-word doorbell per flush).  The flush is inside the timed region,
    so the speedup column is pure signalling overhead: payloads, ring
    traffic and echo verification are identical on both sides.
    """
    from ..cluster.backends.shm import SharedMemoryBackend
    from ..cluster.transport import Message

    rounds = 64
    payload = np.arange(256, dtype=np.float64)  # 2 KiB per message
    times: dict[bool, float] = {}
    for batched in (False, True):
        backend = SharedMemoryBackend(
            world_size=world, ring_bytes=1 << 20, batch_rounds=batched
        )
        try:

            def run() -> None:
                for r in range(rounds):
                    messages = [
                        Message(
                            src=src,
                            dst=(src + 1) % world,
                            payload=payload,
                            nbytes=payload.nbytes,
                            match_id=f"r{r}s{src}",
                        )
                        for src in range(world)
                    ]
                    backend.route_round(messages)
                backend.flush()

            times[batched] = _best_of(run, repeats)
        finally:
            backend.close()
    return [BenchRecord("shm_round_latency", world, rounds, times[False], times[True])]


def _bench_shm_pool_reduce(
    world: int, sizes: Iterable[int], repeats: int
) -> list[BenchRecord]:
    """In-place pool reduction: parent-serial vs worker-parallel (PR 10).

    Both legs execute the *same* scatter-reduce chunk schedule in place on
    the same cross-process mapped pools — ``loop_s`` through the base
    class's generic executor (the parent folds every chunk serially on its
    own mappings), ``fast_s`` through the shm backend's override (each
    chunk ships to its owner's worker as a 25-byte descriptor and all
    workers fold concurrently).  Results are asserted bitwise identical
    before timing counts, so the speedup column is pure multi-core scaling
    of the reduction itself.
    """
    from ..cluster.backends.base import TransportBackend
    from ..cluster.backends.shm import SharedMemoryBackend

    records = []
    backend = SharedMemoryBackend(world_size=world, ring_bytes=1 << 16)
    try:
        for size in sizes:
            pools = [backend.allocate_pool(rank, size) for rank in range(world)]
            rng = np.random.default_rng(size)
            seed = [rng.standard_normal(size) for _ in range(world)]
            refs = backend.resolve_pool_refs(pools, list(range(world)))
            if refs is None:
                raise AssertionError("pool arrays did not resolve to PoolRefs")
            order = tuple(range(world))
            chunks = [(lo, hi, order) for lo, hi in chunk_bounds(size, world)]

            def reset() -> None:
                for pool, data in zip(pools, seed):
                    pool[:] = data

            # Bitwise identity of the two executors on this schedule.
            reset()
            TransportBackend.pool_ref_reduce(backend, refs, chunks, add_zero=True)
            expected = [pool.copy() for pool in pools]
            reset()
            backend.pool_ref_reduce(refs, chunks, add_zero=True)
            for rank, (pool, want) in enumerate(zip(pools, expected)):
                if not np.array_equal(pool, want):
                    raise AssertionError(
                        f"worker-parallel pool reduce diverged at rank {rank}"
                    )

            loop_s = _best_of(
                lambda: TransportBackend.pool_ref_reduce(
                    backend, refs, chunks, add_zero=True
                ),
                repeats,
            )
            fast_s = _best_of(
                lambda: backend.pool_ref_reduce(refs, chunks, add_zero=True), repeats
            )
            records.append(BenchRecord("shm_pool_reduce", world, size, loop_s, fast_s))
    finally:
        backend.close()
    return records


def _bench_wire_codec(repeats: int) -> list[BenchRecord]:
    """Wire-codec round-trip vs pickle on compressed round payloads.

    Asserts each compressed payload actually takes the pickle-free codec
    path in the shm record encoder (the PR 9 acceptance criterion) before
    timing ``loop_s`` (pickle round-trip) against ``fast_s`` (wire codec
    round-trip).  No speed floor applies: the codec's value is a
    self-describing, blittable wire format, not beating C pickle.
    """
    import pickle

    from ..cluster.backends import shm, wire

    rng = np.random.default_rng(5)
    grad = rng.standard_normal(16384)
    cases = [
        ("wire_qsgd8", QSGDCompressor(bits=8, rng=np.random.default_rng(7)).compress(grad)),
        ("wire_onebit", OneBitCompressor().compress(grad)),
        ("wire_topk1pct", TopKCompressor(ratio=0.01).compress(grad)),
    ]
    records = []
    for name, payload in cases:
        kind, _data = shm._encode(payload)
        if kind != shm._CODEC:
            raise AssertionError(
                f"{name}: compressed payload fell back to kind {kind} instead of "
                "the pickle-free wire codec"
            )
        loop_s = _best_of(
            lambda: pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)),
            repeats,
        )
        fast_s = _best_of(lambda: wire.decode(wire.encode(payload)), repeats)
        records.append(BenchRecord(name, 1, grad.size, loop_s, fast_s))
    return records


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_suite(quick: bool = False, repeats: int | None = None) -> dict:
    """Run every benchmark and return the BENCH result document."""
    if repeats is None:
        repeats = 2 if quick else 3
    worlds = WORLDS_QUICK if quick else WORLDS_FULL
    sizes = SIZES_QUICK if quick else SIZES_FULL

    records: list[BenchRecord] = []
    records += _bench_scatter_reduce(worlds, sizes, repeats)
    records += _bench_ring_allreduce(worlds, 65536, repeats)
    records += _bench_gossip(worlds, 65536, repeats)
    records += _bench_c_lp_s(worlds, 16384, repeats)
    records += _bench_compressors(worlds, 1024, repeats)
    records += _bench_epoch(WORLDS_QUICK[:1] if quick else worlds)
    records += _bench_backend_epoch(4, repeats)
    records += _bench_shm_round_latency(4, repeats)
    records += _bench_shm_pool_reduce(4, (1 << 19,) if quick else (1 << 19, 1 << 21), repeats)
    records += _bench_wire_codec(repeats)

    from ..cluster.backends import BACKEND_ENV_VAR, DEFAULT_BACKEND

    return {
        "schema": 1,
        "suite": "bagua-repro-perf",
        "quick": quick,
        "repeats": repeats,
        "backend": os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND,
        "cpu_count": os.cpu_count(),
        "calibration_s": calibrate(),
        "records": [r.to_dict() for r in records],
    }


def render(result: dict) -> str:
    lines = [
        f"{'benchmark':<22} {'world':>5} {'size':>7} {'loop_s':>10} {'fast_s':>10} {'speedup':>8}"
    ]
    for r in result["records"]:
        lines.append(
            f"{r['name']:<22} {r['world']:>5} {r['size']:>7} "
            f"{r['loop_s']:>10.5f} {r['fast_s']:>10.5f} {r['speedup']:>7.1f}x"
        )
    lines.append(f"calibration: {result['calibration_s']:.5f}s")
    if "backend" in result:
        lines.append(
            f"backend: {result['backend']} (cpu_count={result.get('cpu_count')}; "
            "epoch_compute_bound columns are local-serial vs shm-parallel)"
        )
    return "\n".join(lines)


def check_against_baseline(
    current: dict,
    baseline: dict | None,
    threshold: float = REGRESSION_THRESHOLD,
    floors: dict[tuple[str, int], float] | None = None,
) -> list[str]:
    """Return failure messages (empty = pass).

    Two gates:

    Regression is judged on loop/fast *speedups*, not absolute times:
    loop and fast run seconds apart in the same process, so machine-speed
    drift (30 % between runs on shared CI machines, untracked by any
    separate calibration workload) cancels out, while a genuine fast-path
    regression lowers speedup directly.  Three gates:

    * **Suite regression** — the geometric mean of speedups over *all*
      points present in both documents must not fall more than
      ``threshold`` below the baseline's.  Averaging ~30 points makes
      this immune to single-point jitter (1.5x run-to-run) while any
      broad fast-path slowdown moves it in full.
    * **Kernel regression** — per record name, the geomean speedup must
      not fall more than ``2 * threshold`` below the baseline's.  Looser
      because per-kernel aggregates carry only a few points, but it still
      catches a regression confined to one kernel that the suite-wide
      mean would dilute.
    * **Floors** — the best loop/fast speedup per ``(name, world)`` in
      :data:`MIN_SPEEDUP_FLOORS` must clear its minimum, regardless of the
      baseline.
    """
    from ..cluster.backends import DEFAULT_BACKEND

    failures: list[str] = []

    if baseline is not None:
        # A baseline only gates runs on the backend it was recorded with:
        # loop/fast ratios shift with the transport substrate (e.g. the shm
        # backend adds IPC to loop rounds), so cross-backend comparison
        # would flag phantom regressions.  Floors still apply below.
        current_backend = current.get("backend", DEFAULT_BACKEND)
        baseline_backend = baseline.get("backend", DEFAULT_BACKEND)
        if current_backend != baseline_backend:
            baseline = None

    if baseline is not None:
        cur_index = {
            (r["name"], r["world"], r["size"]): r for r in current["records"]
        }
        speedups: dict[str, list[tuple[float, float]]] = {}
        for base in baseline["records"]:
            key = (base["name"], base["world"], base["size"])
            cur = cur_index.get(key)
            if cur is None:  # quick runs cover a subset of the full baseline
                continue
            speedups.setdefault(base["name"], []).append(
                (cur["speedup"], base["speedup"])
            )

        def _geomean(values: list[float]) -> float:
            return math.exp(sum(math.log(v) for v in values) / len(values))

        all_pairs = [p for pairs in speedups.values() for p in pairs]
        if not all_pairs:
            failures.append("baseline shares no benchmarks with this run")
        else:
            cur_gm = _geomean([c for c, _ in all_pairs])
            base_gm = _geomean([b for _, b in all_pairs])
            if cur_gm < base_gm * (1.0 - threshold):
                failures.append(
                    f"regression: suite geomean speedup {cur_gm:.2f}x over "
                    f"{len(all_pairs)} point(s) fell more than "
                    f"{threshold:.0%} below baseline {base_gm:.2f}x"
                )
            for name, pairs in sorted(speedups.items()):
                kern_cur = _geomean([c for c, _ in pairs])
                kern_base = _geomean([b for _, b in pairs])
                if kern_cur < kern_base * (1.0 - 2.0 * threshold):
                    failures.append(
                        f"regression: {name} geomean speedup {kern_cur:.2f}x "
                        f"over {len(pairs)} point(s) fell more than "
                        f"{2 * threshold:.0%} below baseline {kern_base:.2f}x"
                    )

    effective_floors = dict(floors) if floors is not None else dict(MIN_SPEEDUP_FLOORS)
    if floors is None:
        # Core-gated floors: the backend-scaling requirement only binds on
        # machines that can physically show it (result records cpu_count).
        cpu_count = current.get("cpu_count") or 0
        for key, (floor, min_cpus) in CONDITIONAL_SPEEDUP_FLOORS.items():
            if cpu_count >= min_cpus:
                effective_floors[key] = floor
    for (name, world), floor in effective_floors.items():
        matching = [
            r for r in current["records"] if r["name"] == name and r["world"] == world
        ]
        if not matching:
            failures.append(f"floor: no records for {name} at world={world}")
            continue
        best = max(r["speedup"] for r in matching)
        if best < floor:
            failures.append(
                f"floor: {name} world={world} best speedup {best:.1f}x < "
                f"required {floor:.1f}x"
            )
    return failures
