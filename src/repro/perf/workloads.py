"""Module-level per-rank workloads for backend benchmarks.

These run inside :meth:`TransportBackend.run_rank_tasks`, so they must be
importable by name — the shm backend pickles the function *by reference*
and each rank's worker process resolves it in its own interpreter.
"""

from __future__ import annotations

import numpy as np

#: Pool length / iteration count of the compute-bound epoch benchmark:
#: sized so one rank's task takes a few hundred ms of pure numpy compute —
#: long enough that process dispatch overhead (~1 ms) is noise, short
#: enough for quick mode.
EPOCH_POOL_ELEMENTS = 120_000
EPOCH_ITERS = 120


def compute_epoch_task(pool: np.ndarray | None, rank: int, iters: int) -> float:
    """A compute-bound 'epoch': iterated elementwise math on the rank's pool.

    Deterministic in ``(rank, iters, len(pool))`` so results are bitwise
    comparable across backends; writes through the pool so the shm backend's
    cross-process pool mapping is exercised, and returns a checksum.
    """
    if pool is None:
        pool = np.empty(EPOCH_POOL_ELEMENTS, dtype=np.float64)
    x = np.random.default_rng(1000 + rank).standard_normal(pool.shape[0])
    for _ in range(iters):
        x = np.tanh(x) + 0.25 * np.sin(x * 1.7) - 0.001 * x * x
    pool[:] = x
    return float(x.sum())
