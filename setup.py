"""Setuptools shim.

The environment has no network access and no ``wheel`` package, so
``pip install -e .`` (which builds an editable wheel under PEP 517) cannot
run.  ``python setup.py develop`` performs the equivalent editable install
with only setuptools.
"""

from setuptools import setup

setup()
