"""Auto-tuner: family classification, safety filtering, recommendations."""

import pytest

from repro.cluster import paper_cluster
from repro.core import classify_family, recommend
from repro.models import (
    all_specs,
    bert_base_spec,
    bert_large_spec,
    lstm_alexnet_spec,
    transformer_spec,
    vgg16_spec,
)
from repro.models.spec import LayerSpec, ModelSpec


def mixed_spec(name, layer_names):
    """A synthetic model whose layer inventory mixes vocabularies."""
    layers = tuple(
        LayerSpec(name=layer, params=100, fwd_flops=1000.0) for layer in layer_names
    )
    return ModelSpec(name=name, layers=layers, batch_size=8, samples_per_epoch=64)


class TestFamilyClassification:
    def test_conv_family(self):
        assert classify_family(vgg16_spec()) == "conv"

    def test_transformer_family(self):
        assert classify_family(bert_large_spec()) == "transformer"
        assert classify_family(bert_base_spec()) == "transformer"
        assert classify_family(transformer_spec()) == "transformer"

    def test_recurrent_family(self):
        assert classify_family(lstm_alexnet_spec()) == "recurrent"

    # Mixed inventories follow the documented precedence: lstm beats
    # attn/encoder beats conv (first match wins, not layer counts).
    def test_conv_plus_attention_classifies_as_transformer(self):
        spec = mixed_spec("hybrid-vit", ["conv1", "conv2", "attn1", "ffn1"])
        assert classify_family(spec) == "transformer"

    def test_conv_plus_encoder_classifies_as_transformer(self):
        spec = mixed_spec("conv-encoder", ["conv1", "encoder1"])
        assert classify_family(spec) == "transformer"

    def test_lstm_plus_conv_classifies_as_recurrent(self):
        # Figure 6's LSTM+AlexNet speech model is exactly this mix.
        spec = mixed_spec("speech", ["conv1", "conv2", "lstm1", "fc1"])
        assert classify_family(spec) == "recurrent"

    def test_lstm_beats_attention(self):
        spec = mixed_spec("rnn-attn", ["attn1", "lstm1"])
        assert classify_family(spec) == "recurrent"

    def test_plain_mlp_is_generic(self):
        spec = mixed_spec("mlp", ["fc1", "fc2", "fc3"])
        assert classify_family(spec) == "generic"


class TestRecommendations:
    @pytest.fixture(scope="class")
    def slow_network_report(self):
        return recommend(vgg16_spec(), paper_cluster("10gbps"))

    def test_all_candidates_ranked(self, slow_network_report):
        assert len(slow_network_report.recommendations) == 6
        names = [r.algorithm for r in slow_network_report.recommendations]
        assert "allreduce" in names and "1bit-adam" in names

    def test_safe_candidates_first(self, slow_network_report):
        flags = [r.safe for r in slow_network_report.recommendations]
        # Once an unsafe entry appears, everything after is unsafe too.
        first_unsafe = flags.index(False) if False in flags else len(flags)
        assert all(not f for f in flags[first_unsafe:])

    def test_onebit_adam_unsafe_for_conv(self, slow_network_report):
        onebit = next(
            r for r in slow_network_report.recommendations if r.algorithm == "1bit-adam"
        )
        assert not onebit.safe
        assert "diverges" in onebit.note

    def test_best_is_safe_and_fast(self, slow_network_report):
        best = slow_network_report.best
        assert best.safe
        safe_times = [
            r.epoch_time for r in slow_network_report.recommendations if r.safe
        ]
        assert best.epoch_time == min(safe_times)

    def test_vgg_on_slow_network_prefers_compression(self, slow_network_report):
        # QSGD (safe compression) should beat allreduce at 10 Gbps.
        best = slow_network_report.best
        allreduce = next(
            r for r in slow_network_report.recommendations if r.algorithm == "allreduce"
        )
        assert best.epoch_time <= allreduce.epoch_time
        assert best.algorithm != "1bit-adam"  # filtered as unsafe

    def test_onebit_adam_allowed_for_transformers(self):
        report = recommend(bert_large_spec(), paper_cluster("10gbps"))
        onebit = next(r for r in report.recommendations if r.algorithm == "1bit-adam")
        assert onebit.safe
        # And on a slow network it should actually win.
        assert report.best.algorithm == "1bit-adam"

    def test_async_flagged_for_transformers(self):
        report = recommend(bert_large_spec(), paper_cluster("25gbps"))
        async_rec = next(r for r in report.recommendations if r.algorithm == "async")
        assert not async_rec.safe
        assert "staleness" in async_rec.note

    def test_include_unsafe_false_filters(self):
        report = recommend(
            vgg16_spec(), paper_cluster("25gbps"), include_unsafe=False
        )
        assert all(r.safe for r in report.recommendations)

    def test_render(self, slow_network_report):
        text = slow_network_report.render()
        assert "recommended" in text
        assert "VGG16" in text

    def test_speedup_relative_to_allreduce(self, slow_network_report):
        allreduce = next(
            r for r in slow_network_report.recommendations if r.algorithm == "allreduce"
        )
        assert allreduce.speedup_vs_allreduce == pytest.approx(1.0)

    @pytest.mark.parametrize("name", list(all_specs()))
    def test_every_model_gets_a_safe_recommendation(self, name):
        report = recommend(all_specs()[name], paper_cluster("25gbps"))
        assert report.best.safe


class TestPlanRejection:
    """The symbolic pruner refutes invalid candidate plans before timing."""

    def test_biased_codec_without_ef_is_rejected(self):
        report = recommend(
            vgg16_spec(), paper_cluster("10gbps"),
            overrides={"qsgd": {"compressor": "signsgd"}},
        )
        qsgd = next(r for r in report.recommendations if r.algorithm == "qsgd")
        assert qsgd.rejected
        assert qsgd.rejection.startswith("plan-compressor-compat")
        assert "error feedback" in qsgd.rejection
        assert qsgd.epoch_time == float("inf")
        assert not qsgd.safe
        assert report.best.algorithm != "qsgd"
        assert "[REJECTED: plan-compressor-compat" in report.render()

    def test_non_divisible_hierarchy_split_is_rejected(self):
        # paper_cluster worlds are 16 nodes x 8 GPUs; 3 does not divide 128.
        report = recommend(
            vgg16_spec(), paper_cluster("10gbps"),
            overrides={"allreduce": {"hierarchical": True, "workers_per_node": 3}},
        )
        allreduce = next(
            r for r in report.recommendations if r.algorithm == "allreduce"
        )
        assert allreduce.rejected
        assert allreduce.rejection.startswith("plan-hierarchy-split")
        assert report.best.algorithm != "allreduce"

    def test_rejected_candidates_sort_last(self):
        report = recommend(
            vgg16_spec(), paper_cluster("10gbps"),
            overrides={"qsgd": {"compressor": "signsgd"}},
        )
        flags = [r.rejected for r in report.recommendations]
        first_rejected = flags.index(True)
        assert all(flags[first_rejected:])

    def test_include_unsafe_false_drops_rejected(self):
        report = recommend(
            vgg16_spec(), paper_cluster("10gbps"),
            overrides={"qsgd": {"compressor": "signsgd"}},
            include_unsafe=False,
        )
        assert all(not r.rejected and r.safe for r in report.recommendations)
        assert "qsgd" not in [r.algorithm for r in report.recommendations]

    def test_verify_false_skips_the_pruner(self):
        report = recommend(vgg16_spec(), paper_cluster("10gbps"), verify=False)
        assert not any(r.rejected for r in report.recommendations)

    def test_valid_candidates_are_never_rejected(self):
        report = recommend(vgg16_spec(), paper_cluster("10gbps"))
        assert not any(r.rejected for r in report.recommendations)
