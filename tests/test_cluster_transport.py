"""Transport: delivery, time accounting, NIC contention, traffic stats."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, Link, Message, Transport, payload_nbytes


def flat_cluster(**kw) -> ClusterSpec:
    defaults = dict(
        num_nodes=2,
        workers_per_node=2,
        inter_node=Link(latency_s=1e-3, bandwidth_Bps=1e9, ramp_bytes=0, name="tcp-test"),
        intra_node=Link(latency_s=1e-6, bandwidth_Bps=100e9, ramp_bytes=0, name="nv-test"),
    )
    defaults.update(kw)
    return ClusterSpec(**defaults)


class TestPayloadSize:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10)) == 80.0

    def test_wire_bytes_attr(self):
        class Stub:
            wire_bytes = 123.0

        assert payload_nbytes(Stub()) == 123.0

    def test_tuple_recurses(self):
        # 8 B container header + 8 B scalar index + 32 B array
        assert payload_nbytes((1, np.zeros(4))) == 8.0 + 8.0 + 32.0

    def test_scalar_default(self):
        assert payload_nbytes("ctl") == 8.0

    def test_empty_container_not_free(self):
        # An empty envelope still costs its container header — it used to
        # price at 0 bytes while a bare scalar cost 8.
        assert payload_nbytes(()) == 8.0
        assert payload_nbytes([]) == 8.0

    def test_nested_containers(self):
        # Each nesting level charges its own header.
        assert payload_nbytes((1, (2, 3))) == 8.0 + 8.0 + (8.0 + 8.0 + 8.0)
        assert payload_nbytes([[], ()]) == 8.0 + 8.0 + 8.0
        assert payload_nbytes([np.zeros(2), [np.zeros(1)]]) == 8.0 + 16.0 + (8.0 + 8.0)

    def test_wire_bytes_wins_inside_container(self):
        class Stub:
            wire_bytes = 100.0

        assert payload_nbytes((0, Stub())) == 8.0 + 8.0 + 100.0


class TestMessage:
    def test_auto_size(self):
        m = Message(0, 1, np.zeros(8))
        assert m.nbytes == 64.0

    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(2, 2, np.zeros(1))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, None, nbytes=-1)


class TestDelivery:
    def test_payload_reaches_receiver(self):
        tr = Transport(flat_cluster())
        inbox = tr.exchange([Message(0, 3, np.arange(4.0))])
        np.testing.assert_array_equal(inbox[3][0].payload, np.arange(4.0))

    def test_receiver_clock_includes_latency_and_wire(self):
        tr = Transport(flat_cluster())
        nbytes = 1e6  # 1 MB over 1 GB/s = 1 ms wire
        tr.exchange([Message(0, 2, None, nbytes=nbytes)])
        assert tr.now(2) == pytest.approx(1e-3 + 1e-3)

    def test_sender_clock_advances_by_wire_only(self):
        tr = Transport(flat_cluster())
        tr.exchange([Message(0, 2, None, nbytes=1e6)])
        assert tr.now(0) == pytest.approx(1e-3)

    def test_uninvolved_ranks_untouched(self):
        tr = Transport(flat_cluster())
        tr.exchange([Message(0, 2, None, nbytes=1e6)])
        assert tr.now(1) == 0.0
        assert tr.now(3) == 0.0

    def test_intra_node_uses_fast_link(self):
        tr = Transport(flat_cluster())
        tr.exchange([Message(0, 1, None, nbytes=1e6)])
        assert tr.now(1) < 1e-4  # NVLink, not the 1 ms TCP latency


class TestNICContention:
    def test_inter_node_shares_per_node_nic(self):
        # Two workers on node 0 each send 1 MB to node 1: the node NIC
        # serializes them, so the second arrival is ~1 wire-time later.
        tr = Transport(flat_cluster())
        tr.exchange(
            [Message(0, 2, None, nbytes=1e6), Message(1, 3, None, nbytes=1e6)]
        )
        late = max(tr.now(2), tr.now(3))
        assert late == pytest.approx(2e-3 + 1e-3, rel=0.01)

    def test_intra_node_links_are_independent(self):
        spec = flat_cluster(workers_per_node=4, num_nodes=1)
        tr = Transport(spec)
        tr.exchange(
            [Message(0, 1, None, nbytes=1e6), Message(2, 3, None, nbytes=1e6)]
        )
        # Different sender/receiver pairs on NVLink do not serialize.
        assert abs(tr.now(1) - tr.now(3)) < 1e-9

    def test_ingress_serializes_at_receiver_node(self):
        spec = ClusterSpec(
            num_nodes=3,
            workers_per_node=1,
            inter_node=Link(latency_s=0, bandwidth_Bps=1e9, ramp_bytes=0, name="t"),
        )
        tr = Transport(spec)
        tr.exchange(
            [Message(0, 2, None, nbytes=1e6), Message(1, 2, None, nbytes=1e6)]
        )
        # Two 1 ms messages into one NIC: total ~2 ms.
        assert tr.now(2) == pytest.approx(2e-3, rel=0.01)


class TestTimeUtilities:
    def test_compute_charges_one_rank(self):
        tr = Transport(flat_cluster())
        tr.compute(1, 0.5)
        assert tr.now(1) == 0.5
        assert tr.now(0) == 0.0

    def test_compute_respects_straggler(self):
        spec = flat_cluster(straggler_slowdown={1: 2.0})
        tr = Transport(spec)
        tr.compute(1, 0.5)
        assert tr.now(1) == 1.0

    def test_barrier_aligns_clocks(self):
        tr = Transport(flat_cluster())
        tr.compute(0, 1.0)
        tr.barrier()
        assert all(tr.now(r) == 1.0 for r in range(4))

    def test_barrier_subset(self):
        tr = Transport(flat_cluster())
        tr.compute(0, 1.0)
        tr.barrier([0, 1])
        assert tr.now(1) == 1.0
        assert tr.now(2) == 0.0

    def test_reset(self):
        tr = Transport(flat_cluster())
        tr.exchange([Message(0, 2, None, nbytes=100)])
        tr.reset()
        assert tr.max_time() == 0.0
        assert tr.stats.messages == 0


class TestStats:
    def test_empty_exchange_is_noop(self):
        tr = Transport(flat_cluster())
        assert tr.exchange([]) == {}
        assert tr.stats.rounds == 0
        assert tr.stats.messages == 0
        assert tr.max_time() == 0.0

    def test_byte_accounting(self):
        tr = Transport(flat_cluster())
        tr.exchange([Message(0, 2, None, nbytes=100), Message(0, 1, None, nbytes=50)])
        assert tr.stats.total_bytes == 150
        assert tr.stats.inter_node_bytes == 100
        assert tr.stats.intra_node_bytes == 50
        assert tr.stats.messages == 2
        assert tr.stats.rounds == 1
        assert tr.stats.per_rank_sent_bytes[0] == 150
