"""Shape checks on the timing-mode experiments (Tables 3-5, Fig 7, straggler).

These assert the paper's *qualitative* findings reproduce: who wins, how
gaps move with network conditions, which ablations matter — never absolute
numbers.
"""

import pytest

from repro.experiments import (
    fig7_network_conditions,
    heterogeneity_study,
    table1_support,
    table2_models,
    table3_speedup,
    table4_epoch_time,
    table5_ablation,
)
from repro.experiments.paper_reference import BEST_ALGORITHM, TABLE2_MODELS


class TestTable1:
    def test_renders(self):
        text = table1_support.run().render()
        assert "BAGUA" in text and "decentralized" in text


class TestTable2:
    def test_within_tolerance(self):
        for row in table2_models.run().rows:
            assert row["params_m"] == pytest.approx(row["paper_params_m"], rel=0.03)
            assert row["gflops"] == pytest.approx(row["paper_gflops"], rel=0.10)

    def test_covers_all_models(self):
        rows = table2_models.run().rows
        assert {r["model"] for r in rows} == set(TABLE2_MODELS)


@pytest.fixture(scope="module")
def table3():
    return table3_speedup.run()


class TestTable3:
    def test_bagua_never_loses_badly(self, table3):
        for network in table3.speedups.values():
            for model, speedup in network.items():
                assert speedup > 0.9, (model, speedup)

    def test_speedups_grow_as_bandwidth_drops(self, table3):
        for model in BEST_ALGORITHM:
            assert (
                table3.speedups["10gbps"][model]
                >= table3.speedups["100gbps"][model] - 0.05
            )

    def test_vgg_and_bert_large_gain_most_at_10g(self, table3):
        slow = table3.speedups["10gbps"]
        assert slow["VGG16"] > 1.3
        assert slow["BERT-LARGE"] > 1.3

    def test_renders(self, table3):
        assert "Table 3" in table3.render()


@pytest.fixture(scope="module")
def table4():
    return table4_epoch_time.run()


class TestTable4:
    def test_bagua_competitive_with_ddp(self, table4):
        for model, times in table4.epoch_times.items():
            assert times["BAGUA"] <= 1.10 * times["PyTorch-DDP"], model

    def test_byteps_worst_on_vgg(self, table4):
        vgg = table4.epoch_times["VGG16"]
        assert vgg["BytePS"] == max(vgg.values())
        assert vgg["BytePS"] > 1.25 * vgg["BAGUA"]

    def test_all_systems_same_magnitude(self, table4):
        for times in table4.epoch_times.values():
            assert max(times.values()) < 3 * min(times.values())

    def test_renders(self, table4):
        assert "Table 4" in table4.render()


@pytest.fixture(scope="module")
def table5():
    return table5_ablation.run()


class TestTable5:
    def test_full_config_is_best(self, table5):
        for model, times in table5.epoch_times.items():
            best = times["O=1,F=1,H=1"]
            for label, t in times.items():
                assert t >= best * 0.999, (model, label)

    def test_each_ablation_hurts_somewhere(self, table5):
        for label in ("O=0,F=1,H=1", "O=1,F=0,H=1", "O=1,F=1,H=0"):
            hurt = any(
                times[label] > 1.03 * times["O=1,F=1,H=1"]
                for times in table5.epoch_times.values()
            )
            assert hurt, label

    def test_hierarchy_matters_most_for_vgg(self, table5):
        vgg = table5.epoch_times["VGG16"]
        assert vgg["O=1,F=1,H=0"] > vgg["O=0,F=1,H=1"]
        assert vgg["O=1,F=1,H=0"] > vgg["O=1,F=0,H=1"]

    def test_fusion_matters_for_bert(self, table5):
        bert = table5.epoch_times["BERT-LARGE"]
        assert bert["O=1,F=0,H=1"] > 1.1 * bert["O=1,F=1,H=1"]


@pytest.fixture(scope="module")
def fig7():
    return fig7_network_conditions.run(
        bandwidths_gbps=(1.0, 10.0, 100.0), latencies_ms=(0.05, 1.0, 5.0)
    )


class TestFig7:
    def test_compression_wins_at_low_bandwidth(self, fig7):
        assert fig7.best_at_bandwidth(0) == "BAGUA-1bit-Adam"

    def test_decentralized_wins_at_high_latency(self, fig7):
        assert "Decen" in fig7.best_at_latency(-1)

    def test_ring_systems_degrade_most_with_latency(self, fig7):
        ddp = fig7.latency_sweep["PyTorch-DDP"]
        decen = fig7.latency_sweep["BAGUA-Decen-8bits"]
        assert ddp[-1] / ddp[0] > 2 * (decen[-1] / decen[0])

    def test_gap_to_bagua_widens_when_slow(self, fig7):
        ddp = fig7.bandwidth_sweep["PyTorch-DDP"]
        best_bagua = [
            min(series[i] for name, series in fig7.bandwidth_sweep.items() if "BAGUA" in name)
            for i in range(3)
        ]
        # Index 0 is 1 Gbps, index 2 is 100 Gbps.
        assert ddp[0] / best_bagua[0] > ddp[2] / best_bagua[2]

    def test_renders(self, fig7):
        text = fig7.render()
        assert "Figure 7a" in text and "Figure 7b" in text


class TestHeterogeneity:
    def test_async_immune_sync_degrades(self):
        study = heterogeneity_study.run(models=["VGG16", "LSTM+AlexNet"])
        # Compute-bound task: the straggler bites sync almost linearly.
        lstm = study.results["LSTM+AlexNet"]
        assert lstm.sync_degradation > 1.5
        assert lstm.async_degradation < 1.1
        # Comm-bound task: the straggler partially hides behind communication,
        # but sync still degrades while async stays flat.
        vgg = study.results["VGG16"]
        assert vgg.sync_degradation > 1.1
        assert vgg.async_degradation < 1.1
        assert "Heterogeneity" in study.render()
