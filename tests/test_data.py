"""Synthetic datasets and sharded loading."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    ShardedLoader,
    make_image_classification,
    make_multimodal,
    make_sequence_regression_tokens,
    make_sharded_loaders,
    make_token_classification,
    shard_indices,
)


class TestGenerators:
    def test_image_dataset_shapes(self):
        ds = make_image_classification(n=100, channels=3, size=8, num_classes=5)
        assert ds.inputs.shape == (100, 3, 8, 8)
        assert ds.labels.shape == (100,)
        assert ds.labels.max() < 5
        assert len(ds) == 100

    def test_image_dataset_deterministic(self):
        a = make_image_classification(seed=5)
        b = make_image_classification(seed=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_image_dataset_learnable_structure(self):
        # Same-class samples are more similar than cross-class samples.
        ds = make_image_classification(n=200, noise=0.1, seed=0)
        same = ds.inputs[ds.labels == 0]
        other = ds.inputs[ds.labels == 1]
        intra = np.linalg.norm(same[0] - same[1])
        inter = np.linalg.norm(same[0] - other[0])
        assert intra < inter

    def test_token_dataset_markers_planted(self):
        ds = make_token_classification(n=50, vocab=32, seq_len=10, num_classes=4)
        assert ds.inputs.shape == (50, 10)
        assert ds.inputs.max() < 32

    def test_sequence_tokens(self):
        ds = make_sequence_regression_tokens(n=30, seq_len=12)
        # Each sample contains its label token at >= 3 positions.
        for row, label in zip(ds.inputs, ds.labels):
            assert np.sum(row == label) >= 3

    def test_multimodal_alignment(self):
        ds, tokens = make_multimodal(n=40, seq_len=8)
        assert tokens.shape == (40, 8)
        # Each token row contains the label once.
        for row, label in zip(tokens, ds.labels):
            assert label in row

    def test_dataset_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(inputs=np.zeros((3, 2)), labels=np.zeros(4), num_classes=2)


class TestSharding:
    def test_shards_partition_without_overlap(self):
        shards = [shard_indices(100, 4, r) for r in range(4)]
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(100))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            shard_indices(10, 4, 4)

    def test_loader_batches_cover_shard(self):
        ds = make_image_classification(n=64)
        loader = ShardedLoader(ds, world_size=4, rank=1, batch_size=4)
        batches = list(loader.epoch())
        assert len(batches) == loader.batches_per_epoch() == 4
        for inputs, labels in batches:
            assert inputs.shape[0] == 4
            assert labels.shape == (4,)

    def test_loader_epochs_reshuffle(self):
        ds = make_image_classification(n=64)
        loader = ShardedLoader(ds, world_size=2, rank=0, batch_size=8)
        first = np.concatenate([b[1] for b in loader.epoch()])
        second = np.concatenate([b[1] for b in loader.epoch()])
        assert not np.array_equal(first, second)

    def test_loader_rank_streams_decorrelated(self):
        ds = make_image_classification(n=64)
        a = ShardedLoader(ds, 2, 0, 8, seed=1)
        b = ShardedLoader(ds, 2, 1, 8, seed=1)
        assert not np.array_equal(
            np.concatenate([x[1] for x in a.epoch()]),
            np.concatenate([x[1] for x in b.epoch()]),
        )

    def test_loader_shard_too_small(self):
        ds = make_image_classification(n=8)
        with pytest.raises(ValueError):
            ShardedLoader(ds, world_size=8, rank=0, batch_size=4)

    def test_batch_size_validation(self):
        ds = make_image_classification(n=8)
        with pytest.raises(ValueError):
            ShardedLoader(ds, 1, 0, 0)

    def test_loader_with_extra_pairs_modalities(self):
        ds, tokens = make_multimodal(n=32)
        loader = ShardedLoader(ds, 2, 0, 4, extra=tokens)
        (inputs, labels) = next(loader.epoch())
        images, toks = inputs
        assert images.shape[0] == 4
        assert toks.shape[0] == 4
        # Modalities stay aligned: the planted token matches the label.
        for row, label in zip(toks, labels):
            assert label in row

    def test_make_sharded_loaders(self):
        ds = make_image_classification(n=64)
        loaders = make_sharded_loaders(ds, world_size=4, batch_size=4)
        assert len(loaders) == 4
        all_indices = np.sort(np.concatenate([l.indices for l in loaders]))
        np.testing.assert_array_equal(all_indices, np.arange(64))
