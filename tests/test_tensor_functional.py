"""Differentiable ops: numeric gradient checks and semantics."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F


def check_grad(build, x: Tensor, index, eps: float = 1e-6, tol: float = 1e-5):
    """Compare autograd gradient at ``x[index]`` against central differences."""
    x.zero_grad()
    build().backward()
    auto = x.grad[index]
    x.data[index] += eps
    hi = build().item()
    x.data[index] -= 2 * eps
    lo = build().item()
    x.data[index] += eps
    numeric = (hi - lo) / (2 * eps)
    assert abs(auto - numeric) < tol, f"auto={auto} numeric={numeric}"


@pytest.fixture
def x(rng) -> Tensor:
    return Tensor(rng.standard_normal((3, 4)), requires_grad=True)


class TestElementwise:
    @pytest.mark.parametrize("op", [F.relu, F.tanh, F.sigmoid, F.gelu, F.exp])
    def test_gradients(self, op, x):
        check_grad(lambda: op(x).sum(), x, (1, 2))

    def test_log_sqrt_grad(self, rng):
        x = Tensor(rng.random((3, 3)) + 0.5, requires_grad=True)
        check_grad(lambda: F.log(x).sum(), x, (0, 1))
        check_grad(lambda: F.sqrt(x).sum(), x, (2, 2))

    def test_relu_zeroes_negatives(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0, 0, 2])

    def test_clip_grad_masks_outside(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        F.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])

    def test_sigmoid_saturates_safely(self):
        out = F.sigmoid(Tensor([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out.data))


class TestSoftmaxLosses:
    def test_softmax_rows_sum_to_one(self, x):
        out = F.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_softmax_grad(self, x):
        check_grad(lambda: (F.softmax(x) * F.softmax(x)).sum(), x, (0, 1))

    def test_log_softmax_equals_log_of_softmax(self, x):
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_cross_entropy_matches_manual(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        y = np.array([0, 2, 1, 1])
        loss = F.cross_entropy(logits, y)
        manual = -np.mean(
            np.log(F.softmax(logits).data[np.arange(4), y])
        )
        assert abs(loss.item() - manual) < 1e-10

    def test_cross_entropy_grad(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        y = np.array([0, 2, 1, 1])
        check_grad(lambda: F.cross_entropy(logits, y), logits, (2, 1))

    def test_mse_loss_grad(self, rng):
        pred = Tensor(rng.standard_normal((5,)), requires_grad=True)
        target = rng.standard_normal(5)
        check_grad(lambda: F.mse_loss(pred, target), pred, (3,))

    def test_nll_loss_matches_cross_entropy(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        y = np.array([1, 0, 2, 1])
        ce = F.cross_entropy(logits, y).item()
        nll = F.nll_loss(F.log_softmax(logits), y).item()
        assert abs(ce - nll) < 1e-10


class TestStructural:
    def test_concat_grad_splits(self, rng):
        a = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        F.concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack_grad(self, rng):
        a = Tensor(rng.standard_normal((2,)), requires_grad=True)
        b = Tensor(rng.standard_normal((2,)), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])

    def test_dropout_eval_is_identity(self, rng, x):
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones(20_000), requires_grad=True)
        out = F.dropout(x, 0.25, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_embedding_lookup_grad_accumulates(self, rng):
        w = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([[1, 1], [2, 4]])
        F.embedding_lookup(w, idx).sum().backward()
        np.testing.assert_allclose(w.grad[1], [2, 2, 2])
        np.testing.assert_allclose(w.grad[0], [0, 0, 0])


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        x = Tensor(rng.standard_normal((4, 8)) * 5 + 3)
        w = Tensor(np.ones(8), requires_grad=True)
        b = Tensor(np.zeros(8), requires_grad=True)
        out = F.layer_norm(x, w, b)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_grads(self, rng):
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal(6), requires_grad=True)
        b = Tensor(rng.standard_normal(6), requires_grad=True)
        check_grad(lambda: (F.layer_norm(x, w, b) ** 2).sum(), x, (1, 3), tol=1e-4)
        check_grad(lambda: (F.layer_norm(x, w, b) ** 2).sum(), w, (2,), tol=1e-4)
        check_grad(lambda: (F.layer_norm(x, w, b) ** 2).sum(), b, (4,), tol=1e-4)
