"""SharedMemoryBackend unit tests: lifecycle, rings, pools, failures.

Bit-identity against the in-process oracle lives in
``test_backend_identity.py``; this file covers the multiprocess machinery
itself.  Per-rank task functions are module-level on purpose — the shm
backend pickles them by reference into the worker processes.
"""

import os
import signal

import numpy as np
import pytest

from repro.cluster import ClusterSpec, Message, Transport
from repro.cluster.backends import (
    BACKEND_REGISTRY,
    BackendError,
    BatchedBackend,
    LocalBackend,
    SharedMemoryBackend,
    available_backends,
    resolve_backend,
)


def _spec(world: int) -> ClusterSpec:
    return ClusterSpec(num_nodes=1, workers_per_node=world)


def scale_task(pool, factor):
    pool *= factor
    return float(pool.sum())


def echo_task(pool, value):
    return value


def boom_task(pool):
    raise ValueError("boom from the worker")


class TestRegistry:
    def test_names(self):
        assert available_backends() == ["batched", "local", "shm"]
        assert set(BACKEND_REGISTRY) == {"local", "batched", "shm"}

    def test_resolve_by_name(self):
        spec = _spec(2)
        assert isinstance(resolve_backend("local", spec), LocalBackend)
        assert isinstance(resolve_backend("batched", spec), BatchedBackend)
        shm = resolve_backend("shm", spec)
        assert isinstance(shm, SharedMemoryBackend)
        assert shm.world_size == 2
        shm.close()

    def test_resolve_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None, _spec(2)).name == "batched"

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "local")
        assert resolve_backend(None, _spec(2)).name == "local"

    def test_resolve_instance_passthrough(self):
        backend = LocalBackend()
        assert resolve_backend(backend, _spec(2)) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown transport backend"):
            resolve_backend("carrier-pigeon", _spec(2))

    def test_transport_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "local")
        assert Transport(_spec(2)).backend.name == "local"

    def test_kernel_preferences(self):
        assert LocalBackend.prefers_fast_path is False
        assert BatchedBackend.prefers_fast_path is True
        assert SharedMemoryBackend.prefers_fast_path is True


class TestLocalBackend:
    def test_route_round_groups_in_order(self):
        backend = LocalBackend()
        messages = [
            Message(0, 1, "a"),
            Message(2, 1, "b"),
            Message(0, 2, "c"),
        ]
        inbox = backend.route_round(messages)
        assert [m.payload for m in inbox[1]] == ["a", "b"]
        assert [m.payload for m in inbox[2]] == ["c"]
        assert inbox[1][0] is messages[0]  # in-process hand-off, no copy

    def test_serial_tasks_use_pools(self):
        backend = LocalBackend()
        pool = backend.allocate_pool(0, 4)
        pool[:] = 2.0
        results = backend.run_rank_tasks(scale_task, {0: (3.0,)})
        assert results == {0: 24.0}
        assert pool[0] == 6.0


class TestShmLifecycle:
    def test_lazy_start_and_idempotent_close(self):
        backend = SharedMemoryBackend(2)
        assert not backend._started
        backend.ensure_started()
        assert backend._started
        assert all(h.process.is_alive() for h in backend._workers.values())
        pids = [h.process.pid for h in backend._workers.values()]
        backend.close()
        backend.close()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_context_manager(self):
        with SharedMemoryBackend(2) as backend:
            backend.ensure_started()
            handles = list(backend._workers.values())
        assert all(not h.process.is_alive() for h in handles)

    def test_use_after_close_raises(self):
        backend = SharedMemoryBackend(2)
        backend.ensure_started()
        backend.close()
        with pytest.raises(BackendError, match="closed"):
            backend.ensure_started()

    def test_world_size_validated(self):
        backend = SharedMemoryBackend(2)
        with pytest.raises(ValueError, match="serves 2 ranks"):
            Transport(_spec(3), backend=backend)
        backend.close()

    def test_transport_close_closes_backend(self):
        transport = Transport(_spec(2), backend="shm")
        transport.backend.ensure_started()
        with Transport(_spec(2), backend="local"):
            pass
        transport.close()
        assert transport.backend._closed

    def test_dead_worker_detected_and_cleaned_up(self):
        backend = SharedMemoryBackend(2, timeout_s=30.0)
        transport = Transport(_spec(2), backend=backend)
        transport.exchange([Message(0, 1, np.zeros(3))])
        victim = backend._workers[1].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        # Detected either at doorbell send (broken pipe) or while awaiting
        # the ack (liveness poll), depending on kernel buffering.
        with pytest.raises(BackendError, match="died|pipe is gone"):
            transport.exchange([Message(0, 1, np.zeros(3))])
        assert backend._closed  # orphan cleanup ran


class TestShmPayloads:
    @pytest.fixture(scope="class")
    def transport(self):
        with Transport(_spec(2), backend="shm") as transport:
            yield transport

    def _roundtrip(self, transport, payload):
        return transport.exchange([Message(0, 1, payload)])[1][0].payload

    def test_f64_raw_bitwise(self, transport):
        sent = np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1e-300])
        got = self._roundtrip(transport, sent)
        assert got.dtype == np.float64
        assert sent.tobytes() == got.tobytes()  # bit-for-bit, incl. -0.0/NaN
        # Batched mode delivers the sender's object (the oracle's hand-off
        # semantics) — the staged ring record alone feeds the echo check, so
        # no decode-copy is made for the inbox.
        assert got is sent

    def test_non_contiguous_and_other_dtypes(self, transport):
        strided = np.arange(10.0)[::2]
        assert np.array_equal(self._roundtrip(transport, strided), strided)
        f32 = np.arange(4, dtype=np.float32)
        got = self._roundtrip(transport, f32)
        assert got.dtype == np.float32 and np.array_equal(got, f32)

    def test_structured_payloads(self, transport):
        payload = {"k": np.float32(2.5), "v": [1, (2, np.arange(3.0))], "e": ()}
        got = self._roundtrip(transport, payload)
        assert got["k"] == np.float32(2.5)
        assert np.array_equal(got["v"][1][1], np.arange(3.0))
        assert got["e"] == ()

    def test_ring_wraparound_many_rounds(self, transport):
        for i in range(300):
            got = self._roundtrip(transport, np.full(1024, float(i)))
            assert got[0] == float(i)

    def test_oversize_payload_falls_back_inline(self):
        with Transport(_spec(2), backend=SharedMemoryBackend(2, ring_bytes=1 << 14)) as tr:
            before = tr.backend.shm_stats["inline_fallbacks"]
            big = np.random.default_rng(0).standard_normal(1 << 12)  # 32 KiB > ring
            got = tr.exchange([Message(0, 1, big)])[1][0].payload
            assert np.array_equal(got, big)
            assert tr.backend.shm_stats["inline_fallbacks"] == before + 1

    def test_round_order_preserved_per_destination(self, transport):
        inbox = transport.exchange(
            [Message(0, 1, ("first", 1)), Message(0, 1, ("second", 2))]
        )
        assert [m.payload[0] for m in inbox[1]] == ["first", "second"]


class TestBatchedRounds:
    def test_default_batches_rounds_behind_flag_doorbells(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            assert backend.batch_rounds is True
            for i in range(3):
                got = transport.exchange([Message(0, 1, np.full(16, float(i)))])
                assert got[1][0].payload[0] == float(i)
            backend.flush()
            stats = backend.shm_stats
            assert stats["batches"] >= 1
            assert stats["flag_doorbells"] >= 1

    def test_flush_without_staged_work_is_a_noop(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            transport.exchange([Message(0, 1, np.arange(4.0))])
            backend.flush()
            batches = backend.shm_stats["batches"]
            backend.flush()
            backend.flush()
            assert backend.shm_stats["batches"] == batches

    def test_legacy_mode_stays_on_per_round_pipes(self):
        backend = SharedMemoryBackend(2, batch_rounds=False)
        with Transport(_spec(2), backend=backend) as transport:
            got = transport.exchange([Message(0, 1, np.arange(8.0))])[1][0].payload
            assert np.array_equal(got, np.arange(8.0))
            backend.flush()
            stats = backend.shm_stats
            assert stats["batches"] == 0
            assert stats["flag_doorbells"] == 0

    def test_batched_and_legacy_deliver_identical_bytes(self):
        import pickle

        payloads = [
            np.arange(32.0),
            {"k": (1, np.arange(3, dtype=np.float32))},
            b"blob",
        ]
        delivered = {}
        for batched in (False, True):
            backend = SharedMemoryBackend(2, batch_rounds=batched)
            with Transport(_spec(2), backend=backend) as transport:
                inbox = transport.exchange([Message(0, 1, p) for p in payloads])
                delivered[batched] = [m.payload for m in inbox[1]]
        assert pickle.dumps(delivered[False]) == pickle.dumps(delivered[True])

    def test_tasks_flush_pending_rounds_first(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            pool = backend.allocate_pool(1, 4)
            pool[:] = 1.0
            transport.exchange([Message(0, 1, np.arange(4.0))])
            # The staged round must drain before the task executes.
            assert backend.run_rank_tasks(scale_task, {1: (3.0,)}) == {1: 12.0}
            assert backend.shm_stats["batches"] >= 1

    def test_describe_reports_batch_mode(self):
        with Transport(_spec(2), backend="shm") as transport:
            assert transport.backend.describe()["batch_rounds"] is True


class TestShmPoolsAndTasks:
    def test_pool_shared_with_worker(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            pool = backend.allocate_pool(0, 8)
            pool[:] = np.arange(8.0)
            results = backend.run_rank_tasks(scale_task, {0: (2.0,)})
            assert results == {0: float(np.arange(8.0).sum() * 2.0)}
            # The worker's in-place write is visible through the parent view.
            assert np.array_equal(pool, np.arange(8.0) * 2.0)

    def test_pool_reallocation_replaces_mapping(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            backend.allocate_pool(0, 4)[:] = 1.0
            new = backend.allocate_pool(0, 6)
            new[:] = 5.0
            assert backend.run_rank_tasks(scale_task, {0: (1.0,)}) == {0: 30.0}

    def test_tasks_run_on_requested_ranks_only(self):
        with Transport(_spec(2), backend="shm") as transport:
            results = transport.backend.run_rank_tasks(echo_task, {1: ("only-me",)})
            assert results == {1: "only-me"}

    def test_task_error_propagates_with_traceback(self):
        with Transport(_spec(2), backend="shm") as transport:
            with pytest.raises(BackendError, match="boom from the worker"):
                transport.backend.run_rank_tasks(boom_task, {0: ()})
            # A failed task does not kill the worker; the backend stays usable.
            assert transport.backend.run_rank_tasks(echo_task, {0: (7,)}) == {0: 7}

    def test_describe_reports_shm_facts(self):
        with Transport(_spec(2), backend="shm") as transport:
            transport.backend.ensure_started()
            info = transport.backend.describe()
            assert info["name"] == "shm"
            assert info["world_size"] == 2
            assert info["started"] is True
            assert info["start_method"] in ("fork", "spawn")


class TestPoolRefReduce:
    """PoolRef resolution and the in-place worker-parallel reduction (PR 10)."""

    def test_pool_ref_resolution(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            pool = backend.allocate_pool(0, 16)
            ref = backend.pool_ref(pool)
            assert (ref.rank, ref.offset, ref.length) == (0, 0, 16)
            sub = backend.pool_ref(pool[2:6])  # interior dense view
            assert (sub.rank, sub.offset, sub.length) == (0, 2, 4)
            assert backend.pool_ref(np.arange(4.0)) is None  # owns its storage
            assert backend.pool_ref(pool[::2]) is None  # strided
            assert backend.pool_ref(pool.astype(np.float32)) is None  # dtype
            assert backend.pool_ref(pool[0:0]) is None  # empty

    def test_resolve_pool_refs_requires_ownership_and_uniform_length(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            pools = [backend.allocate_pool(rank, 8) for rank in range(2)]
            refs = backend.resolve_pool_refs(pools, [0, 1])
            assert refs is not None and [r.rank for r in refs] == [0, 1]
            # Member 0's array in rank 1's pool breaks the ownership
            # assumption the chunk schedule relies on.
            assert backend.resolve_pool_refs([pools[1], pools[0]], [0, 1]) is None
            # Non-uniform lengths cannot share one chunk layout.
            assert backend.resolve_pool_refs([pools[0][:4], pools[1]], [0, 1]) is None
            # Any non-pool member keeps the whole collective on the codec path.
            assert backend.resolve_pool_refs([pools[0], np.arange(8.0)], [0, 1]) is None

    @pytest.mark.parametrize("batched", [True, False], ids=["batched", "pipe"])
    @pytest.mark.parametrize("add_zero", [True, False], ids=["add-zero", "plain"])
    def test_worker_parallel_reduce_matches_serial_fold(self, batched, add_zero):
        world = 3
        backend = SharedMemoryBackend(world, batch_rounds=batched)
        with Transport(_spec(world), backend=backend):
            rng = np.random.default_rng(61)
            pools = [backend.allocate_pool(rank, 12) for rank in range(world)]
            base = [rng.standard_normal(12) for _ in range(world)]
            for pool, data in zip(pools, base):
                pool[:] = data
            refs = backend.resolve_pool_refs(pools, list(range(world)))
            # Per-chunk fold orders: chunk j folds members rotated by j.
            bounds = [(0, 4), (4, 8), (8, 12)]
            chunks = [
                (lo, hi, tuple((j + t) % world for t in range(world)))
                for j, (lo, hi) in enumerate(bounds)
            ]
            backend.pool_ref_reduce(refs, chunks, add_zero=add_zero)
            for j, (lo, hi, order) in enumerate(chunks):
                acc = base[order[0]][lo:hi].copy()
                for member in order[1:]:
                    acc += base[member][lo:hi]
                if add_zero:
                    acc += 0.0
                for pool in pools:  # broadcast: every member's slice updated
                    assert pool[lo:hi].tobytes() == acc.tobytes()

    def test_chunk_count_mismatch_raises(self):
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            pools = [backend.allocate_pool(rank, 8) for rank in range(2)]
            refs = backend.resolve_pool_refs(pools, [0, 1])
            with pytest.raises(ValueError, match="chunk"):
                backend.pool_ref_reduce(refs, [(0, 8, (0, 1))], add_zero=False)

    @pytest.mark.parametrize("batched", [True, False], ids=["batched", "pipe"])
    def test_round_stats_count_rounds_only(self, batched):
        # payload_bytes / inline_fallbacks are *round* traffic counters:
        # tasks and pool-ref reduces must not move them in either mode.
        backend = SharedMemoryBackend(2, batch_rounds=batched)
        with Transport(_spec(2), backend=backend) as transport:
            pools = [backend.allocate_pool(rank, 8) for rank in range(2)]
            transport.exchange([Message(0, 1, np.arange(8.0))])
            backend.flush()
            payload_bytes = backend.shm_stats["payload_bytes"]
            fallbacks = backend.shm_stats["inline_fallbacks"]
            assert payload_bytes > 0
            backend.run_rank_tasks(echo_task, {0: (1,), 1: (2,)})
            refs = backend.resolve_pool_refs(pools, [0, 1])
            backend.pool_ref_reduce(refs, [(0, 4, (0, 1)), (4, 8, (0, 1))], add_zero=True)
            backend.flush()
            assert backend.shm_stats["payload_bytes"] == payload_bytes
            assert backend.shm_stats["inline_fallbacks"] == fallbacks
            assert backend.shm_stats["reduces"] == 2

    def test_descriptor_shrinks_round_payload_bytes(self):
        # A pool-resident payload of half a megabyte crosses the ring as a
        # ~25-byte descriptor; a same-sized non-pool payload ships in full.
        with Transport(_spec(2), backend="shm") as transport:
            backend = transport.backend
            pool = backend.allocate_pool(0, 1 << 16)
            pool[:] = 1.0
            before = backend.shm_stats["payload_bytes"]
            transport.exchange([Message(0, 1, pool)])
            backend.flush()
            descriptor_bytes = backend.shm_stats["payload_bytes"] - before
            assert 0 < descriptor_bytes < 100
            assert backend.shm_stats["pool_ref_payloads"] == 1
            before = backend.shm_stats["payload_bytes"]
            transport.exchange([Message(0, 1, pool.copy())])  # not pool storage
            backend.flush()
            assert backend.shm_stats["payload_bytes"] - before >= pool.nbytes
